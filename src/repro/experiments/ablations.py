"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each function isolates one design
decision and sweeps it, holding everything else at the paper's setting.

* :func:`sampling_ablation` — NO vs SUB vs SMOTE for every TF-IDF
  classifier (the paper only reports the best per classifier).
* :func:`trustrank_ablation` — TrustRank damping factor and seed
  composition (legit-only vs legit + Anti-TrustRank distrust signal).
* :func:`ngg_parameter_ablation` — n-gram rank/window n ∈ {2, 3, 4, 5}
  (the paper fixes Lmin = Lmax = Dwin = 4 following [13]).
* :func:`ranking_combiner_ablation` — textRank-only vs networkRank-only
  vs the paper's cumulative sum.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.network_pipeline import NetworkClassificationPipeline
from repro.core.ranking import rank_pharmacies
from repro.experiments.results import TableResult
from repro.experiments.tables import _dataset_pair, _documents
from repro.ml.base import BaseClassifier
from repro.ml.metrics import classification_report
from repro.ml.model_selection import StratifiedKFold
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.sampling import RandomUnderSampler, SMOTE
from repro.ml.svm import LinearSVC
from repro.ml.tree import C45Tree
from repro.text.ngram_graph import ClassGraphModel, NGramGraph
from repro.text.term_vector import TfidfVectorizer

__all__ = [
    "sampling_ablation",
    "trustrank_ablation",
    "ngg_parameter_ablation",
    "ranking_combiner_ablation",
    "representation_ablation",
    "trust_algorithm_ablation",
    "label_noise_ablation",
    "review_effort_experiment",
    "auxiliary_sites_ablation",
    "term_selection_ablation",
    "seed_stability_experiment",
    "gray_zone_experiment",
]

_SAMPLERS: tuple[tuple[str, Callable[[], object] | None], ...] = (
    ("NO", None),
    ("SUB", lambda: RandomUnderSampler(seed=0)),
    ("SMOTE", lambda: SMOTE(seed=0)),
)

_CLASSIFIERS: tuple[tuple[str, Callable[[], BaseClassifier]], ...] = (
    ("NBM", lambda: MultinomialNB()),
    ("SVM", lambda: LinearSVC(seed=0)),
    ("J48", lambda: C45Tree(max_candidate_features=400)),
)


def sampling_ablation(
    config: ExperimentConfig, max_terms: int | None = 1000
) -> TableResult:
    """AUC-ROC of every (classifier, sampling) combination.

    The paper evaluates all combinations but prints only the best per
    classifier; this table shows the full grid, reproducing the
    supporting claims that sampling barely matters for NBM/SVM while
    J48 benefits from SMOTE.
    """
    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    docs = _documents(config, corpus, max_terms)
    tokens = [doc.tokens for doc in docs]
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    rows = []
    for clf_name, proto in _CLASSIFIERS:
        cells: list[object] = [clf_name]
        for _, sampler_factory in _SAMPLERS:
            aucs = []
            for train_idx, test_idx in folds:
                vectorizer = TfidfVectorizer()
                X_train = vectorizer.fit_transform([tokens[i] for i in train_idx])
                X_test = vectorizer.transform([tokens[i] for i in test_idx])
                X_fit, y_fit = X_train, y[train_idx]
                if sampler_factory is not None:
                    X_fit, y_fit = sampler_factory().fit_resample(X_fit, y_fit)
                model = proto()
                model.fit(X_fit, y_fit)
                report = classification_report(
                    y[test_idx],
                    model.predict(X_test),
                    model.decision_scores(X_test),
                )
                aucs.append(report.auc_roc)
            cells.append(float(np.mean(aucs)))
        rows.append(tuple(cells))
    return TableResult(
        table_id="ablation_sampling",
        title="Sampling-strategy ablation - AUC ROC (1000-term subsamples)",
        columns=("Classifier",) + tuple(name for name, _ in _SAMPLERS),
        rows=tuple(rows),
    )


def trustrank_ablation(
    config: ExperimentConfig,
    dampings: tuple[float, ...] = (0.5, 0.7, 0.85, 0.95),
) -> TableResult:
    """Network-classifier AUC vs TrustRank damping and seed signals."""
    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    rows = []
    for damping in dampings:
        for anti in (False, True):
            aucs = []
            for train_idx, test_idx in folds:
                pipeline = NetworkClassificationPipeline(
                    corpus,
                    GaussianNB(),
                    damping=damping,
                    include_anti_trustrank=anti,
                )
                pipeline.fit(train_idx)
                report = classification_report(
                    y[test_idx],
                    pipeline.predict(test_idx),
                    pipeline.decision_scores(test_idx),
                )
                aucs.append(report.auc_roc)
            rows.append(
                (
                    f"damping={damping}",
                    "trust+distrust" if anti else "trust-only",
                    float(np.mean(aucs)),
                )
            )
    return TableResult(
        table_id="ablation_trustrank",
        title="TrustRank ablation - damping factor and seed composition",
        columns=("Damping", "Seed signals", "AUC ROC"),
        rows=tuple(rows),
    )


def ngg_parameter_ablation(
    config: ExperimentConfig,
    ranks: tuple[int, ...] = (2, 3, 4, 5),
    max_terms: int | None = 250,
) -> TableResult:
    """N-Gram-Graph rank/window sweep (paper fixes n = Dwin = 4)."""
    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    docs = _documents(config, corpus, max_terms)
    texts = [doc.text for doc in docs]
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    rows = []
    for n in ranks:
        graphs = [NGramGraph.from_text(t, n=n, window=n) for t in texts]
        aucs = []
        for fold_no, (train_idx, test_idx) in enumerate(folds):
            model = ClassGraphModel(n=n, window=n, seed=config.cv_seed + fold_no)
            model.fit_graphs([graphs[i] for i in train_idx], y[train_idx].tolist())
            features = model.transform_graphs(graphs)
            clf = GaussianNB()
            clf.fit(features[train_idx], y[train_idx])
            report = classification_report(
                y[test_idx],
                clf.predict(features[test_idx]),
                clf.decision_scores(features[test_idx]),
            )
            aucs.append(report.auc_roc)
        rows.append((f"n={n}", float(np.mean(aucs))))
    return TableResult(
        table_id="ablation_ngg_params",
        title="N-Gram-Graph rank/window ablation - NB AUC ROC (250 terms)",
        columns=("Rank/window", "AUC ROC"),
        rows=tuple(rows),
    )


def ranking_combiner_ablation(
    config: ExperimentConfig, max_terms: int | None = 1000
) -> TableResult:
    """Pairwise orderedness of text-only / network-only / cumulative."""
    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    domains = corpus.domains
    docs = _documents(config, corpus, max_terms)
    tokens = [doc.tokens for doc in docs]
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)

    text_only, network_only, cumulative = [], [], []
    for train_idx, test_idx in splitter.split(y):
        network = NetworkClassificationPipeline(corpus, GaussianNB())
        network.fit(train_idx)
        net_rank = network.network_rank(test_idx)

        vectorizer = TfidfVectorizer()
        X_train = vectorizer.fit_transform([tokens[i] for i in train_idx])
        X_test = vectorizer.transform([tokens[i] for i in test_idx])
        model = MultinomialNB().fit(X_train, y[train_idx])
        text_rank = model.predict_proba(X_test)[:, -1]

        test_domains = [domains[i] for i in test_idx]
        y_test = y[test_idx]
        zeros = np.zeros_like(net_rank)
        text_only.append(
            rank_pharmacies(test_domains, text_rank, zeros, y_test).pairord
        )
        network_only.append(
            rank_pharmacies(test_domains, zeros, net_rank, y_test).pairord
        )
        cumulative.append(
            rank_pharmacies(test_domains, text_rank, net_rank, y_test).pairord
        )
    return TableResult(
        table_id="ablation_ranking",
        title="Ranking-combiner ablation - pairwise orderedness (NBM text)",
        columns=("Combiner", "pairord"),
        rows=(
            ("textRank only", float(np.mean(text_only))),
            ("networkRank only", float(np.mean(network_only))),
            ("textRank + networkRank (paper)", float(np.mean(cumulative))),
        ),
    )


def representation_ablation(
    config: ExperimentConfig, max_terms: int | None = 1000
) -> TableResult:
    """Term Vector vs Character N-Grams vs N-Gram Graphs.

    Reproduces the comparison the paper inherits from Giannakopoulos et
    al. [13] (Section 2.2): three text representations, one classifier
    protocol, AUC-ROC per representation.  Naive Bayes variants are
    used throughout (multinomial for the two bag models, Gaussian for
    the graph-similarity features).
    """
    from repro.text.char_ngrams import CharNGramVectorizer

    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    docs = _documents(config, corpus, max_terms)
    tokens = [doc.tokens for doc in docs]
    texts = [doc.text for doc in docs]
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    def evaluate(fit_predict) -> float:
        aucs = []
        for fold_no, (train_idx, test_idx) in enumerate(folds):
            predictions, scores = fit_predict(fold_no, train_idx, test_idx)
            report = classification_report(y[test_idx], predictions, scores)
            aucs.append(report.auc_roc)
        return float(np.mean(aucs))

    def term_vector(fold_no, train_idx, test_idx):
        vec = TfidfVectorizer()
        X_train = vec.fit_transform([tokens[i] for i in train_idx])
        X_test = vec.transform([tokens[i] for i in test_idx])
        model = MultinomialNB().fit(X_train, y[train_idx])
        return model.predict(X_test), model.decision_scores(X_test)

    def char_ngrams(fold_no, train_idx, test_idx):
        vec = CharNGramVectorizer(n=4)
        X_train = vec.fit_transform([texts[i] for i in train_idx])
        X_test = vec.transform([texts[i] for i in test_idx])
        model = MultinomialNB().fit(X_train, y[train_idx])
        return model.predict(X_test), model.decision_scores(X_test)

    def ngram_graphs(fold_no, train_idx, test_idx):
        model = ClassGraphModel(seed=config.cv_seed + fold_no)
        model.fit(
            [texts[i] for i in train_idx], y[train_idx].tolist()
        )
        features_train = model.transform([texts[i] for i in train_idx])
        features_test = model.transform([texts[i] for i in test_idx])
        clf = GaussianNB().fit(features_train, y[train_idx])
        return clf.predict(features_test), clf.decision_scores(features_test)

    rows = (
        ("Term Vector (TF-IDF) + NBM", evaluate(term_vector)),
        ("Character 4-Grams (bag) + NBM", evaluate(char_ngrams)),
        ("N-Gram Graphs (CS/SS/VS/NVS) + NB", evaluate(ngram_graphs)),
    )
    return TableResult(
        table_id="ablation_representation",
        title="Text-representation ablation - AUC ROC (1000-term subsamples)",
        columns=("Representation", "AUC ROC"),
        rows=rows,
    )


def trust_algorithm_ablation(config: ExperimentConfig) -> TableResult:
    """TrustRank vs EigenTrust as the network scoring algorithm.

    EigenTrust (Kamvar et al. [18]) is the related-work alternative the
    paper cites; both propagate from the legitimate training seed, and
    per-pharmacy scores use the same outbound-neighbourhood reading.
    """
    from repro.network.construction import build_pharmacy_graph
    from repro.network.eigentrust import eigentrust
    from repro.network.trustrank import trustrank as run_trustrank

    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    domains = corpus.domains
    sites = corpus.sites
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    def outlink_mean(site, scores) -> float:
        endpoints = site.outbound_endpoints()
        if not endpoints:
            return 0.0
        return float(np.mean([scores.get(e, 0.0) for e in endpoints]))

    def evaluate(score_fn) -> float:
        aucs = []
        for train_idx, test_idx in folds:
            graph = build_pharmacy_graph(sites)
            seed = [domains[i] for i in train_idx if y[i] == 1]
            scores = score_fn(graph, seed)
            X = np.array([[outlink_mean(s, scores)] for s in sites])
            clf = GaussianNB().fit(X[train_idx], y[train_idx])
            report = classification_report(
                y[test_idx],
                clf.predict(X[test_idx]),
                clf.decision_scores(X[test_idx]),
            )
            aucs.append(report.auc_roc)
        return float(np.mean(aucs))

    rows = (
        ("TrustRank (paper)", evaluate(lambda g, s: run_trustrank(g, s))),
        ("EigenTrust [18]", evaluate(lambda g, s: eigentrust(g, s))),
    )
    return TableResult(
        table_id="ablation_trust_algorithm",
        title="Trust-propagation algorithm ablation - network NB AUC ROC",
        columns=("Algorithm", "AUC ROC"),
        rows=rows,
    )


def label_noise_ablation(
    config: ExperimentConfig,
    noise_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3),
    max_terms: int | None = 1000,
) -> TableResult:
    """Classifier robustness to training-label noise.

    The paper's corpus is "consistent and error free" because experts
    labelled it; its authors' companion work ([14], [24]) studies what
    mislabeling does to classifiers.  This experiment reproduces that
    analysis on the pharmacy task: flip a fraction of *training* labels
    (both directions), evaluate against clean test labels.
    """
    from repro.ml.noise import inject_label_noise

    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    docs = _documents(config, corpus, max_terms)
    tokens = [doc.tokens for doc in docs]
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    rows = []
    for clf_name, proto in (("NBM", MultinomialNB), ("SVM", LinearSVC)):
        cells: list[object] = [clf_name]
        for rate in noise_rates:
            aucs = []
            for fold_no, (train_idx, test_idx) in enumerate(folds):
                noisy = inject_label_noise(
                    y[train_idx], rate, seed=config.cv_seed + fold_no
                )
                vec = TfidfVectorizer()
                X_train = vec.fit_transform([tokens[i] for i in train_idx])
                X_test = vec.transform([tokens[i] for i in test_idx])
                model = proto()
                model.fit(X_train, noisy)
                report = classification_report(
                    y[test_idx],
                    model.predict(X_test),
                    model.decision_scores(X_test),
                )
                aucs.append(report.auc_roc)
            cells.append(float(np.mean(aucs)))
        rows.append(tuple(cells))
    return TableResult(
        table_id="ablation_label_noise",
        title="Training-label-noise robustness - AUC ROC vs noise rate",
        columns=("Classifier",) + tuple(f"{r:.0%}" for r in noise_rates),
        rows=tuple(rows),
    )


def review_effort_experiment(
    config: ExperimentConfig, max_terms: int | None = 1000
) -> TableResult:
    """Reviewer effort saved by the ranking (the paper's motivation).

    In a corpus that is ~90% illegitimate, the discriminative triage
    task is surfacing the rare *legitimate* pharmacies (the whitelist a
    verification company publishes).  The experiment measures how many
    reviews a most-legitimate-first queue needs to surface 90% of the
    legitimate pharmacies, versus an unassisted (random-order)
    reviewer and the oracle lower bound.
    """
    from repro.core.review_queue import effort_to_find_fraction

    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    docs = _documents(config, corpus, max_terms)
    tokens = [doc.tokens for doc in docs]
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)

    ranked_effort, random_effort, test_sizes, n_legit = [], [], [], []
    rng = np.random.default_rng(config.cv_seed)
    for train_idx, test_idx in splitter.split(y):
        network = NetworkClassificationPipeline(corpus, GaussianNB())
        network.fit(train_idx)
        net_rank = network.network_rank(test_idx)
        vec = TfidfVectorizer()
        X_train = vec.fit_transform([tokens[i] for i in train_idx])
        X_test = vec.transform([tokens[i] for i in test_idx])
        model = MultinomialNB().fit(X_train, y[train_idx])
        ranks = model.predict_proba(X_test)[:, -1] + net_rank
        y_test = y[test_idx]
        ranked_effort.append(
            effort_to_find_fraction(ranks, y_test, 0.9, target_label=1)
        )
        random_effort.append(
            effort_to_find_fraction(
                rng.random(len(y_test)), y_test, 0.9, target_label=1
            )
        )
        test_sizes.append(len(y_test))
        n_legit.append(int(np.sum(y_test == 1)))

    ideal = float(np.mean([np.ceil(0.9 * n) for n in n_legit]))
    rows = (
        ("ideal (oracle queue)", ideal),
        ("system ranking (paper model)", float(np.mean(ranked_effort))),
        ("random queue (unassisted)", float(np.mean(random_effort))),
        ("queue length", float(np.mean(test_sizes))),
    )
    return TableResult(
        table_id="review_effort",
        title="Reviews needed to surface 90% of legitimate pharmacies",
        columns=("Queue", "Reviews"),
        rows=rows,
    )


def auxiliary_sites_ablation(config: ExperimentConfig) -> TableResult:
    """Network classification with vs without non-pharmacy sites.

    Future-work extension (a) of the paper: enrich the link graph with
    non-pharmacy websites that point to pharmacies (health portals and
    spam directories), putting the seed at graph distance > 1 from some
    pharmacies.  Reports AUC and legitimate recall for the paper's
    graph and the enriched graph on the same corpus.
    """
    import dataclasses

    from repro.data.loaders import crawl_snapshot
    from repro.data.synthesis import SyntheticWebGenerator

    generator_config = dataclasses.replace(
        config.generator, n_health_portals=8, n_spam_directories=4
    )
    snapshot = SyntheticWebGenerator(generator_config).generate_snapshot()
    corpus = crawl_snapshot(snapshot)
    y = corpus.labels
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    def evaluate(use_auxiliary: bool) -> tuple[float, float]:
        aucs, recalls = [], []
        for train_idx, test_idx in folds:
            pipeline = NetworkClassificationPipeline(
                corpus, GaussianNB(), use_auxiliary_sites=use_auxiliary
            )
            pipeline.fit(train_idx)
            report = classification_report(
                y[test_idx],
                pipeline.predict(test_idx),
                pipeline.decision_scores(test_idx),
            )
            aucs.append(report.auc_roc)
            recalls.append(report.legitimate_recall)
        return float(np.mean(aucs)), float(np.mean(recalls))

    plain_auc, plain_recall = evaluate(False)
    enriched_auc, enriched_recall = evaluate(True)
    return TableResult(
        table_id="ablation_auxiliary_sites",
        title="Network graph enrichment with non-pharmacy sites (future work a)",
        columns=("Graph", "AUC ROC", "legit recall"),
        rows=(
            ("pharmacy-only (paper)", plain_auc, plain_recall),
            ("+ portals & directories", enriched_auc, enriched_recall),
        ),
        notes=(
            f"{generator_config.n_health_portals} portals, "
            f"{generator_config.n_spam_directories} directories added",
        ),
    )


def term_selection_ablation(
    config: ExperimentConfig,
    budgets: tuple[int, ...] = (5, 15, 50),
) -> TableResult:
    """Random term subsampling (paper) vs information-gain selection.

    The paper reduces document size by *randomly* selecting N terms
    (Section 4.1); classic text categorization ([31]) selects the most
    class-informative terms instead.  This ablation compares NBM
    AUC-ROC under both policies at small term budgets, where the
    difference matters most.
    """
    from repro.text.feature_selection import filter_documents, select_terms

    corpus, _ = _dataset_pair(config)
    y = corpus.labels
    full_docs = _documents(config, corpus, None)  # all terms
    splitter = StratifiedKFold(config.n_folds, shuffle=True, seed=config.cv_seed)
    folds = list(splitter.split(y))

    rows = []
    for budget in budgets:
        random_docs = _documents(config, corpus, budget)
        random_tokens = [doc.tokens for doc in random_docs]
        random_aucs, informed_aucs = [], []
        for train_idx, test_idx in folds:
            # Paper policy: random per-document subsample.
            vec = TfidfVectorizer()
            X_train = vec.fit_transform([random_tokens[i] for i in train_idx])
            X_test = vec.transform([random_tokens[i] for i in test_idx])
            model = MultinomialNB().fit(X_train, y[train_idx])
            random_aucs.append(
                classification_report(
                    y[test_idx],
                    model.predict(X_test),
                    model.decision_scores(X_test),
                ).auc_roc
            )
            # Informed policy: keep the top-IG terms of the training fold.
            train_tokens = [list(full_docs[i].tokens) for i in train_idx]
            keep = select_terms(train_tokens, y[train_idx], k=budget)
            informed_train = filter_documents(train_tokens, keep)
            informed_test = filter_documents(
                [list(full_docs[i].tokens) for i in test_idx], keep
            )
            vec = TfidfVectorizer()
            X_train = vec.fit_transform(informed_train)
            X_test = vec.transform(informed_test)
            model = MultinomialNB().fit(X_train, y[train_idx])
            informed_aucs.append(
                classification_report(
                    y[test_idx],
                    model.predict(X_test),
                    model.decision_scores(X_test),
                ).auc_roc
            )
        rows.append(
            (
                f"budget={budget}",
                float(np.mean(random_aucs)),
                float(np.mean(informed_aucs)),
            )
        )
    return TableResult(
        table_id="ablation_term_selection",
        title="Term-budget policy - NBM AUC ROC (random vs information gain)",
        columns=("Term budget", "random subsample (paper)", "IG selection"),
        rows=tuple(rows),
    )


def seed_stability_experiment(
    config: ExperimentConfig,
    seeds: tuple[int, ...] = (7, 101, 2024),
    max_terms: int | None = 1000,
) -> TableResult:
    """Key results across independent synthetic-web seeds.

    The reproduction would be worthless if its headline numbers were an
    artifact of one generator seed.  This experiment regenerates the
    corpus under several seeds and reports the text-NBM AUC and the
    network-NB AUC / legitimate recall for each, plus the spread.
    """
    import dataclasses

    from repro.data.loaders import crawl_snapshot
    from repro.data.synthesis import SyntheticWebGenerator
    from repro.text.summarization import Summarizer

    rows = []
    text_aucs, net_aucs, net_recalls = [], [], []
    for seed in seeds:
        generator_config = dataclasses.replace(config.generator, seed=seed)
        corpus = crawl_snapshot(
            SyntheticWebGenerator(generator_config).generate_snapshot()
        )
        y = corpus.labels
        summarizer = Summarizer(max_terms=max_terms, seed=config.summary_seed)
        tokens = [
            summarizer.summarize_site(site).tokens for site in corpus.sites
        ]
        splitter = StratifiedKFold(
            config.n_folds, shuffle=True, seed=config.cv_seed
        )
        fold_text, fold_net, fold_recall = [], [], []
        for train_idx, test_idx in splitter.split(y):
            vec = TfidfVectorizer()
            X_train = vec.fit_transform([tokens[i] for i in train_idx])
            X_test = vec.transform([tokens[i] for i in test_idx])
            model = MultinomialNB().fit(X_train, y[train_idx])
            fold_text.append(
                classification_report(
                    y[test_idx],
                    model.predict(X_test),
                    model.decision_scores(X_test),
                ).auc_roc
            )
            pipeline = NetworkClassificationPipeline(corpus, GaussianNB())
            pipeline.fit(train_idx)
            report = classification_report(
                y[test_idx],
                pipeline.predict(test_idx),
                pipeline.decision_scores(test_idx),
            )
            fold_net.append(report.auc_roc)
            fold_recall.append(report.legitimate_recall)
        text_auc = float(np.mean(fold_text))
        net_auc = float(np.mean(fold_net))
        net_recall = float(np.mean(fold_recall))
        text_aucs.append(text_auc)
        net_aucs.append(net_auc)
        net_recalls.append(net_recall)
        rows.append((f"seed={seed}", text_auc, net_auc, net_recall))
    rows.append(
        (
            "spread (max-min)",
            float(np.max(text_aucs) - np.min(text_aucs)),
            float(np.max(net_aucs) - np.min(net_aucs)),
            float(np.max(net_recalls) - np.min(net_recalls)),
        )
    )
    return TableResult(
        table_id="seed_stability",
        title="Key results across independent synthetic-web seeds",
        columns=("Corpus", "text NBM AUC", "network NB AUC", "network legit recall"),
        rows=tuple(rows),
    )


def gray_zone_experiment(
    config: ExperimentConfig,
    n_gray: int = 8,
    max_terms: int | None = 1000,
) -> TableResult:
    """Where "potentially legitimate" pharmacies land in the ranking.

    Section 6.1: 2.8% of the PharmaVerComp database is *potentially
    legitimate* — not policy-compliant, probably not criminal.  The
    generator emits such gray-zone sites outside the working set; this
    experiment trains the verifier on the labelled corpus and reports
    the mean rank score per population.  The expected picture: gray
    sites score between the two classes.
    """
    import dataclasses

    from repro.core.verifier import PharmacyVerifier
    from repro.data.loaders import crawl_snapshot
    from repro.data.synthesis import SyntheticWebGenerator

    generator_config = dataclasses.replace(
        config.generator, n_potentially_legitimate=n_gray
    )
    corpus = crawl_snapshot(
        SyntheticWebGenerator(generator_config).generate_snapshot()
    )
    y = corpus.labels
    train_idx = np.arange(0, len(corpus), 2)
    test_idx = np.arange(1, len(corpus), 2)
    verifier = PharmacyVerifier(max_terms=max_terms, seed=config.cv_seed)
    verifier.fit(corpus.subset(train_idx))

    test_sites = [corpus.sites[i] for i in test_idx]
    test_reports = verifier.verify_sites(test_sites)
    gray_reports = verifier.verify_sites(list(corpus.gray_sites))

    legit_scores = [
        r.rank_score
        for r, i in zip(test_reports, test_idx)
        if y[i] == 1
    ]
    illegit_scores = [
        r.rank_score
        for r, i in zip(test_reports, test_idx)
        if y[i] == 0
    ]
    gray_scores = [r.rank_score for r in gray_reports]
    rows = (
        ("legitimate (unseen)", float(np.mean(legit_scores))),
        ("potentially legitimate (gray)", float(np.mean(gray_scores))),
        ("illegitimate (unseen)", float(np.mean(illegit_scores))),
    )
    return TableResult(
        table_id="gray_zone",
        title="Mean rank score per population (Section 6.1 gray zone)",
        columns=("Population", "mean rank score"),
        rows=rows,
        notes=(f"{n_gray} gray-zone pharmacies generated outside P",),
    )
