"""Sweep-level compute sharing for the TF-IDF classifier grid.

The paper's text evaluation (Section 6.3.1, Tables 3–6) crosses every
classifier/sampling configuration with every term-subset size under
3-fold cross-validation.  The expensive work of one cell — fitting the
TF-IDF vectorizer on the training fold and transforming both folds —
depends only on ``(subset, fold)``, never on the classifier, so the
scheduler here factors the grid accordingly:

* each ``(subset, fold)`` pair becomes one :class:`FoldTask` whose
  feature matrices are fitted **once** and shared by every roster
  entry (``shared=True``, the default);
* ``shared=False`` is the per-config-refit reference mode: every
  roster entry refits its own vectorizer.  Fitting is deterministic,
  so both modes produce identical tables — pinned by
  ``tests/experiments/test_sweep.py``.

Tasks are plain picklable dataclasses mapped with
:func:`repro.perf.pmap`, so ``--jobs N`` fans the (fold × subset) grid
out to worker processes with order-stable, bit-identical results.
Sweep results can additionally be memoized on disk through a
:class:`repro.perf.FeatureCache` keyed on the corpus content
fingerprint and the full roster configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.evaluation import AggregatedReport
from repro.exceptions import ValidationError
from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import BinaryClassificationReport, classification_report
from repro.ml.model_selection import StratifiedKFold
from repro.perf.cache import FeatureCache
from repro.perf.parallel import pmap
from repro.text.term_vector import TfidfVectorizer

__all__ = ["SweepEntry", "FoldTask", "run_fold", "run_tfidf_sweep"]


@dataclass(frozen=True)
class SweepEntry:
    """One roster row of the TF-IDF sweep.

    Attributes:
        name: display name used in the paper's tables ("NBM", …).
        sampling: sampling label for the tables ("NO", "SUB", "SMOTE").
        classifier: unfitted prototype; the scheduler clones it per
            (subset, fold) cell, so one entry is reusable across the
            whole grid (and picklable for process pools).
        sampler: optional resampler with ``fit_resample(X, y)`` applied
            to the training fold before fitting (seeded and stateless,
            so sharing one instance across cells is deterministic).
    """

    name: str
    sampling: str
    classifier: BaseClassifier
    sampler: object | None = None

    def describe(self) -> dict[str, Any]:
        """JSON-able identity of this entry (for disk-cache keys)."""
        return {
            "name": self.name,
            "sampling": self.sampling,
            "classifier": type(self.classifier).__name__,
            "classifier_params": {
                k: repr(v) for k, v in sorted(self.classifier.get_params().items())
            },
            "sampler": type(self.sampler).__name__ if self.sampler else None,
        }


@dataclass(frozen=True)
class FoldTask:
    """One (subset, fold) work unit of the sweep grid.

    Carries everything a worker process needs: the tokenized train and
    test documents, the fold labels, and the roster to evaluate on the
    shared matrices.
    """

    subset: int | None
    fold_no: int
    train_tokens: tuple[tuple[str, ...], ...]
    test_tokens: tuple[tuple[str, ...], ...]
    y_train: np.ndarray
    y_test: np.ndarray
    entries: tuple[SweepEntry, ...]
    shared: bool


def _entry_report(
    entry: SweepEntry,
    X_train: Any,
    y_train: np.ndarray,
    X_test: Any,
    y_test: np.ndarray,
) -> BinaryClassificationReport:
    """Fit one roster entry on the fold matrices and score the test fold."""
    X_fit, y_fit = X_train, y_train
    if entry.sampler is not None:
        X_fit, y_fit = entry.sampler.fit_resample(X_fit, y_fit)
    model = clone(entry.classifier)
    model.fit(X_fit, y_fit)
    return classification_report(
        y_test, model.predict(X_test), model.decision_scores(X_test)
    )


def run_fold(task: FoldTask) -> dict[str, BinaryClassificationReport]:
    """Evaluate every roster entry of one (subset, fold) cell.

    With ``task.shared`` the vectorizer is fitted once and its matrices
    feed every entry; without it each entry refits its own vectorizer.
    Vectorizer fitting is deterministic, so the two modes return
    identical reports — the flag only changes how much work is done.
    """
    if task.shared:
        vectorizer = TfidfVectorizer()
        X_train = vectorizer.fit_transform(task.train_tokens)
        X_test = vectorizer.transform(task.test_tokens)
        return {
            entry.name: _entry_report(
                entry, X_train, task.y_train, X_test, task.y_test
            )
            for entry in task.entries
        }
    out: dict[str, BinaryClassificationReport] = {}
    for entry in task.entries:
        vectorizer = TfidfVectorizer()
        X_train = vectorizer.fit_transform(task.train_tokens)
        X_test = vectorizer.transform(task.test_tokens)
        out[entry.name] = _entry_report(
            entry, X_train, task.y_train, X_test, task.y_test
        )
    return out


def run_tfidf_sweep(
    entries: Sequence[SweepEntry],
    labels: np.ndarray,
    tokens_by_subset: Mapping[int | None, Sequence[Sequence[str]]],
    n_folds: int = 3,
    cv_seed: int = 0,
    shared: bool = True,
    jobs: int | None = None,
    cache: FeatureCache | None = None,
    cache_fingerprint: str | None = None,
) -> dict[tuple[str, int | None], AggregatedReport]:
    """Cross-validate every roster entry at every term-subset size.

    Args:
        entries: the classifier/sampling roster.
        labels: corpus labels (fold assignment runs on these once, so
            every subset sees the same folds).
        tokens_by_subset: subset size -> tokenized summary documents of
            the whole corpus at that size.
        n_folds: stratified CV folds (paper: 3).
        cv_seed: fold-assignment seed.
        shared: fit each (subset, fold)'s vectorizer once and share the
            matrices across entries (default); ``False`` refits per
            entry — slower, identical results.
        jobs: ``pmap`` worker processes over the (subset × fold) grid.
        cache: optional disk cache for the aggregated sweep.
        cache_fingerprint: corpus content fingerprint for the cache
            key; required when ``cache`` is given.

    Returns:
        ``(entry name, subset) -> AggregatedReport`` over the folds.
    """
    if not entries:
        raise ValidationError("sweep roster is empty")
    names = [entry.name for entry in entries]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate sweep entry names: {names}")

    def compute() -> dict[tuple[str, int | None], AggregatedReport]:
        y = np.asarray(labels).ravel()
        splitter = StratifiedKFold(n_splits=n_folds, shuffle=True, seed=cv_seed)
        folds = list(splitter.split(y))
        roster = tuple(entries)
        tasks = [
            FoldTask(
                subset=subset,
                fold_no=fold_no,
                train_tokens=tuple(tuple(tokens[i]) for i in train_idx),
                test_tokens=tuple(tuple(tokens[i]) for i in test_idx),
                y_train=y[train_idx],
                y_test=y[test_idx],
                entries=roster,
                shared=shared,
            )
            for subset, tokens in tokens_by_subset.items()
            for fold_no, (train_idx, test_idx) in enumerate(folds)
        ]
        fold_reports = pmap(run_fold, tasks, jobs=jobs)
        collected: dict[tuple[str, int | None], list[BinaryClassificationReport]]
        collected = {
            (entry.name, subset): []
            for entry in roster
            for subset in tokens_by_subset
        }
        for task, reports in zip(tasks, fold_reports):
            for entry in roster:
                collected[(entry.name, task.subset)].append(reports[entry.name])
        return {
            key: AggregatedReport(fold_reports=tuple(reports))
            for key, reports in collected.items()
        }

    if cache is None:
        return compute()
    if cache_fingerprint is None:
        raise ValidationError("cache_fingerprint is required when cache is set")
    key = cache.key(
        "tfidf-sweep",
        cache_fingerprint,
        {
            "subsets": [s if s is not None else "all" for s in tokens_by_subset],
            "n_folds": n_folds,
            "cv_seed": cv_seed,
            "roster": [entry.describe() for entry in entries],
            # Everything compute() reads must be keyed: the fold labels
            # drive the CV split, and shared=False refits per entry —
            # identical tables, but the flag is an input all the same.
            "labels": [int(v) for v in np.asarray(labels).ravel()],
            "shared": shared,
        },
    )
    return cache.get_or_compute(key, compute)
