"""Regeneration of the paper's figures (as structured/printable output).

* Figure 1 shows screenshots of two real pharmacy front pages — not
  reproducible from data; ``examples/storefronts.py`` renders the
  synthetic equivalent.
* Figure 2 is the overview of the N-Gram-Graph classification process;
  :func:`figure2_pipeline_trace` runs each step on a toy corpus and
  records what happened.
* Figure 3 illustrates TrustRank propagating trust through a network of
  good and bad nodes; :func:`figure3_trustrank_demo` builds that
  network and reports the scores before and after propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.results import TableResult
from repro.network.graph import DirectedGraph
from repro.network.trustrank import trustrank
from repro.text.ngram_graph import ClassGraphModel

__all__ = [
    "figure2_pipeline_trace",
    "figure3_trustrank_demo",
    "PipelineTrace",
]


@dataclass(frozen=True, slots=True)
class PipelineTrace:
    """Record of the Figure 2 classification process on a toy corpus."""

    steps: tuple[str, ...]
    class_graph_sizes: dict[int, int]
    document_features: tuple[tuple[str, tuple[float, ...]], ...]
    predictions: tuple[tuple[str, int], ...]

    def render(self) -> str:
        lines = ["FIGURE 2: N-Gram-Graph classification process"]
        lines.extend(f"  step: {s}" for s in self.steps)
        for label, size in sorted(self.class_graph_sizes.items()):
            lines.append(f"  class graph {label}: {size} edges")
        for name, feats in self.document_features:
            rounded = ", ".join(f"{v:.3f}" for v in feats)
            lines.append(f"  {name}: [{rounded}]")
        for name, pred in self.predictions:
            lines.append(f"  predict({name}) = {pred}")
        return "\n".join(lines)


def figure2_pipeline_trace() -> PipelineTrace:
    """Run the Figure 2 process end-to-end on a toy two-class corpus."""
    legit_texts = [
        "licensed pharmacy verified prescription required consultation",
        "licensed pharmacist consultation health prescription records",
        "verified pharmacy health insurance prescription transfer",
    ]
    illegit_texts = [
        "cheap viagra cialis no prescription needed discount pills",
        "discount viagra bonus pills no prescription worldwide",
        "cialis cheap pills no prescription overnight shipping",
    ]
    texts = legit_texts + illegit_texts
    labels = [1, 1, 1, 0, 0, 0]

    steps = (
        "split labelled documents by class",
        "build a character 4-gram graph per training document",
        "merge a random half of each class's graphs into the class graph",
        "map every document to (CS, SS, VS, NVS) against each class graph",
        "train a classifier on the similarity features",
        "classify unseen documents via their similarity features",
    )
    model = ClassGraphModel(class_sample_fraction=1.0, seed=0)
    features = model.fit_transform(texts, labels)
    from repro.ml.naive_bayes import GaussianNB

    clf = GaussianNB().fit(features, labels)
    unseen = [
        ("unseen-legit", "verified pharmacist prescription consultation records"),
        ("unseen-illegit", "viagra cialis cheap no prescription bonus pills"),
    ]
    unseen_features = model.transform([t for _, t in unseen])
    predictions = tuple(
        (name, int(p))
        for (name, _), p in zip(unseen, clf.predict(unseen_features))
    )
    return PipelineTrace(
        steps=steps,
        class_graph_sizes={
            label: graph.n_edges for label, graph in model.class_graphs.items()
        },
        document_features=tuple(
            (f"doc{i}(label={labels[i]})", tuple(features[i]))
            for i in range(len(texts))
        ),
        predictions=predictions,
    )


def figure3_trustrank_demo() -> TableResult:
    """Reproduce the Figure 3 illustration as a score table.

    Builds a small web of "good" (g1..g4) and "bad" (b1..b3) nodes in
    which good pages link mostly to good pages and bad pages link to
    bad pages (with one deceptive bad->good link), seeds TrustRank at
    g1 and g2, and reports the propagated trust per node.  The expected
    picture matches Figure 3b: seeds highest, good nodes reachable from
    the seed next, bad nodes near zero.
    """
    graph = DirectedGraph()
    good_edges = [
        ("g1", "g2"),
        ("g1", "g3"),
        ("g2", "g3"),
        ("g2", "g4"),
        ("g3", "g4"),
    ]
    bad_edges = [("b1", "b2"), ("b2", "b3"), ("b3", "b1")]
    deceptive = [("b1", "g1")]  # bad pages may point at good ones
    for src, dst in good_edges + bad_edges + deceptive:
        graph.add_edge(src, dst)
    initial = {node: (1.0 if node in ("g1", "g2") else 0.0) for node in graph.nodes()}
    scores = trustrank(graph, trusted_seed=["g1", "g2"])
    rows = tuple(
        (node, "good" if node.startswith("g") else "bad", initial[node], scores[node])
        for node in sorted(scores, key=scores.get, reverse=True)
    )
    return TableResult(
        table_id="figure3",
        title="TrustRank propagation on a good/bad node network",
        columns=("Node", "Kind", "Initial trust", "Propagated trust"),
        rows=rows,
        notes=(
            "good nodes reachable from the seed inherit trust; "
            "bad nodes stay near zero (approximate isolation)",
        ),
    )
