"""Summarization: merge a site's pages into one document and subsample it.

Section 4.1 of the paper: all crawled pages of a pharmacy are merged
into a single summary document (documents of ~160k terms are not
unusual); experiments then consider either the full document ("all
terms") or random subsamples of 100 / 250 / 1000 / 2000 terms.

:class:`Summarizer` performs both steps deterministically given a seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.text.preprocessing import TextPreprocessor
from repro.web.site import Website
from repro.exceptions import ValidationError

__all__ = ["Summarizer", "SummaryDocument", "TERM_SUBSET_SIZES"]

#: The subsample sizes evaluated in the paper (None = all terms).
TERM_SUBSET_SIZES: tuple[int | None, ...] = (100, 250, 1000, 2000, None)


@dataclass(frozen=True, slots=True)
class SummaryDocument:
    """A pharmacy reduced to a single (possibly subsampled) token list.

    Attributes:
        domain: the pharmacy's registrable domain.
        tokens: preprocessed tokens of the summary document.
        n_source_terms: token count of the full merged document before
            any subsampling (for diagnostics).
    """

    domain: str
    tokens: tuple[str, ...]
    n_source_terms: int

    @property
    def text(self) -> str:
        """Tokens re-joined with spaces (for character-level models)."""
        return " ".join(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)


class Summarizer:
    """Merge a website's pages and optionally subsample the terms.

    Args:
        preprocessor: the text preprocessor to apply to the merged text.
            Defaults to the paper's (Lucene stop words, no stemming).
        max_terms: if not ``None``, randomly select this many terms from
            the merged document (without replacement when possible).
            Selection keeps document order, matching "randomly selecting
            N terms" from a bag-of-terms perspective while preserving
            local context for character n-gram models.
        seed: RNG seed for the subsample, making summaries reproducible.
    """

    def __init__(
        self,
        preprocessor: TextPreprocessor | None = None,
        max_terms: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_terms is not None and max_terms < 1:
            raise ValidationError(f"max_terms must be >= 1 or None, got {max_terms}")
        self._preprocessor = preprocessor or TextPreprocessor()
        self._max_terms = max_terms
        self._seed = seed

    @property
    def max_terms(self) -> int | None:
        return self._max_terms

    def summarize_site(self, site: Website) -> SummaryDocument:
        """Summarize a crawled :class:`Website`."""
        return self.summarize_text(site.domain, site.merged_text())

    def summarize_text(self, domain: str, text: str) -> SummaryDocument:
        """Summarize raw merged text for ``domain``."""
        tokens = self._preprocessor.preprocess(text)
        n_source = len(tokens)
        if self._max_terms is not None and n_source > self._max_terms:
            tokens = self._subsample(domain, tokens)
        return SummaryDocument(
            domain=domain, tokens=tuple(tokens), n_source_terms=n_source
        )

    def _subsample(self, domain: str, tokens: list[str]) -> list[str]:
        """Pick ``max_terms`` positions uniformly without replacement.

        The RNG is keyed on (seed, domain) so the same site always gets
        the same subsample, independent of processing order.
        """
        rng = np.random.default_rng(
            [self._seed, zlib.crc32(domain.encode("utf-8"))]
        )
        assert self._max_terms is not None
        idx = rng.choice(len(tokens), size=self._max_terms, replace=False)
        idx.sort()
        return [tokens[i] for i in idx]
