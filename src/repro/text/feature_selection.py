"""Supervised term selection for text classification.

The paper reduces dimensionality by *random* term subsampling
(Section 4.1).  Classic text-categorization practice (Sebastiani [31],
Yang & Pedersen) instead scores terms against the labels and keeps the
top-k.  This module implements the two standard scorers so the
random-vs-informed choice can be ablated:

* **information gain** — entropy reduction of the class variable given
  the term's presence;
* **chi-squared** — independence test statistic between term presence
  and the class.

Both operate on presence/absence (document frequency) statistics, the
convention of the text-categorization literature.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np
from repro.exceptions import ValidationError

__all__ = [
    "information_gain_scores",
    "chi2_scores",
    "select_terms",
]


def _presence_counts(
    documents: Sequence[Sequence[str]], y: np.ndarray
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Per-term document-frequency in the positive / negative class."""
    pos_counts: Counter[str] = Counter()
    neg_counts: Counter[str] = Counter()
    for doc, label in zip(documents, y):
        seen = set(doc)
        if label == 1:
            pos_counts.update(seen)
        else:
            neg_counts.update(seen)
    terms = sorted(set(pos_counts) | set(neg_counts))
    pos = np.array([pos_counts.get(t, 0) for t in terms], dtype=np.float64)
    neg = np.array([neg_counts.get(t, 0) for t in terms], dtype=np.float64)
    return terms, pos, neg


def _entropy(p: np.ndarray) -> np.ndarray:
    """Binary entropy of probability array ``p`` (elementwise)."""
    p = np.clip(p, 1e-12, 1.0 - 1e-12)
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))


def information_gain_scores(
    documents: Sequence[Sequence[str]], y: Sequence[int]
) -> dict[str, float]:
    """Information gain of each term's presence w.r.t. the class.

    Args:
        documents: tokenized documents.
        y: binary labels aligned with ``documents``.

    Returns:
        term -> IG score (bits), higher = more class-informative.
    """
    labels = np.asarray(y, dtype=np.int64)
    if len(documents) != labels.shape[0]:
        raise ValidationError("documents and y disagree in length")
    n = labels.shape[0]
    if n == 0:
        return {}
    n_pos = float(np.sum(labels == 1))
    terms, pos, neg = _presence_counts(documents, labels)
    base = float(_entropy(np.array([n_pos / n]))[0])
    df = pos + neg
    p_term = df / n
    # P(class=1 | term present) and P(class=1 | term absent).
    p_pos_given_term = np.divide(pos, df, out=np.zeros_like(pos), where=df > 0)
    absent = n - df
    p_pos_given_absent = np.divide(
        n_pos - pos, absent, out=np.zeros_like(pos), where=absent > 0
    )
    conditional = p_term * _entropy(p_pos_given_term) + (
        1.0 - p_term
    ) * _entropy(p_pos_given_absent)
    gains = np.maximum(base - conditional, 0.0)
    return dict(zip(terms, gains.tolist()))


def chi2_scores(
    documents: Sequence[Sequence[str]], y: Sequence[int]
) -> dict[str, float]:
    """Chi-squared statistic of each term's presence vs the class."""
    labels = np.asarray(y, dtype=np.int64)
    if len(documents) != labels.shape[0]:
        raise ValidationError("documents and y disagree in length")
    n = labels.shape[0]
    if n == 0:
        return {}
    n_pos = float(np.sum(labels == 1))
    n_neg = n - n_pos
    terms, pos, neg = _presence_counts(documents, labels)
    # 2x2 contingency: a=pos&present, b=neg&present, c=pos&absent, d=neg&absent
    a, b = pos, neg
    c, d = n_pos - pos, n_neg - neg
    numerator = n * (a * d - b * c) ** 2
    denominator = (a + b) * (c + d) * (a + c) * (b + d)
    chi2 = np.divide(
        numerator, denominator, out=np.zeros_like(a), where=denominator > 0
    )
    return dict(zip(terms, chi2.tolist()))


def select_terms(
    documents: Sequence[Sequence[str]],
    y: Sequence[int],
    k: int,
    method: str = "information_gain",
) -> frozenset[str]:
    """The top-``k`` class-informative terms.

    Args:
        documents: tokenized training documents.
        y: labels.
        k: how many terms to keep.
        method: ``"information_gain"`` or ``"chi2"``.

    Returns:
        The selected term set (ties broken alphabetically).
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if method == "information_gain":
        scores = information_gain_scores(documents, y)
    elif method == "chi2":
        scores = chi2_scores(documents, y)
    else:
        raise ValidationError(f"unknown method: {method!r}")
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return frozenset(term for term, _ in ranked[:k])


def filter_documents(
    documents: Sequence[Sequence[str]], keep: frozenset[str]
) -> list[list[str]]:
    """Project documents onto a selected term set (order preserved)."""
    return [[t for t in doc if t in keep] for doc in documents]
