"""Term Vector model with TF-IDF weighting (Section 4.1.1).

Documents are represented as vectors over the corpus vocabulary; each
component carries a TF-IDF weight:

    tfidf(t, d) = tf(t, d) * idf(t)          with
    idf(t)      = ln((1 + |D|) / (1 + df(t))) + 1

(the smoothed variant, which never divides by zero for unseen terms).
Vectors are L2-normalized so that document length does not dominate.

The vectorizer is fit on training documents only; transforming unseen
documents silently drops out-of-vocabulary terms, which mirrors how the
model behaves on "new" data in the paper's temporal experiments.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError

__all__ = ["Vocabulary", "TfidfVectorizer"]


class Vocabulary:
    """An ordered term -> column-index mapping."""

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._index: dict[str, int] = {}
        for term in terms:
            self.add(term)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, term: str) -> bool:
        return term in self._index

    def add(self, term: str) -> int:
        """Add ``term`` if absent; return its column index."""
        idx = self._index.get(term)
        if idx is None:
            idx = len(self._index)
            self._index[term] = idx
        return idx

    def index_of(self, term: str) -> int | None:
        """Column index of ``term``, or ``None`` if unknown."""
        return self._index.get(term)

    def terms(self) -> tuple[str, ...]:
        """Terms in column order.

        Indices are assigned densely in insertion order, so the dict's
        iteration order already *is* the column order — no per-call
        sort needed.
        """
        return tuple(self._index)


class TfidfVectorizer:
    """Fit a vocabulary + IDF on token lists; transform to sparse TF-IDF.

    Args:
        min_df: drop terms appearing in fewer than this many documents.
        max_features: if set, keep only the ``max_features`` terms with
            the highest document frequency (ties broken alphabetically
            for determinism).
        sublinear_tf: when True use ``1 + ln(tf)`` instead of raw counts.
        normalize: L2-normalize each document vector (default True).
    """

    def __init__(
        self,
        min_df: int = 1,
        max_features: int | None = None,
        sublinear_tf: bool = False,
        normalize: bool = True,
    ) -> None:
        if min_df < 1:
            raise ValidationError(f"min_df must be >= 1, got {min_df}")
        if max_features is not None and max_features < 1:
            raise ValidationError(f"max_features must be >= 1, got {max_features}")
        self._min_df = min_df
        self._max_features = max_features
        self._sublinear_tf = sublinear_tf
        self._normalize = normalize
        self._vocabulary: Vocabulary | None = None
        self._idf: np.ndarray | None = None

    @property
    def vocabulary(self) -> Vocabulary:
        if self._vocabulary is None:
            raise NotFittedError("TfidfVectorizer has not been fitted")
        return self._vocabulary

    @property
    def idf(self) -> np.ndarray:
        if self._idf is None:
            raise NotFittedError("TfidfVectorizer has not been fitted")
        return self._idf

    def fit(self, documents: Sequence[Sequence[str]]) -> "TfidfVectorizer":
        """Learn vocabulary and IDF weights from tokenized documents."""
        if not documents:
            raise ValidationError("cannot fit TfidfVectorizer on an empty corpus")
        doc_freq: Counter[str] = Counter()
        for doc in documents:
            doc_freq.update(set(doc))
        return self.fit_document_frequencies(doc_freq, len(documents))

    def fit_document_frequencies(
        self, doc_freq: Counter[str], n_docs: int
    ) -> "TfidfVectorizer":
        """Finalize a fit from pre-counted document frequencies.

        The out-of-core path: a streaming caller counts ``doc_freq``
        one corpus shard at a time (merging per-shard Counters) and
        hands the totals here, so fitting a million-site vocabulary
        never holds the tokenized corpus in memory.  ``fit`` delegates
        to this method, so both paths select and order terms — and
        weight IDF — identically.
        """
        if n_docs < 1:
            raise ValidationError(f"n_docs must be >= 1, got {n_docs}")
        items = [(t, df) for t, df in doc_freq.items() if df >= self._min_df]
        if self._max_features is not None and len(items) > self._max_features:
            items.sort(key=lambda kv: (-kv[1], kv[0]))
            items = items[: self._max_features]
        items.sort(key=lambda kv: kv[0])  # deterministic column order
        vocab = Vocabulary(term for term, _ in items)
        idf = np.empty(len(vocab), dtype=np.float64)
        for term, df in items:
            idx = vocab.index_of(term)
            assert idx is not None
            idf[idx] = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        self._vocabulary = vocab
        self._idf = idf
        return self

    def transform(self, documents: Sequence[Sequence[str]]) -> sp.csr_matrix:
        """Transform tokenized documents to a sparse TF-IDF matrix.

        The CSR matrix is assembled in one batched pass: in-vocabulary
        token ids of all documents are flattened, term counts come from
        a single ``np.unique`` over ``row * |V| + col`` keys (whose
        sorted order *is* CSR row-major order), and the TF-IDF weights
        are computed with one vectorized expression.  Output is
        bit-identical to the former per-document dict loop (pinned by a
        regression test against
        :func:`repro.perf.reference.reference_tfidf_transform`).
        """
        vocab = self.vocabulary
        idf = self.idf
        n_docs = len(documents)
        n_vocab = len(vocab)
        lookup = vocab._index.get
        id_chunks: list[list[int]] = []
        lengths = np.empty(n_docs, dtype=np.int64)
        for i, doc in enumerate(documents):
            ids = [idx for term in doc if (idx := lookup(term)) is not None]
            id_chunks.append(ids)
            lengths[i] = len(ids)
        total = int(lengths.sum())
        if total == 0 or n_vocab == 0:
            matrix = sp.csr_matrix((n_docs, n_vocab), dtype=np.float64)
            return _l2_normalize_rows(matrix) if self._normalize else matrix
        flat_cols = np.fromiter(
            (c for chunk in id_chunks for c in chunk),
            dtype=np.int64,
            count=total,
        )
        flat_rows = np.repeat(np.arange(n_docs, dtype=np.int64), lengths)
        keys = flat_rows * n_vocab + flat_cols
        uniq, counts = np.unique(keys, return_counts=True)
        out_rows = uniq // n_vocab
        out_cols = (uniq - out_rows * n_vocab).astype(np.int32)
        tf = counts.astype(np.float64)
        if self._sublinear_tf:
            tf = 1.0 + np.log(tf)
        data = tf * idf[out_cols]
        indptr = np.zeros(n_docs + 1, dtype=np.int64)
        np.cumsum(np.bincount(out_rows, minlength=n_docs), out=indptr[1:])
        matrix = sp.csr_matrix(
            (data, out_cols, indptr),
            shape=(n_docs, n_vocab),
            dtype=np.float64,
        )
        if self._normalize:
            matrix = _l2_normalize_rows(matrix)
        return matrix

    def fit_transform(self, documents: Sequence[Sequence[str]]) -> sp.csr_matrix:
        """Equivalent to ``fit(documents).transform(documents)``."""
        return self.fit(documents).transform(documents)


def _l2_normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Row-wise L2 normalization; zero rows stay zero."""
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
    norms[norms == 0.0] = 1.0  # repro-lint: disable=R006 (exact zero-division guard)
    inv = sp.diags(1.0 / norms)
    return (inv @ matrix).tocsr()
