"""Text preprocessing: tokenization + stop-word removal, no stemming.

Mirrors Section 4.1 of the paper: stop words are removed (the paper used
Apache Lucene 3.4.0); stemming is deliberately **not** applied because
pharmacy text is dense with technical terms and trademarks that stemming
would corrupt.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.sanitizers import sanitizes
from repro.text.stopwords import default_stop_words
from repro.text.tokenization import iter_tokens
from repro.exceptions import ValidationError

__all__ = ["TextPreprocessor"]


class TextPreprocessor:
    """Tokenize, lowercase, and drop stop words.

    Args:
        stop_words: the stop set to remove.  Defaults to Lucene's
            33-word English list (the paper's choice).  Pass an empty
            collection to disable stop-word removal.
        min_token_length: tokens shorter than this are dropped
            (default 1, i.e. keep everything the tokenizer emits).
    """

    def __init__(
        self,
        stop_words: Iterable[str] | None = None,
        min_token_length: int = 1,
    ) -> None:
        if min_token_length < 1:
            raise ValidationError(f"min_token_length must be >= 1, got {min_token_length}")
        self._stop_words = (
            frozenset(w.lower() for w in stop_words)
            if stop_words is not None
            else default_stop_words()
        )
        self._min_len = min_token_length

    @property
    def stop_words(self) -> frozenset[str]:
        return self._stop_words

    @sanitizes("*")
    def preprocess(self, text: str) -> list[str]:
        """Return the non-stop-word tokens of ``text`` in order.

        Inherits :func:`~repro.text.tokenization.iter_tokens`'s
        sanitizer guarantee: every emitted token is ``[a-z0-9'-]``."""
        return [
            tok
            for tok in iter_tokens(text)
            if len(tok) >= self._min_len and tok not in self._stop_words
        ]

    def preprocess_to_text(self, text: str) -> str:
        """Like :meth:`preprocess` but re-joined with single spaces.

        Used by the N-Gram-Graph path, which works on character streams.
        """
        return " ".join(self.preprocess(text))
