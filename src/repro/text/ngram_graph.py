"""Character N-Gram Graphs (Section 4.1.2).

An N-Gram Graph represents a text as a graph whose vertices are the
character n-grams of the text and whose weighted edges record how often
two n-grams co-occur within a sliding window.  Per the paper (and
Giannakopoulos et al.), we use rank ``Lmin = Lmax = 4`` and window
``Dwin = 4``.

The module provides:

* :class:`NGramGraph` — build from text, merge (for class graphs), and
  the four similarity measures the paper uses:

  - Containment Similarity  ``CS(Gi, Gj) = sum_{e in Gi} mu(e, Gj) / min(|Gi|, |Gj|)``
  - Size Similarity         ``SS(Gi, Gj) = min(|Gi|, |Gj|) / max(|Gi|, |Gj|)``
  - Value Similarity        ``VS(Gi, Gj) = sum_{e in Gi} (min(wi,wj)/max(wi,wj)) / max(|Gi|, |Gj|)``
  - Normalized Value Sim.   ``NVS = VS / SS``

* :class:`ClassGraphModel` — the classification featurizer of Figure 2:
  one merged graph per class; each document is mapped to the vector of
  its similarities against every class graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import NotFittedError, ValidationError

__all__ = [
    "NGramGraph",
    "GraphSimilarities",
    "ClassGraphModel",
    "SIMILARITY_NAMES",
]

#: Feature order produced by :class:`ClassGraphModel` per class graph.
SIMILARITY_NAMES = ("cs", "ss", "vs", "nvs")


@dataclass(frozen=True, slots=True)
class GraphSimilarities:
    """The four graph similarity values between a document and a graph."""

    cs: float
    ss: float
    vs: float
    nvs: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The four similarities as ``(cs, ss, vs, nvs)``."""
        return (self.cs, self.ss, self.vs, self.nvs)


class NGramGraph:
    """A character n-gram graph.

    Edges are undirected (stored with a canonical key ordering) and
    weighted by co-occurrence counts within the sliding window; merged
    graphs carry averaged weights.

    Args:
        n: n-gram rank (paper: 4).
        window: neighbourhood distance Dwin (paper: 4).
    """

    def __init__(self, n: int = 4, window: int = 4) -> None:
        if n < 1:
            raise ValidationError(f"n-gram rank must be >= 1, got {n}")
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self._n = n
        self._window = window
        self._edges: dict[tuple[str, str], float] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_text(cls, text: str, n: int = 4, window: int = 4) -> "NGramGraph":
        """Build the n-gram graph of ``text``."""
        graph = cls(n=n, window=window)
        graph._add_text(text)
        return graph

    def _add_text(self, text: str) -> None:
        grams = self._ngrams(text)
        window = self._window
        edges = self._edges
        for i, gram in enumerate(grams):
            stop = min(i + window, len(grams) - 1)
            for j in range(i + 1, stop + 1):
                key = self._edge_key(gram, grams[j])
                edges[key] = edges.get(key, 0.0) + 1.0

    def _ngrams(self, text: str) -> list[str]:
        n = self._n
        if len(text) < n:
            return [text] if text else []
        return [text[i : i + n] for i in range(len(text) - n + 1)]

    @staticmethod
    def _edge_key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- introspection ---------------------------------------------------

    @property
    def n(self) -> int:
        """The n-gram length."""
        return self._n

    @property
    def window(self) -> int:
        """The neighbourhood window Dwin."""
        return self._window

    @property
    def n_edges(self) -> int:
        """|G| — the edge count used by the similarity formulas."""
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def edge_weight(self, a: str, b: str) -> float:
        """Weight of edge {a, b}, or 0.0 when absent."""
        return self._edges.get(self._edge_key(a, b), 0.0)

    def edges(self) -> Mapping[tuple[str, str], float]:
        """Read-only view of the weighted edge set."""
        return dict(self._edges)

    # -- merging (class graphs) -------------------------------------------

    def merge(self, other: "NGramGraph", learning_rate: float = 0.5) -> None:
        """Merge ``other`` into this graph in place.

        Weights are blended with the JInsect update rule
        ``w <- w + lr * (w_other - w)``; edges new to this graph are
        adopted with ``lr * w_other`` so repeated merging converges to
        the running average of the merged documents.

        Args:
            other: graph to merge in (must share n and window).
            learning_rate: blending factor in (0, 1].
        """
        if (other.n, other.window) != (self._n, self._window):
            raise ValidationError(
                "cannot merge graphs with different (n, window): "
                f"{(self._n, self._window)} vs {(other.n, other.window)}"
            )
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError(f"learning_rate must be in (0, 1], got {learning_rate}")
        for key, w_other in other._edges.items():
            w_self = self._edges.get(key)
            if w_self is None:
                self._edges[key] = learning_rate * w_other
            else:
                self._edges[key] = w_self + learning_rate * (w_other - w_self)

    @classmethod
    def merged(
        cls, graphs: Sequence["NGramGraph"], n: int = 4, window: int = 4
    ) -> "NGramGraph":
        """Build a class graph by folding ``graphs`` together.

        Uses learning rate ``1/i`` for the i-th merge so the result is
        the (approximate) average graph of the collection.
        """
        result = cls(n=n, window=window)
        for i, graph in enumerate(graphs, start=1):
            result.merge(graph, learning_rate=1.0 / i)
        return result

    # -- similarities ------------------------------------------------------

    def containment_similarity(self, other: "NGramGraph") -> float:
        """CS: fraction of this graph's edges present in ``other``."""
        if not self._edges or not other._edges:
            return 0.0
        shared = sum(1 for key in self._edges if key in other._edges)
        return shared / min(len(self._edges), len(other._edges))

    def size_similarity(self, other: "NGramGraph") -> float:
        """SS: ratio of the two edge-set sizes (min over max)."""
        if not self._edges or not other._edges:
            return 0.0
        return min(len(self._edges), len(other._edges)) / max(
            len(self._edges), len(other._edges)
        )

    def value_similarity(self, other: "NGramGraph") -> float:
        """VS: weight-aware containment."""
        if not self._edges or not other._edges:
            return 0.0
        total = 0.0
        other_edges = other._edges
        for key, w_self in self._edges.items():
            w_other = other_edges.get(key)
            if w_other is not None:
                hi = max(w_self, w_other)
                if hi > 0.0:
                    total += min(w_self, w_other) / hi
        return total / max(len(self._edges), len(other._edges))

    def normalized_value_similarity(self, other: "NGramGraph") -> float:
        """NVS = VS / SS (0 when SS is 0)."""
        ss = self.size_similarity(other)
        if ss == 0.0:  # repro-lint: disable=R006 (exact zero-division guard)
            return 0.0
        return self.value_similarity(other) / ss

    def similarities(self, other: "NGramGraph") -> GraphSimilarities:
        """All four similarity measures against ``other``.

        Equivalent to calling the four methods separately but computed
        in a single pass over this graph's edge set.
        """
        if not self._edges or not other._edges:
            return GraphSimilarities(cs=0.0, ss=0.0, vs=0.0, nvs=0.0)
        n_self = len(self._edges)
        n_other = len(other._edges)
        shared = 0
        vs_total = 0.0
        other_edges = other._edges
        for key, w_self in self._edges.items():
            w_other = other_edges.get(key)
            if w_other is not None:
                shared += 1
                hi = max(w_self, w_other)
                if hi > 0.0:
                    vs_total += min(w_self, w_other) / hi
        lo, hi = min(n_self, n_other), max(n_self, n_other)
        cs = shared / lo
        ss = lo / hi
        vs = vs_total / hi
        return GraphSimilarities(cs=cs, ss=ss, vs=vs, nvs=vs / ss)


class ClassGraphModel:
    """The N-Gram-Graph featurizer of Figure 2.

    ``fit`` builds one merged graph per class from (a subset of) the
    training documents; ``transform`` maps each document to the
    concatenated (CS, SS, VS, NVS) similarities against every class
    graph — 8 features for the paper's two classes.

    Args:
        n: n-gram rank (paper: 4).
        window: Dwin (paper: 4).
        class_sample_fraction: fraction of each class's training
            documents used to build its class graph.  The paper
            "randomly selected half of the training instances to build
            the class graph", i.e. 0.5.
        seed: RNG seed for the class-graph subsample.
    """

    def __init__(
        self,
        n: int = 4,
        window: int = 4,
        class_sample_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < class_sample_fraction <= 1.0:
            raise ValidationError(
                f"class_sample_fraction must be in (0, 1], got {class_sample_fraction}"
            )
        self._n = n
        self._window = window
        self._fraction = class_sample_fraction
        self._seed = seed
        self._class_graphs: dict[int, NGramGraph] | None = None
        self._class_order: tuple[int, ...] = ()

    @property
    def class_graphs(self) -> dict[int, NGramGraph]:
        """Fitted label -> merged class graph mapping."""
        if self._class_graphs is None:
            raise NotFittedError("ClassGraphModel has not been fitted")
        return self._class_graphs

    @property
    def classes(self) -> tuple[int, ...]:
        """Class labels in feature-block order."""
        if self._class_graphs is None:
            raise NotFittedError("ClassGraphModel has not been fitted")
        return self._class_order

    def feature_names(self) -> tuple[str, ...]:
        """Names of the transform output columns."""
        return tuple(
            f"{name}_class{label}"
            for label in self.classes
            for name in SIMILARITY_NAMES
        )

    def build_document_graph(self, text: str) -> NGramGraph:
        """Build one document graph with this model's (n, window)."""
        return NGramGraph.from_text(text, n=self._n, window=self._window)

    def fit(self, texts: Sequence[str], labels: Sequence[int]) -> "ClassGraphModel":
        """Build per-class graphs from training texts."""
        return self.fit_graphs(
            [self.build_document_graph(t) for t in texts], labels
        )

    def fit_graphs(
        self, graphs: Sequence[NGramGraph], labels: Sequence[int]
    ) -> "ClassGraphModel":
        """Like :meth:`fit` but over pre-built document graphs.

        Lets callers that evaluate many classifiers or folds build each
        document's graph exactly once.
        """
        if len(graphs) != len(labels):
            raise ValidationError(
                f"graphs and labels disagree in length: {len(graphs)} vs {len(labels)}"
            )
        if not graphs:
            raise ValidationError("cannot fit ClassGraphModel on an empty corpus")
        rng = np.random.default_rng(self._seed)
        by_class: dict[int, list[int]] = {}
        for i, label in enumerate(labels):
            by_class.setdefault(int(label), []).append(i)
        class_graphs: dict[int, NGramGraph] = {}
        for label in sorted(by_class):
            indices = by_class[label]
            n_pick = max(1, int(round(self._fraction * len(indices))))
            picked = rng.choice(len(indices), size=n_pick, replace=False)
            class_graphs[label] = NGramGraph.merged(
                [graphs[indices[k]] for k in sorted(picked)],
                n=self._n,
                window=self._window,
            )
        self._class_graphs = class_graphs
        self._class_order = tuple(sorted(class_graphs))
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Map texts to similarity-feature vectors.

        Returns:
            Array of shape ``(len(texts), 4 * n_classes)`` with columns
            ordered per :meth:`feature_names`.
        """
        return self.transform_graphs(
            [self.build_document_graph(t) for t in texts]
        )

    def transform_graphs(self, graphs: Sequence[NGramGraph]) -> np.ndarray:
        """Like :meth:`transform` but over pre-built document graphs."""
        class_graphs = self.class_graphs
        out = np.zeros((len(graphs), 4 * len(class_graphs)), dtype=np.float64)
        for row, doc in enumerate(graphs):
            col = 0
            for label in self._class_order:
                sims = doc.similarities(class_graphs[label])
                out[row, col : col + 4] = sims.as_tuple()
                col += 4
        return out

    def fit_transform(
        self, texts: Sequence[str], labels: Sequence[int]
    ) -> np.ndarray:
        """``fit`` then ``transform`` the same texts."""
        return self.fit(texts, labels).transform(texts)

    def document_similarities(
        self, text: str
    ) -> dict[int, GraphSimilarities]:
        """Similarities of one document against every class graph."""
        doc = NGramGraph.from_text(text, n=self._n, window=self._window)
        return {
            label: doc.similarities(graph)
            for label, graph in self.class_graphs.items()
        }
