"""Character N-Gram Graphs (Section 4.1.2), vectorized.

An N-Gram Graph represents a text as a graph whose vertices are the
character n-grams of the text and whose weighted edges record how often
two n-grams co-occur within a sliding window.  Per the paper (and
Giannakopoulos et al.), we use rank ``Lmin = Lmax = 4`` and window
``Dwin = 4``.

The module provides:

* :class:`NGramInterner` — a shared n-gram -> integer-id table; all
  graphs in a process intern through one table so edge identities are
  comparable across graphs without string hashing.
* :class:`NGramGraph` — build from text, merge (for class graphs), and
  the four similarity measures the paper uses:

  - Containment Similarity  ``CS(Gi, Gj) = sum_{e in Gi} mu(e, Gj) / min(|Gi|, |Gj|)``
  - Size Similarity         ``SS(Gi, Gj) = min(|Gi|, |Gj|) / max(|Gi|, |Gj|)``
  - Value Similarity        ``VS(Gi, Gj) = sum_{e in Gi} (min(wi,wj)/max(wi,wj)) / max(|Gi|, |Gj|)``
  - Normalized Value Sim.   ``NVS = VS / SS``

* :class:`ClassGraphModel` — the classification featurizer of Figure 2:
  one merged graph per class; each document is mapped to the vector of
  its similarities against every class graph.

Representation: an edge {a, b} is the packed ``int64`` key
``(min(id_a, id_b) << 32) | max(id_a, id_b)``; a graph stores one
sorted key array plus an aligned ``float64`` weight array.  Pairwise
and batch similarities are sorted-array intersections
(``searchsorted``/``intersect1d``) instead of per-edge dict probes; see
:class:`repro.perf.reference.ReferenceNGramGraph` for the equivalent
dict-loop semantics this implementation is property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.perf.parallel import pmap

__all__ = [
    "NGramGraph",
    "NGramInterner",
    "GraphSimilarities",
    "ClassGraphModel",
    "SIMILARITY_NAMES",
]

#: Feature order produced by :class:`ClassGraphModel` per class graph.
SIMILARITY_NAMES = ("cs", "ss", "vs", "nvs")

#: Bits per interned id inside a packed edge key.
_ID_BITS = 32
_ID_MASK = np.int64((1 << _ID_BITS) - 1)
#: Ids must stay below 2**31 so ``id << 32`` cannot overflow int64.
_MAX_IDS = 1 << 31


class NGramInterner:
    """A process-wide n-gram -> integer-id table.

    Interning maps every distinct n-gram string to a small dense
    integer once, so graphs can store and intersect packed integer
    edge keys instead of tuple-of-string dict keys.  Ids are assigned
    in first-seen order and are only meaningful within the process —
    :class:`NGramGraph` re-interns on unpickle, so artifacts stay
    portable across processes (which :func:`repro.perf.parallel.pmap`
    relies on).
    """

    __slots__ = ("_ids", "_grams")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._grams: list[str] = []

    def __len__(self) -> int:
        return len(self._grams)

    def intern(self, gram: str) -> int:
        """The id of ``gram``, assigning a fresh one if unseen."""
        gram_id = self._ids.get(gram)
        if gram_id is None:
            gram_id = len(self._grams)
            if gram_id >= _MAX_IDS:
                raise ValidationError(
                    f"n-gram interner exhausted ({_MAX_IDS} distinct grams)"
                )
            self._ids[gram] = gram_id
            self._grams.append(gram)
        return gram_id

    def intern_many(self, grams: Sequence[str]) -> np.ndarray:
        """Ids of ``grams`` (order-preserving), as an int64 array."""
        ids = self._ids
        table = self._grams
        out = np.empty(len(grams), dtype=np.int64)
        for i, gram in enumerate(grams):
            gram_id = ids.get(gram)
            if gram_id is None:
                gram_id = len(table)
                if gram_id >= _MAX_IDS:
                    raise ValidationError(
                        f"n-gram interner exhausted ({_MAX_IDS} distinct grams)"
                    )
                ids[gram] = gram_id
                table.append(gram)
            out[i] = gram_id
        return out

    def id_of(self, gram: str) -> int | None:
        """The id of ``gram`` without assigning, or ``None`` if unseen."""
        return self._ids.get(gram)

    def gram(self, gram_id: int) -> str:
        """The n-gram string of an assigned id."""
        return self._grams[gram_id]


#: Default table shared by every graph in the process.
_SHARED_INTERNER = NGramInterner()


def _pack_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Canonical (order-free) packed keys for id pairs ``(a[i], b[i])``."""
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return (lo << _ID_BITS) | hi


@dataclass(frozen=True, slots=True)
class GraphSimilarities:
    """The four graph similarity values between a document and a graph."""

    cs: float
    ss: float
    vs: float
    nvs: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The four similarities as ``(cs, ss, vs, nvs)``."""
        return (self.cs, self.ss, self.vs, self.nvs)


class NGramGraph:
    """A character n-gram graph.

    Edges are undirected (stored under a canonical packed key) and
    weighted by co-occurrence counts within the sliding window; merged
    graphs carry averaged weights.

    Args:
        n: n-gram rank (paper: 4).
        window: neighbourhood distance Dwin (paper: 4).
        interner: n-gram id table; defaults to the process-shared one.
    """

    __slots__ = ("_n", "_window", "_interner", "_keys", "_weights")

    def __init__(
        self,
        n: int = 4,
        window: int = 4,
        interner: NGramInterner | None = None,
    ) -> None:
        if n < 1:
            raise ValidationError(f"n-gram rank must be >= 1, got {n}")
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self._n = n
        self._window = window
        self._interner = interner if interner is not None else _SHARED_INTERNER
        self._keys: np.ndarray = np.empty(0, dtype=np.int64)
        self._weights: np.ndarray = np.empty(0, dtype=np.float64)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_text(cls, text: str, n: int = 4, window: int = 4) -> "NGramGraph":
        """Build the n-gram graph of ``text``."""
        graph = cls(n=n, window=window)
        graph._add_text(text)
        return graph

    @classmethod
    def from_edge_arrays(
        cls,
        keys: np.ndarray,
        weights: np.ndarray,
        *,
        n: int = 4,
        window: int = 4,
        interner: NGramInterner | None = None,
    ) -> "NGramGraph":
        """Wrap precomputed ``(sorted keys, weights)`` arrays as a graph.

        The incremental class-graph maintainer (:mod:`repro.stream.
        features`) rebuilds class graphs from running edge sums; this
        constructor adopts its arrays without re-tokenizing anything.
        ``keys`` must be packed edge keys interned through ``interner``
        (the shared table by default), strictly sorted ascending.

        Raises:
            ValidationError: mismatched lengths or unsorted keys.
        """
        keys = np.asarray(keys, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if keys.shape != weights.shape or keys.ndim != 1:
            raise ValidationError(
                f"edge arrays must be equal-length 1-D, got {keys.shape} "
                f"and {weights.shape}"
            )
        if keys.size > 1 and not bool(np.all(keys[:-1] < keys[1:])):
            raise ValidationError("edge keys must be strictly sorted ascending")
        graph = cls(n=n, window=window, interner=interner)
        graph._keys = keys.copy()
        graph._weights = weights.copy()
        return graph

    def _add_text(self, text: str) -> None:
        ids = self._interner.intern_many(self._ngrams(text))
        m = ids.size
        window = self._window
        # Pair (i, i+d) for every offset d up to the window, clipped at
        # the last gram — identical to the sliding-window double loop.
        parts = [_pack_pairs(ids[:-d], ids[d:]) for d in range(1, window + 1) if d < m]
        if not parts:
            return
        packed = np.concatenate(parts) if len(parts) > 1 else parts[0]
        keys, counts = np.unique(packed, return_counts=True)
        if self._keys.size == 0:
            self._keys = keys
            self._weights = counts.astype(np.float64)
            return
        self._accumulate(keys, counts.astype(np.float64))

    def _accumulate(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Add ``weights`` onto this graph's edges (union of key sets)."""
        union = np.union1d(self._keys, keys)
        w = np.zeros(union.size, dtype=np.float64)
        w[np.searchsorted(union, self._keys)] = self._weights
        pos = np.searchsorted(union, keys)
        w[pos] += weights
        self._keys = union
        self._weights = w

    def _ngrams(self, text: str) -> list[str]:
        n = self._n
        if len(text) < n:
            return [text] if text else []
        return [text[i : i + n] for i in range(len(text) - n + 1)]

    # -- introspection ---------------------------------------------------

    @property
    def n(self) -> int:
        """The n-gram length."""
        return self._n

    @property
    def window(self) -> int:
        """The neighbourhood window Dwin."""
        return self._window

    @property
    def n_edges(self) -> int:
        """|G| — the edge count used by the similarity formulas."""
        return int(self._keys.size)

    def __len__(self) -> int:
        return int(self._keys.size)

    def edge_weight(self, a: str, b: str) -> float:
        """Weight of edge {a, b}, or 0.0 when absent."""
        id_a = self._interner.id_of(a)
        id_b = self._interner.id_of(b)
        if id_a is None or id_b is None or self._keys.size == 0:
            return 0.0
        key = np.int64(min(id_a, id_b)) << _ID_BITS | np.int64(max(id_a, id_b))
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and self._keys[pos] == key:
            return float(self._weights[pos])
        return 0.0

    def edges(self) -> Mapping[tuple[str, str], float]:
        """The weighted edge set keyed by lexicographic string pairs."""
        interner = self._interner
        out: dict[tuple[str, str], float] = {}
        lo_ids = self._keys >> _ID_BITS
        hi_ids = self._keys & _ID_MASK
        for lo, hi, weight in zip(lo_ids, hi_ids, self._weights):
            a = interner.gram(int(lo))
            b = interner.gram(int(hi))
            key = (a, b) if a <= b else (b, a)
            out[key] = float(weight)
        return out

    # -- cross-interner alignment & pickling ------------------------------

    def _aligned(self, interner: NGramInterner) -> tuple[np.ndarray, np.ndarray]:
        """This graph's (keys, weights) expressed in ``interner``'s ids."""
        if interner is self._interner or self._keys.size == 0:
            return self._keys, self._weights
        own = self._interner
        lo = [own.gram(int(i)) for i in self._keys >> _ID_BITS]
        hi = [own.gram(int(i)) for i in self._keys & _ID_MASK]
        keys = _pack_pairs(interner.intern_many(lo), interner.intern_many(hi))
        order = np.argsort(keys)
        return keys[order], self._weights[order]

    def __getstate__(self) -> dict[str, Any]:
        own = self._interner
        return {
            "n": self._n,
            "window": self._window,
            "grams_lo": [own.gram(int(i)) for i in self._keys >> _ID_BITS],
            "grams_hi": [own.gram(int(i)) for i in self._keys & _ID_MASK],
            "weights": self._weights,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        # Re-intern into the unpickling process's shared table: interner
        # ids are process-local, gram strings are not.
        self._n = state["n"]
        self._window = state["window"]
        self._interner = _SHARED_INTERNER
        weights = np.asarray(state["weights"], dtype=np.float64)
        keys = _pack_pairs(
            self._interner.intern_many(state["grams_lo"]),
            self._interner.intern_many(state["grams_hi"]),
        )
        order = np.argsort(keys)
        self._keys = keys[order]
        self._weights = weights[order]

    # -- merging (class graphs) -------------------------------------------

    def merge(self, other: "NGramGraph", learning_rate: float = 0.5) -> None:
        """Merge ``other`` into this graph in place.

        Weights are blended with the JInsect update rule
        ``w <- w + lr * (w_other - w)``; edges new to this graph are
        adopted with ``lr * w_other`` so repeated merging converges to
        the running average of the merged documents.

        Args:
            other: graph to merge in (must share n and window).
            learning_rate: blending factor in (0, 1].
        """
        if (other.n, other.window) != (self._n, self._window):
            raise ValidationError(
                "cannot merge graphs with different (n, window): "
                f"{(self._n, self._window)} vs {(other.n, other.window)}"
            )
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError(f"learning_rate must be in (0, 1], got {learning_rate}")
        other_keys, other_weights = other._aligned(self._interner)
        if other_keys.size == 0:
            return
        if self._keys.size == 0:
            self._keys = other_keys.copy()
            self._weights = learning_rate * other_weights
            return
        union = np.union1d(self._keys, other_keys)
        w = np.zeros(union.size, dtype=np.float64)
        w[np.searchsorted(union, self._keys)] = self._weights
        pos = np.searchsorted(union, other_keys)
        known = np.isin(other_keys, self._keys, assume_unique=True)
        w[pos[known]] += learning_rate * (other_weights[known] - w[pos[known]])
        w[pos[~known]] = learning_rate * other_weights[~known]
        self._keys = union
        self._weights = w

    @classmethod
    def merged(
        cls, graphs: Sequence["NGramGraph"], n: int = 4, window: int = 4
    ) -> "NGramGraph":
        """Build a class graph by folding ``graphs`` together.

        Uses learning rate ``1/i`` for the i-th merge so the result is
        the (approximate) average graph of the collection.
        """
        result = cls(n=n, window=window)
        for i, graph in enumerate(graphs, start=1):
            result.merge(graph, learning_rate=1.0 / i)
        return result

    # -- similarities ------------------------------------------------------

    def _intersection(
        self, other: "NGramGraph"
    ) -> tuple[int, float]:
        """(shared edge count, VS numerator) against ``other``."""
        other_keys, other_weights = other._aligned(self._interner)
        _, idx_self, idx_other = np.intersect1d(
            self._keys, other_keys, assume_unique=True, return_indices=True
        )
        if idx_self.size == 0:
            return 0, 0.0
        w_self = self._weights[idx_self]
        w_other = other_weights[idx_other]
        ratios = np.minimum(w_self, w_other) / np.maximum(w_self, w_other)
        return int(idx_self.size), float(ratios.sum())

    def containment_similarity(self, other: "NGramGraph") -> float:
        """CS: fraction of this graph's edges present in ``other``."""
        if self._keys.size == 0 or other._keys.size == 0:
            return 0.0
        shared, _ = self._intersection(other)
        return shared / min(self.n_edges, other.n_edges)

    def size_similarity(self, other: "NGramGraph") -> float:
        """SS: ratio of the two edge-set sizes (min over max)."""
        if self._keys.size == 0 or other._keys.size == 0:
            return 0.0
        return min(self.n_edges, other.n_edges) / max(self.n_edges, other.n_edges)

    def value_similarity(self, other: "NGramGraph") -> float:
        """VS: weight-aware containment."""
        if self._keys.size == 0 or other._keys.size == 0:
            return 0.0
        _, vs_total = self._intersection(other)
        return vs_total / max(self.n_edges, other.n_edges)

    def normalized_value_similarity(self, other: "NGramGraph") -> float:
        """NVS = VS / SS (0 when SS is 0)."""
        ss = self.size_similarity(other)
        if ss == 0.0:  # repro-lint: disable=R006 (exact zero-division guard)
            return 0.0
        return self.value_similarity(other) / ss

    def similarities(self, other: "NGramGraph") -> GraphSimilarities:
        """All four similarity measures against ``other``.

        Equivalent to calling the four methods separately but computed
        from a single sorted-array intersection.
        """
        if self._keys.size == 0 or other._keys.size == 0:
            return GraphSimilarities(cs=0.0, ss=0.0, vs=0.0, nvs=0.0)
        shared, vs_total = self._intersection(other)
        lo = min(self.n_edges, other.n_edges)
        hi = max(self.n_edges, other.n_edges)
        cs = shared / lo
        ss = lo / hi
        vs = vs_total / hi
        return GraphSimilarities(cs=cs, ss=ss, vs=vs, nvs=vs / ss)


def _batch_similarities(
    graphs: Sequence[NGramGraph], class_graph: NGramGraph
) -> np.ndarray:
    """(CS, SS, VS, NVS) of every document graph against one class graph.

    One vectorized pass: all document edge keys are concatenated,
    located in the class graph's sorted key array with a single
    ``searchsorted``, and reduced per document with ``bincount`` —
    no per-document Python loop over edges.

    Returns:
        Array of shape ``(len(graphs), 4)``.
    """
    n_docs = len(graphs)
    out = np.zeros((n_docs, 4), dtype=np.float64)
    m = class_graph.n_edges
    if n_docs == 0 or m == 0:
        return out
    interner = class_graph._interner
    aligned = [g._aligned(interner) for g in graphs]
    sizes = np.fromiter((k.size for k, _ in aligned), dtype=np.int64, count=n_docs)
    total = int(sizes.sum())
    if total == 0:
        return out
    doc_of = np.repeat(np.arange(n_docs), sizes)
    doc_keys = np.concatenate([k for k, _ in aligned if k.size])
    doc_weights = np.concatenate([w for _, w in aligned if w.size])
    class_keys = class_graph._keys
    class_weights = class_graph._weights
    pos = np.searchsorted(class_keys, doc_keys)
    pos = np.minimum(pos, m - 1)
    hit = class_keys[pos] == doc_keys
    w_doc = doc_weights[hit]
    w_class = class_weights[pos[hit]]
    ratios = np.minimum(w_doc, w_class) / np.maximum(w_doc, w_class)
    shared = np.bincount(doc_of[hit], minlength=n_docs).astype(np.float64)
    vs_total = np.bincount(doc_of[hit], weights=ratios, minlength=n_docs)
    lo = np.minimum(sizes, m).astype(np.float64)
    hi = np.maximum(sizes, m).astype(np.float64)
    nonempty = sizes > 0
    np.divide(shared, lo, out=out[:, 0], where=nonempty)
    np.divide(lo, hi, out=out[:, 1], where=nonempty)
    np.divide(vs_total, hi, out=out[:, 2], where=nonempty)
    np.divide(out[:, 2], out[:, 1], out=out[:, 3], where=out[:, 1] > 0.0)
    return out


class ClassGraphModel:
    """The N-Gram-Graph featurizer of Figure 2.

    ``fit`` builds one merged graph per class from (a subset of) the
    training documents; ``transform`` maps each document to the
    concatenated (CS, SS, VS, NVS) similarities against every class
    graph — 8 features for the paper's two classes.

    Args:
        n: n-gram rank (paper: 4).
        window: Dwin (paper: 4).
        class_sample_fraction: fraction of each class's training
            documents used to build its class graph.  The paper
            "randomly selected half of the training instances to build
            the class graph", i.e. 0.5.
        seed: RNG seed for the class-graph subsample.
    """

    def __init__(
        self,
        n: int = 4,
        window: int = 4,
        class_sample_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < class_sample_fraction <= 1.0:
            raise ValidationError(
                f"class_sample_fraction must be in (0, 1], got {class_sample_fraction}"
            )
        self._n = n
        self._window = window
        self._fraction = class_sample_fraction
        self._seed = seed
        self._class_graphs: dict[int, NGramGraph] | None = None
        self._class_order: tuple[int, ...] = ()

    @classmethod
    def with_class_graphs(
        cls,
        class_graphs: Mapping[int, NGramGraph],
        *,
        n: int = 4,
        window: int = 4,
    ) -> "ClassGraphModel":
        """Adopt prebuilt per-class graphs as a fitted model.

        The incremental class-graph maintainer (:mod:`repro.stream.
        features`) rebuilds class graphs from running edge sums each
        tick; this constructor wraps them in a transform-capable model
        without re-merging anything.

        Raises:
            ValidationError: empty mapping.
        """
        if not class_graphs:
            raise ValidationError("class_graphs must be non-empty")
        model = cls(n=n, window=window, class_sample_fraction=1.0)
        model._class_graphs = dict(class_graphs)
        model._class_order = tuple(sorted(class_graphs))
        return model

    @property
    def class_graphs(self) -> dict[int, NGramGraph]:
        """Fitted label -> merged class graph mapping."""
        if self._class_graphs is None:
            raise NotFittedError("ClassGraphModel has not been fitted")
        return self._class_graphs

    @property
    def classes(self) -> tuple[int, ...]:
        """Class labels in feature-block order."""
        if self._class_graphs is None:
            raise NotFittedError("ClassGraphModel has not been fitted")
        return self._class_order

    def feature_names(self) -> tuple[str, ...]:
        """Names of the transform output columns."""
        return tuple(
            f"{name}_class{label}"
            for label in self.classes
            for name in SIMILARITY_NAMES
        )

    def build_document_graph(self, text: str) -> NGramGraph:
        """Build one document graph with this model's (n, window)."""
        return NGramGraph.from_text(text, n=self._n, window=self._window)

    def build_document_graphs(
        self, texts: Iterable[str], jobs: int | None = None
    ) -> list[NGramGraph]:
        """Document graphs for ``texts``, optionally across processes.

        Args:
            texts: document texts.
            jobs: worker count per
                :func:`repro.perf.parallel.resolve_jobs`.
        """
        build = partial(NGramGraph.from_text, n=self._n, window=self._window)
        return pmap(build, texts, jobs=jobs)

    def fit(self, texts: Sequence[str], labels: Sequence[int]) -> "ClassGraphModel":
        """Build per-class graphs from training texts."""
        return self.fit_graphs(self.build_document_graphs(texts), labels)

    def fit_graphs(
        self, graphs: Sequence[NGramGraph], labels: Sequence[int]
    ) -> "ClassGraphModel":
        """Like :meth:`fit` but over pre-built document graphs.

        Lets callers that evaluate many classifiers or folds build each
        document's graph exactly once.
        """
        if len(graphs) != len(labels):
            raise ValidationError(
                f"graphs and labels disagree in length: {len(graphs)} vs {len(labels)}"
            )
        if not graphs:
            raise ValidationError("cannot fit ClassGraphModel on an empty corpus")
        rng = np.random.default_rng(self._seed)
        by_class: dict[int, list[int]] = {}
        for i, label in enumerate(labels):
            by_class.setdefault(int(label), []).append(i)
        class_graphs: dict[int, NGramGraph] = {}
        for label in sorted(by_class):
            indices = by_class[label]
            n_pick = max(1, int(round(self._fraction * len(indices))))
            picked = rng.choice(len(indices), size=n_pick, replace=False)
            class_graphs[label] = NGramGraph.merged(
                [graphs[indices[k]] for k in sorted(picked)],
                n=self._n,
                window=self._window,
            )
        self._class_graphs = class_graphs
        self._class_order = tuple(sorted(class_graphs))
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Map texts to similarity-feature vectors.

        Returns:
            Array of shape ``(len(texts), 4 * n_classes)`` with columns
            ordered per :meth:`feature_names`.
        """
        return self.transform_graphs(self.build_document_graphs(texts))

    def transform_many(
        self, texts: Sequence[str], jobs: int | None = None
    ) -> np.ndarray:
        """Batch :meth:`transform`: graph building optionally parallel,
        similarities computed in one vectorized pass per class graph.

        Args:
            texts: document texts.
            jobs: worker count for graph construction per
                :func:`repro.perf.parallel.resolve_jobs`.

        Returns:
            Same array :meth:`transform` returns.
        """
        return self.transform_graphs(self.build_document_graphs(texts, jobs=jobs))

    def transform_graphs(self, graphs: Sequence[NGramGraph]) -> np.ndarray:
        """Like :meth:`transform` but over pre-built document graphs."""
        class_graphs = self.class_graphs
        out = np.zeros((len(graphs), 4 * len(class_graphs)), dtype=np.float64)
        for k, label in enumerate(self._class_order):
            out[:, 4 * k : 4 * k + 4] = _batch_similarities(
                graphs, class_graphs[label]
            )
        return out

    def fit_transform(
        self, texts: Sequence[str], labels: Sequence[int]
    ) -> np.ndarray:
        """``fit`` then ``transform`` the same texts."""
        graphs = self.build_document_graphs(texts)
        return self.fit_graphs(graphs, labels).transform_graphs(graphs)

    def document_similarities(
        self, text: str
    ) -> dict[int, GraphSimilarities]:
        """Similarities of one document against every class graph."""
        doc = NGramGraph.from_text(text, n=self._n, window=self._window)
        return {
            label: doc.similarities(graph)
            for label, graph in self.class_graphs.items()
        }
