"""Character N-Gram (bag) model — the baseline N-Gram Graphs improve on.

Section 2.2 of the paper discusses Giannakopoulos et al. [13], who
compare the Term Vector model, the **Character N-Grams model**, and the
N-Gram Graphs model.  The graphs win because they keep character order;
the plain character-n-gram *bag* discards it.  This module implements
that baseline so the comparison can be reproduced
(`repro.experiments.ablations.representation_ablation`).

The vectorizer mirrors :class:`~repro.text.term_vector.TfidfVectorizer`
but over character n-grams instead of word terms.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError

__all__ = ["CharNGramVectorizer"]


class CharNGramVectorizer:
    """TF-IDF over character n-grams of raw text.

    Args:
        n: n-gram length (default 4, matching the N-Gram-Graph rank).
        min_df: drop n-grams appearing in fewer documents than this.
        max_features: keep only the most document-frequent n-grams.
        normalize: L2-normalize rows (default True).
    """

    def __init__(
        self,
        n: int = 4,
        min_df: int = 1,
        max_features: int | None = None,
        normalize: bool = True,
    ) -> None:
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        if min_df < 1:
            raise ValidationError(f"min_df must be >= 1, got {min_df}")
        if max_features is not None and max_features < 1:
            raise ValidationError(f"max_features must be >= 1, got {max_features}")
        self._n = n
        self._min_df = min_df
        self._max_features = max_features
        self._normalize = normalize
        self._index: dict[str, int] | None = None
        self._idf: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self._n

    def _ngrams(self, text: str) -> list[str]:
        if len(text) < self._n:
            return [text] if text else []
        return [text[i : i + self._n] for i in range(len(text) - self._n + 1)]

    def fit(self, texts: Sequence[str]) -> "CharNGramVectorizer":
        """Learn the n-gram vocabulary and IDF weights."""
        if not texts:
            raise ValidationError("cannot fit CharNGramVectorizer on an empty corpus")
        doc_freq: Counter[str] = Counter()
        for text in texts:
            doc_freq.update(set(self._ngrams(text)))
        items = [(g, df) for g, df in doc_freq.items() if df >= self._min_df]
        if self._max_features is not None and len(items) > self._max_features:
            items.sort(key=lambda kv: (-kv[1], kv[0]))
            items = items[: self._max_features]
        items.sort(key=lambda kv: kv[0])
        self._index = {gram: i for i, (gram, _) in enumerate(items)}
        n_docs = len(texts)
        idf = np.empty(len(items))
        for gram, df in items:
            idf[self._index[gram]] = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        self._idf = idf
        return self

    def transform(self, texts: Sequence[str]) -> sp.csr_matrix:
        """Map texts to the sparse TF-IDF n-gram matrix."""
        if self._index is None or self._idf is None:
            raise NotFittedError("CharNGramVectorizer has not been fitted")
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for text in texts:
            counts: Counter[int] = Counter()
            for gram in self._ngrams(text):
                idx = self._index.get(gram)
                if idx is not None:
                    counts[idx] += 1
            for idx in sorted(counts):
                indices.append(idx)
                data.append(counts[idx] * self._idf[idx])
            indptr.append(len(indices))
        matrix = sp.csr_matrix(
            (np.asarray(data), np.asarray(indices, dtype=np.int32), indptr),
            shape=(len(texts), len(self._index)),
        )
        if self._normalize:
            norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
            norms[norms == 0.0] = 1.0  # repro-lint: disable=R006 (exact zero-division guard)
            matrix = (sp.diags(1.0 / norms) @ matrix).tocsr()
        return matrix

    def fit_transform(self, texts: Sequence[str]) -> sp.csr_matrix:
        """``fit(texts).transform(texts)``."""
        return self.fit(texts).transform(texts)
