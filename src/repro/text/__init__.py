"""Text substrate: preprocessing, summarization, and representations."""

from repro.text.char_ngrams import CharNGramVectorizer
from repro.text.feature_selection import (
    chi2_scores,
    filter_documents,
    information_gain_scores,
    select_terms,
)
from repro.text.ngram_graph import (
    ClassGraphModel,
    GraphSimilarities,
    NGramGraph,
    SIMILARITY_NAMES,
)
from repro.text.preprocessing import TextPreprocessor
from repro.text.stopwords import (
    EXTENDED_ENGLISH_STOP_WORDS,
    LUCENE_ENGLISH_STOP_WORDS,
    default_stop_words,
)
from repro.text.summarization import (
    Summarizer,
    SummaryDocument,
    TERM_SUBSET_SIZES,
)
from repro.text.term_vector import TfidfVectorizer, Vocabulary
from repro.text.tokenization import iter_tokens, tokenize

__all__ = [
    "CharNGramVectorizer",
    "chi2_scores",
    "filter_documents",
    "information_gain_scores",
    "select_terms",
    "ClassGraphModel",
    "GraphSimilarities",
    "NGramGraph",
    "SIMILARITY_NAMES",
    "TextPreprocessor",
    "EXTENDED_ENGLISH_STOP_WORDS",
    "LUCENE_ENGLISH_STOP_WORDS",
    "default_stop_words",
    "Summarizer",
    "SummaryDocument",
    "TERM_SUBSET_SIZES",
    "TfidfVectorizer",
    "Vocabulary",
    "iter_tokens",
    "tokenize",
]
