"""Word tokenization.

A deliberately simple, Lucene-StandardAnalyzer-like tokenizer: lowercase
alphanumeric runs, keeping internal apostrophes and hyphens so that
terms like ``"fda-approved"`` and ``"don't"`` survive as single tokens.
The paper's pipeline does **not** stem (technical terms and trademarks
would be mangled), and neither does this module.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.devtools.sanitizers import sanitizes

__all__ = ["tokenize", "iter_tokens"]

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


@sanitizes("*")
def iter_tokens(text: str) -> Iterator[str]:
    """Yield lowercase tokens from ``text`` in document order.

    A full sanitizer for taint purposes: the output alphabet is
    ``[a-z0-9'-]``, which can express no path traversal, regex
    metacharacters, URLs, or markup.
    """
    for match in _TOKEN_RE.finditer(text.lower()):
        yield match.group(0)


@sanitizes("*")
def tokenize(text: str) -> list[str]:
    """Tokenize ``text`` into a list of lowercase tokens.

    >>> tokenize("Buy FDA-Approved drugs, no prescription!")
    ['buy', 'fda-approved', 'drugs', 'no', 'prescription']
    """
    return list(iter_tokens(text))
