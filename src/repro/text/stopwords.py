"""English stop-word lists.

The paper removes stop words with Apache Lucene 3.4.0.  Lucene's
``StopAnalyzer.ENGLISH_STOP_WORDS_SET`` is a 33-word list reproduced
here verbatim as :data:`LUCENE_ENGLISH_STOP_WORDS`.  A larger
:data:`EXTENDED_ENGLISH_STOP_WORDS` set is provided for callers who want
more aggressive pruning; the default pipeline uses the Lucene set to
stay faithful to the paper.
"""

from __future__ import annotations

__all__ = [
    "LUCENE_ENGLISH_STOP_WORDS",
    "EXTENDED_ENGLISH_STOP_WORDS",
    "default_stop_words",
]

#: Lucene 3.x StopAnalyzer.ENGLISH_STOP_WORDS_SET (what the paper used).
LUCENE_ENGLISH_STOP_WORDS = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
        "if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
        "such", "that", "the", "their", "then", "there", "these", "they",
        "this", "to", "was", "will", "with",
    }
)

#: A broader conventional English stop list (superset of the Lucene set).
EXTENDED_ENGLISH_STOP_WORDS = LUCENE_ENGLISH_STOP_WORDS | frozenset(
    {
        "about", "above", "after", "again", "against", "all", "am",
        "any", "because", "been", "before", "being", "below", "between",
        "both", "can", "cannot", "could", "did", "do", "does", "doing",
        "down", "during", "each", "few", "from", "further", "had", "has",
        "have", "having", "he", "her", "here", "hers", "herself", "him",
        "himself", "his", "how", "i", "its", "itself", "just", "me",
        "more", "most", "my", "myself", "nor", "now", "off", "once",
        "only", "other", "our", "ours", "ourselves", "out", "over",
        "own", "same", "she", "should", "so", "some", "than", "them",
        "themselves", "those", "through", "too", "under", "until", "up",
        "very", "we", "were", "what", "when", "where", "which", "while",
        "who", "whom", "why", "would", "you", "your", "yours",
        "yourself", "yourselves",
    }
)


def default_stop_words() -> frozenset[str]:
    """The stop set the default pipeline uses (Lucene's, per the paper)."""
    return LUCENE_ENGLISH_STOP_WORDS
