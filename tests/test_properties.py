"""Cross-module property-based tests (hypothesis).

These verify structural invariants that must hold for *any* input, not
just the fixtures: probability simplexes, score conservation, label
closure, and subsampling bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.graph import DirectedGraph
from repro.network.pagerank import pagerank
from repro.network.trustrank import trustrank


# -- random graph strategy ---------------------------------------------------

_node = st.sampled_from([f"n{i}" for i in range(8)])
_edges = st.lists(
    st.tuples(_node, _node).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=24,
)


def _build(edges):
    graph = DirectedGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


class TestGraphScoreProperties:
    @given(edges=_edges)
    @settings(max_examples=40)
    def test_pagerank_is_a_distribution(self, edges):
        scores = pagerank(_build(edges))
        values = np.array(list(scores.values()))
        assert np.all(values >= -1e-12)
        assert values.sum() == pytest.approx(1.0, abs=1e-6)

    @given(edges=_edges)
    @settings(max_examples=40)
    def test_trustrank_is_a_distribution(self, edges):
        graph = _build(edges)
        seed = next(iter(graph.nodes()))
        scores = trustrank(graph, [seed])
        values = np.array(list(scores.values()))
        assert np.all(values >= -1e-12)
        assert values.sum() == pytest.approx(1.0, abs=1e-6)

    @given(edges=_edges)
    @settings(max_examples=40)
    def test_trustrank_seed_has_positive_trust(self, edges):
        graph = _build(edges)
        seed = next(iter(graph.nodes()))
        scores = trustrank(graph, [seed])
        assert scores[seed] > 0.0


# -- classifier output properties ---------------------------------------------

_dataset = st.integers(0, 10_000)


def _random_dataset(seed, n=40, d=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.integers(0, 2, n)
    if y.sum() in (0, n):  # force both classes
        y[0] = 1 - y[0]
    return X, y


class TestClassifierProperties:
    @given(seed=_dataset)
    @settings(max_examples=20, deadline=None)
    def test_gaussian_nb_probability_simplex(self, seed):
        from repro.ml.naive_bayes import GaussianNB

        X, y = _random_dataset(seed)
        proba = GaussianNB().fit(X, y).predict_proba(X)
        assert np.all(proba >= 0)
        assert np.allclose(proba.sum(axis=1), 1.0)

    @given(seed=_dataset)
    @settings(max_examples=15, deadline=None)
    def test_tree_predictions_within_label_set(self, seed):
        from repro.ml.tree import C45Tree

        X, y = _random_dataset(seed)
        predictions = C45Tree(max_depth=4).fit(X, y + 3).predict(X)
        assert set(predictions) <= {3, 4}

    @given(seed=_dataset)
    @settings(max_examples=15, deadline=None)
    def test_svm_margin_sign_matches_prediction(self, seed):
        from repro.ml.svm import LinearSVC

        X, y = _random_dataset(seed)
        clf = LinearSVC(n_epochs=3).fit(X, y)
        margins = clf.decision_function(X)
        predictions = clf.predict(X)
        assert np.array_equal(predictions, (margins > 0).astype(np.int64))


# -- summarization properties ---------------------------------------------------

_words = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "pills", "care"]),
    min_size=1,
    max_size=120,
)


class TestSummarizerProperties:
    @given(words=_words, max_terms=st.integers(1, 40), seed=st.integers(0, 99))
    @settings(max_examples=40)
    def test_subsample_never_exceeds_budget(self, words, max_terms, seed):
        from repro.text.summarization import Summarizer

        doc = Summarizer(max_terms=max_terms, seed=seed).summarize_text(
            "x.com", " ".join(words)
        )
        assert len(doc) <= max_terms
        assert len(doc) <= doc.n_source_terms

    @given(words=_words, max_terms=st.integers(1, 40))
    @settings(max_examples=40)
    def test_subsample_tokens_come_from_source(self, words, max_terms):
        from repro.text.preprocessing import TextPreprocessor
        from repro.text.summarization import Summarizer

        source = set(TextPreprocessor().preprocess(" ".join(words)))
        doc = Summarizer(max_terms=max_terms).summarize_text(
            "x.com", " ".join(words)
        )
        assert set(doc.tokens) <= source
