"""End-to-end integration tests across all subsystems.

These exercise the whole chain the paper describes: synthetic web →
crawl → summarize → classify (text, network, ensemble) → rank, on the
shared tiny corpus.
"""

import numpy as np
import pytest

from repro.core.evaluation import cross_validate_pipeline
from repro.core.ranking import analyze_outliers
from repro.core.text_pipeline import TfidfTextPipeline
from repro.core.verifier import PharmacyVerifier
from repro.ml.naive_bayes import MultinomialNB


class TestEndToEnd:
    def test_text_cv_reaches_paper_band(self, tiny_corpus, tiny_documents):
        """TF-IDF + NBM 3-fold CV should land in the paper's band
        (accuracy >= 0.95, AUC >= 0.97 at 1000 terms)."""
        agg = cross_validate_pipeline(
            lambda: TfidfTextPipeline(MultinomialNB()),
            tiny_documents,
            tiny_corpus.labels,
            n_folds=3,
        )
        assert agg.accuracy.mean >= 0.95
        assert agg.auc_roc.mean >= 0.97

    def test_confidence_intervals_small(self, tiny_corpus, tiny_documents):
        """Paper Section 6.3: fold results are stable (CI < a few %)."""
        agg = cross_validate_pipeline(
            lambda: TfidfTextPipeline(MultinomialNB()),
            tiny_documents,
            tiny_corpus.labels,
            n_folds=3,
        )
        assert agg.accuracy.ci_half_width < 0.1

    def test_verifier_cross_dataset(self, tiny_corpus, tiny_corpus2):
        """Train on Dataset 1, verify Dataset 2 (the paper's temporal
        robustness scenario)."""
        verifier = PharmacyVerifier(seed=0).fit(tiny_corpus)
        reports = verifier.verify_sites(list(tiny_corpus2.sites))
        predictions = np.array([r.predicted_label for r in reports])
        accuracy = (predictions == tiny_corpus2.labels).mean()
        assert accuracy > 0.85

    def test_full_ranking_with_outlier_analysis(self, tiny_corpus):
        verifier = PharmacyVerifier(seed=0).fit(tiny_corpus)
        result = verifier.rank_sites(
            list(tiny_corpus.sites), tiny_corpus.labels
        )
        assert result.pairord > 0.9
        outliers = analyze_outliers(result, top_k=3)
        assert len(outliers.illegitimate_outliers) == 3
        assert all(
            e.oracle_label == 0 for e in outliers.illegitimate_outliers
        )

    def test_crawler_respects_paper_page_cap(self, tiny_snapshot_pair):
        from repro.web.crawler import Crawler

        snap1, _ = tiny_snapshot_pair
        crawler = Crawler(snap1.host, max_pages=2)
        site = crawler.crawl_site(f"https://www.{snap1.domains[0]}/")
        assert site.n_pages == 2

    def test_corpus_oracle_consistent_with_labels(self, tiny_corpus):
        for domain, label in zip(tiny_corpus.domains, tiny_corpus.labels):
            assert tiny_corpus.oracle(domain) == label
