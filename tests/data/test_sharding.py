"""Tests for sharded corpus generation and lazy reading.

The load-bearing properties:

* the union of all shards is identical at any shard count K,
* shard files are byte-identical at any worker count,
* a single-domain lookup opens exactly one shard.
"""

from __future__ import annotations

import json

import pytest

from repro.data.sharding import (
    MANIFEST_FILENAME,
    ShardedCorpus,
    ShardManifest,
    plan_domains,
    plan_site,
    shard_filename,
    shard_of,
    site_seed,
    stable_hash,
    write_shards,
)
from repro.data.synthesis import GeneratorConfig
from repro.exceptions import MissingKeyError, ValidationError
from repro.io import PersistenceError

CONFIG = GeneratorConfig(
    n_legitimate=8,
    n_illegitimate=56,
    n_affiliate_hubs=3,
    min_pages=2,
    max_pages=4,
    min_terms_per_page=20,
    max_terms_per_page=40,
    seed=7,
)


def _corpus_snapshot(root):
    """Every (domain, pages, record) of a sharded corpus, sorted."""
    corpus = ShardedCorpus(root)
    out = {}
    for _, sites, records in corpus.iter_shards():
        for site, record in zip(sites, records):
            out[site.domain] = (site.pages, record)
    return out


class TestStableHashing:
    def test_stable_hash_is_process_independent(self):
        # Pinned value: sha256 never changes, unlike builtin hash().
        assert stable_hash("example.com") == stable_hash("example.com")
        assert stable_hash("a") != stable_hash("b")

    def test_shard_of_partitions_within_bounds(self):
        for k in (1, 3, 8):
            assert all(
                0 <= shard_of(f"d{i}.example", k) < k for i in range(50)
            )

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ValidationError):
            shard_of("x.example", 0)

    def test_site_seed_varies_by_purpose_and_domain(self):
        a = site_seed(7, "x.example", "site")
        assert a == site_seed(7, "x.example", "site")
        assert a != site_seed(7, "x.example", "role")
        assert a != site_seed(7, "y.example", "site")
        assert a != site_seed(8, "x.example", "site")


class TestSitePlanning:
    def test_plan_domains_is_pure(self):
        assert plan_domains(CONFIG) == plan_domains(CONFIG)

    def test_hub_domains_are_sorted_and_illegit(self):
        legit, illegit, hubs = plan_domains(CONFIG)
        assert list(hubs) == sorted(hubs)
        assert set(hubs) <= set(illegit)
        assert len(legit) == CONFIG.n_legitimate

    def test_plan_site_deterministic(self):
        _, illegit, hubs = plan_domains(CONFIG)
        domain = illegit[0]
        assert plan_site(CONFIG, domain, 0, hubs=hubs) == plan_site(
            CONFIG, domain, 0, hubs=hubs
        )

    def test_member_targets_come_from_hubs(self):
        _, illegit, hubs = plan_domains(CONFIG)
        members = [
            plan_site(CONFIG, d, 0, is_hub=d in hubs, hubs=hubs)
            for d in illegit
        ]
        assert any(p.is_member for p in members)
        for p in members:
            assert set(p.hub_targets) <= set(hubs)
            if p.is_member:
                assert 1 <= len(p.hub_targets) <= 2


class TestShardCountInvariance:
    def test_union_identical_at_k1_and_k8(self, tmp_path):
        write_shards(CONFIG, tmp_path / "k1", 1)
        write_shards(CONFIG, tmp_path / "k8", 8)
        assert _corpus_snapshot(tmp_path / "k1") == _corpus_snapshot(
            tmp_path / "k8"
        )

    def test_worker_count_does_not_change_bytes(self, tmp_path):
        serial = write_shards(CONFIG, tmp_path / "serial", 4, jobs=None)
        parallel = write_shards(CONFIG, tmp_path / "parallel", 4, jobs=2)
        assert serial.shards == parallel.shards
        for k in range(4):
            name = shard_filename(k)
            assert (tmp_path / "serial" / name).read_bytes() == (
                tmp_path / "parallel" / name
            ).read_bytes()

    def test_manifest_round_trips_config(self, tmp_path):
        manifest = write_shards(CONFIG, tmp_path, 3)
        assert manifest.generator_config == CONFIG
        reloaded = ShardManifest.from_dict(
            json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        )
        assert reloaded.generator_config == CONFIG
        assert reloaded.n_sites == CONFIG.n_legitimate + CONFIG.n_illegitimate

    def test_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValidationError):
            write_shards(CONFIG, tmp_path, 0)


class TestShardedCorpusReader:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("shards")
        write_shards(CONFIG, root, 4)
        return root

    def test_lookup_opens_exactly_one_shard(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        _, illegit, _ = plan_domains(CONFIG)
        domain = illegit[0]
        assert corpus.get(domain) is not None
        assert corpus.shard_opens == 1
        # Same-shard lookup hits the LRU.
        corpus.get(domain)
        assert corpus.shard_opens == 1

    def test_lru_evicts_beyond_capacity(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir, max_open_shards=1)
        first, *_, last = range(corpus.n_shards)
        corpus._shard(first)
        corpus._shard(last)
        corpus._shard(first)  # evicted, reopened
        assert corpus.shard_opens == 3

    def test_oracle_and_record(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        legit, illegit, _ = plan_domains(CONFIG)
        assert corpus.oracle(legit[0]) == 1
        assert corpus.oracle(illegit[0]) == 0
        assert corpus.record_for(legit[0]).domain == legit[0]

    def test_missing_domain(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        assert corpus.get("nope.example") is None
        assert "nope.example" not in corpus
        with pytest.raises(MissingKeyError):
            corpus.site_for("nope.example")
        with pytest.raises(MissingKeyError):
            corpus.record_for("nope.example")

    def test_sites_view_matches_streaming_order(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        view = corpus.sites_view()
        streamed = list(corpus.iter_sites())
        assert len(view) == len(streamed) == len(corpus)
        assert view[0] == streamed[0]
        assert view[-1] == streamed[-1]
        assert view[3:6] == streamed[3:6]
        with pytest.raises(IndexError):
            view[len(corpus)]

    def test_domains_match_headers_and_placement(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        domains = corpus.domains()
        assert len(domains) == len(corpus)
        # Header-only listing opens no shard files.
        assert corpus.shard_opens == 0
        legit, illegit, _ = plan_domains(CONFIG)
        assert set(domains) == set(legit) | set(illegit)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            ShardedCorpus(tmp_path)

    def test_corrupt_shard_raises(self, corpus_dir, tmp_path):
        import shutil

        root = tmp_path / "corrupt"
        shutil.copytree(corpus_dir, root)
        victim = root / shard_filename(0)
        victim.write_text("not json\n")
        corpus = ShardedCorpus(root)
        with pytest.raises(PersistenceError):
            corpus._shard(0)

    def test_rejects_bad_lru_capacity(self, corpus_dir):
        with pytest.raises(ValidationError):
            ShardedCorpus(corpus_dir, max_open_shards=0)
