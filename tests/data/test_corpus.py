"""Tests for PharmacyCorpus."""

import numpy as np
import pytest

from repro.data.corpus import ILLEGITIMATE, LEGITIMATE, PharmacyCorpus
from repro.data.synthesis import PharmacyRecord
from repro.exceptions import DataGenerationError
from repro.web.page import WebPage
from repro.web.site import Website


def make_corpus():
    sites = []
    records = []
    for i, label in enumerate([1, 0, 0, 1]):
        domain = f"p{i}.com"
        sites.append(
            Website(
                domain=domain,
                pages=(WebPage(url=f"https://www.{domain}/", text=f"text {i}"),),
            )
        )
        records.append(PharmacyRecord(domain=domain, label=label))
    return PharmacyCorpus("test", tuple(sites), tuple(records))


class TestPharmacyCorpus:
    def test_len_and_iter(self):
        corpus = make_corpus()
        assert len(corpus) == 4
        assert [s.domain for s in corpus] == ["p0.com", "p1.com", "p2.com", "p3.com"]

    def test_labels_copy(self):
        corpus = make_corpus()
        labels = corpus.labels
        labels[0] = 99
        assert corpus.labels[0] == 1  # internal state untouched

    def test_oracle(self):
        corpus = make_corpus()
        assert corpus.oracle("p0.com") == LEGITIMATE
        assert corpus.oracle("p1.com") == ILLEGITIMATE

    def test_oracle_unknown_raises(self):
        with pytest.raises(KeyError):
            make_corpus().oracle("missing.com")

    def test_site_and_record_lookup(self):
        corpus = make_corpus()
        assert corpus.site_for("p2.com").domain == "p2.com"
        assert corpus.record_for("p2.com").label == 0

    def test_subset(self):
        corpus = make_corpus()
        sub = corpus.subset([0, 3])
        assert len(sub) == 2
        assert np.array_equal(sub.labels, [1, 1])

    def test_summary(self):
        summary = make_corpus().summary()
        assert summary.n_examples == 4
        assert summary.n_legitimate == 2
        assert summary.legitimate_fraction == pytest.approx(0.5)

    def test_misaligned_records_rejected(self):
        corpus = make_corpus()
        bad_records = tuple(reversed(corpus.records))
        with pytest.raises(DataGenerationError):
            PharmacyCorpus("bad", corpus.sites, bad_records)

    def test_length_mismatch_rejected(self):
        corpus = make_corpus()
        with pytest.raises(DataGenerationError):
            PharmacyCorpus("bad", corpus.sites[:2], corpus.records)
