"""Tests for the synthetic web generator."""

import pytest

from repro.data.synthesis import (
    GeneratorConfig,
    SyntheticWebGenerator,
    scaled_config,
)
from repro.exceptions import DataGenerationError


SMALL = GeneratorConfig(
    n_legitimate=6,
    n_illegitimate=44,
    n_affiliate_hubs=2,
    min_pages=2,
    max_pages=4,
    min_terms_per_page=40,
    max_terms_per_page=80,
    seed=5,
)


@pytest.fixture(scope="module")
def pair():
    return SyntheticWebGenerator(SMALL).generate_pair()


class TestGeneratorConfig:
    def test_defaults_keep_paper_ratio(self):
        cfg = GeneratorConfig()
        ratio = cfg.n_legitimate / (cfg.n_legitimate + cfg.n_illegitimate)
        assert ratio == pytest.approx(0.12, abs=0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_legitimate=0),
            dict(n_affiliate_hubs=1000),
            dict(min_pages=5, max_pages=2),
            dict(min_terms_per_page=0),
            dict(affiliate_member_fraction=1.5),
            dict(external_links_per_page=-1.0),
            dict(legit_asocial_fraction=-0.1),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DataGenerationError):
            GeneratorConfig(**kwargs)


class TestSnapshotStructure:
    def test_class_counts(self, pair):
        snap1, _ = pair
        labels = snap1.labels
        assert sum(labels) == 6
        assert len(labels) - sum(labels) == 44

    def test_every_domain_hosted(self, pair):
        snap1, _ = pair
        for record in snap1.records:
            assert snap1.host.fetch(f"https://www.{record.domain}/") is not None

    def test_hub_count(self, pair):
        snap1, _ = pair
        hubs = [r for r in snap1.records if r.is_affiliate_hub]
        assert len(hubs) == 2
        assert all(r.label == 0 for r in hubs)

    def test_members_are_illegitimate_non_hubs(self, pair):
        snap1, _ = pair
        members = [r for r in snap1.records if r.is_affiliate_member]
        assert members
        assert all(r.label == 0 and not r.is_affiliate_hub for r in members)

    def test_asocial_flag_only_on_legit(self, pair):
        snap1, _ = pair
        for record in snap1.records:
            if record.is_asocial:
                assert record.label == 1

    def test_imitator_flag_only_on_illegit(self, pair):
        snap1, _ = pair
        for record in snap1.records:
            if record.is_trust_imitator:
                assert record.label == 0

    def test_record_lookup(self, pair):
        snap1, _ = pair
        domain = snap1.records[0].domain
        assert snap1.record_for(domain).domain == domain
        with pytest.raises(KeyError):
            snap1.record_for("missing.example")


class TestTemporalSemantics:
    def test_legitimate_domains_identical(self, pair):
        snap1, snap2 = pair
        legit1 = {r.domain for r in snap1.records if r.label == 1}
        legit2 = {r.domain for r in snap2.records if r.label == 1}
        assert legit1 == legit2

    def test_illegitimate_domains_disjoint(self, pair):
        snap1, snap2 = pair
        bad1 = {r.domain for r in snap1.records if r.label == 0}
        bad2 = {r.domain for r in snap2.records if r.label == 0}
        assert bad1.isdisjoint(bad2)

    def test_legit_text_recrawled_not_identical(self, pair):
        snap1, snap2 = pair
        domain = next(r.domain for r in snap1.records if r.label == 1)
        page1 = snap1.host.fetch(f"https://www.{domain}/")
        page2 = snap2.host.fetch(f"https://www.{domain}/")
        assert page1.text != page2.text  # fresh crawl, same character


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = SyntheticWebGenerator(SMALL).generate_snapshot()
        b = SyntheticWebGenerator(SMALL).generate_snapshot()
        assert a.domains == b.domains
        url = f"https://www.{a.domains[0]}/"
        assert a.host.fetch(url).text == b.host.fetch(url).text

    def test_different_seed_different_text(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=99)
        a = SyntheticWebGenerator(SMALL).generate_snapshot()
        b = SyntheticWebGenerator(other).generate_snapshot()
        url = f"https://www.{a.domains[0]}/"
        assert a.host.fetch(url).text != b.host.fetch(url).text


class TestTextSignals:
    def test_illegit_overuses_lifestyle_terms(self, pair):
        """The paper's observation: viagra/cialis/'no prescription'
        appear far more frequently on illegitimate sites."""
        snap1, _ = pair
        def class_text(label):
            chunks = []
            for record in snap1.records:
                if record.label == label and not record.is_outlier:
                    page = snap1.host.fetch(f"https://www.{record.domain}/")
                    chunks.append(page.text)
            return " ".join(chunks).split()

        legit_tokens = class_text(1)
        illegit_tokens = class_text(0)
        legit_rate = legit_tokens.count("viagra") / len(legit_tokens)
        illegit_rate = illegit_tokens.count("viagra") / len(illegit_tokens)
        assert illegit_rate > 3 * legit_rate

    def test_legit_has_more_store_presence(self, pair):
        from repro.data.lexicon import STORE_PRESENCE

        snap1, _ = pair
        store_words = set(STORE_PRESENCE)

        def store_rate(label):
            tokens = []
            for record in snap1.records:
                if record.label == label and not record.is_outlier:
                    for i in range(4):
                        suffix = "" if i == 0 else f"page{i}"
                        page = snap1.host.fetch(
                            f"https://www.{record.domain}/{suffix}"
                        )
                        if page is not None:
                            tokens.extend(page.text.split())
            hits = sum(1 for t in tokens if t in store_words)
            return hits / len(tokens)

        assert store_rate(1) > 2 * store_rate(0)


class TestScaledConfig:
    def test_scaling_preserves_ratio(self):
        scaled = scaled_config(SMALL, 0.5)
        assert scaled.n_legitimate == 3
        assert scaled.n_illegitimate == 22

    def test_invalid_factor(self):
        with pytest.raises(DataGenerationError):
            scaled_config(SMALL, 0.0)


class TestAuxiliarySites:
    CFG_AUX = GeneratorConfig(
        n_legitimate=6,
        n_illegitimate=44,
        n_affiliate_hubs=2,
        min_pages=2,
        max_pages=4,
        min_terms_per_page=40,
        max_terms_per_page=80,
        n_health_portals=4,
        n_spam_directories=2,
        seed=5,
    )

    @pytest.fixture(scope="class")
    def aux_snapshot(self):
        return SyntheticWebGenerator(self.CFG_AUX).generate_snapshot()

    def test_auxiliary_domains_listed_and_hosted(self, aux_snapshot):
        assert len(aux_snapshot.auxiliary_domains) == 6
        for domain in aux_snapshot.auxiliary_domains:
            assert aux_snapshot.host.fetch(f"https://www.{domain}/") is not None

    def test_auxiliaries_not_in_working_set(self, aux_snapshot):
        assert not set(aux_snapshot.auxiliary_domains) & set(aux_snapshot.domains)

    def test_portals_link_to_legitimate_pharmacies(self, aux_snapshot):
        from repro.web.url import endpoint

        legit = {r.domain for r in aux_snapshot.records if r.label == 1}
        portal = next(
            d for d in aux_snapshot.auxiliary_domains if d.endswith(".org")
        )
        linked = set()
        for i in range(4):
            suffix = "" if i == 0 else f"page{i}"
            page = aux_snapshot.host.fetch(f"https://www.{portal}/{suffix}")
            if page is not None:
                linked.update(
                    endpoint(u) for u in page.external_links()
                )
        assert linked & legit

    def test_directories_link_to_illegitimate_pharmacies(self, aux_snapshot):
        from repro.web.url import endpoint

        illegit = {r.domain for r in aux_snapshot.records if r.label == 0}
        # Directories use .net domains; portals use .org.
        directory = next(
            d for d in aux_snapshot.auxiliary_domains if d.endswith(".net")
        )
        linked = set()
        for i in range(4):
            suffix = "" if i == 0 else f"page{i}"
            page = aux_snapshot.host.fetch(f"https://www.{directory}/{suffix}")
            if page is not None:
                linked.update(endpoint(u) for u in page.external_links())
        assert linked & illegit

    def test_default_config_has_no_auxiliaries(self):
        snapshot = SyntheticWebGenerator(SMALL).generate_snapshot()
        assert snapshot.auxiliary_domains == ()

    def test_negative_counts_rejected(self):
        with pytest.raises(DataGenerationError):
            GeneratorConfig(n_health_portals=-1)


class TestPotentiallyLegitimate:
    CFG_GRAY = GeneratorConfig(
        n_legitimate=6,
        n_illegitimate=44,
        n_affiliate_hubs=2,
        min_pages=2,
        max_pages=4,
        min_terms_per_page=40,
        max_terms_per_page=80,
        n_potentially_legitimate=4,
        seed=5,
    )

    @pytest.fixture(scope="class")
    def gray_snapshot(self):
        return SyntheticWebGenerator(self.CFG_GRAY).generate_snapshot()

    def test_gray_domains_hosted_but_outside_p(self, gray_snapshot):
        assert len(gray_snapshot.gray_domains) == 4
        assert not set(gray_snapshot.gray_domains) & set(gray_snapshot.domains)
        for domain in gray_snapshot.gray_domains:
            assert gray_snapshot.host.fetch(f"https://www.{domain}/") is not None

    def test_default_has_no_gray_sites(self):
        snapshot = SyntheticWebGenerator(SMALL).generate_snapshot()
        assert snapshot.gray_domains == ()

    def test_negative_count_rejected(self):
        with pytest.raises(DataGenerationError):
            GeneratorConfig(n_potentially_legitimate=-1)

    def test_corpus_carries_gray_sites(self):
        from repro.data.loaders import crawl_snapshot

        snapshot = SyntheticWebGenerator(self.CFG_GRAY).generate_snapshot()
        corpus = crawl_snapshot(snapshot)
        assert len(corpus.gray_sites) == 4
        assert len(corpus) == 50  # gray sites are not part of P
