"""Tests for dataset loaders (generation + crawl)."""

import numpy as np
import pytest

from repro.data.loaders import crawl_snapshot, make_dataset, make_dataset_pair
from repro.data.synthesis import GeneratorConfig, SyntheticWebGenerator
from repro.exceptions import CrawlError
from repro.web.resilience import (
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)


CFG = GeneratorConfig(
    n_legitimate=4,
    n_illegitimate=26,
    n_affiliate_hubs=2,
    min_pages=2,
    max_pages=4,
    min_terms_per_page=30,
    max_terms_per_page=60,
    seed=11,
)


class TestLoaders:
    def test_make_dataset_counts(self):
        corpus = make_dataset(CFG)
        assert len(corpus) == 30
        assert corpus.labels.sum() == 4

    def test_sites_have_crawled_pages(self):
        corpus = make_dataset(CFG)
        assert all(site.n_pages >= 2 for site in corpus.sites)

    def test_max_pages_cap_respected(self):
        corpus = make_dataset(CFG, max_pages=1)
        assert all(site.n_pages == 1 for site in corpus.sites)

    def test_pair_names(self):
        d1, d2 = make_dataset_pair(CFG)
        assert d1.name == "dataset1"
        assert d2.name == "dataset2"

    def test_pair_table1_semantics(self):
        d1, d2 = make_dataset_pair(CFG)
        legit1 = {d for d, l in zip(d1.domains, d1.labels) if l == 1}
        legit2 = {d for d, l in zip(d2.domains, d2.labels) if l == 1}
        bad1 = {d for d, l in zip(d1.domains, d1.labels) if l == 0}
        bad2 = {d for d, l in zip(d2.domains, d2.labels) if l == 0}
        assert legit1 == legit2
        assert bad1.isdisjoint(bad2)

    def test_crawl_snapshot_alignment(self):
        snapshot = SyntheticWebGenerator(CFG).generate_snapshot()
        corpus = crawl_snapshot(snapshot)
        assert corpus.domains == snapshot.domains
        assert np.array_equal(corpus.labels, snapshot.labels)


class TestQuarantine:
    def dead_seed_host(self, snapshot, n_dead=2):
        """The snapshot host with the first ``n_dead`` pharmacy seeds
        permanently down."""
        dead = snapshot.domains[:n_dead]
        plan = FaultPlan()
        for domain in dead:
            plan.add(f"https://www.{domain}/", FaultSpec(FaultKind.PERMANENT))
        return FaultInjectingWebHost(snapshot.host, plan), dead

    def test_dead_seed_aborts_without_quarantine(self):
        snapshot = SyntheticWebGenerator(CFG).generate_snapshot()
        host, _ = self.dead_seed_host(snapshot)
        with pytest.raises(CrawlError):
            crawl_snapshot(snapshot, host=host)

    def test_quarantine_keeps_corpus_aligned_and_visible(self):
        snapshot = SyntheticWebGenerator(CFG).generate_snapshot()
        host, dead = self.dead_seed_host(snapshot)
        corpus = crawl_snapshot(snapshot, host=host, quarantine=True)
        assert len(corpus) == len(snapshot.domains) - 2
        assert {q.domain for q in corpus.quarantined} == set(dead)
        assert all(q.error_type == "CrawlError" for q in corpus.quarantined)
        # Remaining sites stay aligned with their records.
        assert all(
            site.domain == record.domain
            for site, record in zip(corpus.sites, corpus.records)
        )
        assert not set(dead) & set(corpus.domains)

    def test_retry_policy_rescues_transient_seeds(self):
        snapshot = SyntheticWebGenerator(CFG).generate_snapshot()
        plan = FaultPlan()
        for domain in snapshot.domains[:3]:
            plan.add(
                f"https://www.{domain}/",
                FaultSpec(FaultKind.TRANSIENT, recover_after=1),
            )
        host = FaultInjectingWebHost(snapshot.host, plan)
        corpus = crawl_snapshot(
            snapshot,
            host=host,
            retry_policy=RetryPolicy(max_attempts=2),
            quarantine=True,
        )
        assert corpus.quarantined == ()
        assert len(corpus) == len(snapshot.domains)

    def test_healthy_crawl_quarantines_nothing(self):
        snapshot = SyntheticWebGenerator(CFG).generate_snapshot()
        corpus = crawl_snapshot(snapshot, quarantine=True)
        assert corpus.quarantined == ()


class TestSnapshot2Size:
    def test_distinct_snapshot2_illegitimate_count(self):
        import dataclasses

        cfg = dataclasses.replace(CFG, n_illegitimate_snapshot2=20)
        d1, d2 = make_dataset_pair(cfg)
        assert d1.summary().n_illegitimate == 26
        assert d2.summary().n_illegitimate == 20
        assert d1.summary().n_legitimate == d2.summary().n_legitimate == 4

    def test_default_copies_snapshot1_count(self):
        d1, d2 = make_dataset_pair(CFG)
        assert d1.summary().n_illegitimate == d2.summary().n_illegitimate
