"""Tests for the lexicon pools."""

from repro.data import lexicon


class TestLexicon:
    def test_table11_legit_targets_verbatim(self):
        assert lexicon.LEGIT_LINK_TARGETS == (
            "facebook.com", "twitter.com", "fda.gov", "google.com",
            "youtube.com", "nih.gov", "adobe.com", "cdc.gov",
            "doubleclick.net", "nabp.net",
        )

    def test_table11_illegit_targets_verbatim(self):
        assert lexicon.ILLEGIT_LINK_TARGETS == (
            "wikipedia.org", "wordpress.org", "drugs.com",
            "securebilling-page.com", "rxwinners.com", "google.com",
            "providesupport.com", "euro-med-store.com", "statcounter.com",
            "cipla.com",
        )

    def test_paper_marker_terms_present(self):
        """Section 6.3.1 names these terms explicitly."""
        assert "viagra" in lexicon.LIFESTYLE_DRUGS
        assert "cialis" in lexicon.LIFESTYLE_DRUGS
        assert "no" in lexicon.NO_PRESCRIPTION_MARKETING
        assert "prescription" in lexicon.NO_PRESCRIPTION_MARKETING

    def test_pools_nonempty_and_lowercase(self):
        for name in (
            "HEALTH_CONTENT", "PHARMACY_COMMERCE", "STORE_PRESENCE",
            "VERIFICATION_SEALS", "LIFESTYLE_DRUGS", "GENERIC_DRUGS",
            "SCAM_MARKETING", "COMMON_FILLER", "DRIFT_MARKETING",
        ):
            pool = getattr(lexicon, name)
            assert pool, name
            assert all(w == w.lower() for w in pool), name

    def test_no_duplicate_stems_within_pool(self):
        assert len(set(lexicon.LEGIT_DOMAIN_STEMS)) == len(
            lexicon.LEGIT_DOMAIN_STEMS
        )
        assert len(set(lexicon.ILLEGIT_DOMAIN_STEMS)) == len(
            lexicon.ILLEGIT_DOMAIN_STEMS
        )
