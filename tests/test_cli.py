"""Tests for the command-line interface (end-to-end session)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def cli_artifacts(tmp_path_factory):
    """Run generate -> train once; later tests reuse the artifacts."""
    root = tmp_path_factory.mktemp("cli")
    corpus_path = str(root / "corpus.jsonl")
    model_path = str(root / "verifier.pkl")
    assert (
        main(
            [
                "generate",
                "--legit", "6",
                "--illegit", "44",
                "--seed", "3",
                "-o", corpus_path,
            ]
        )
        == 0
    )
    assert main(["train", corpus_path, "-o", model_path]) == 0
    return corpus_path, model_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in (
            "generate", "train", "verify", "rank", "serve", "experiments",
        ):
            args = parser.parse_args(
                {
                    "generate": ["generate", "-o", "x"],
                    "train": ["train", "c", "-o", "m"],
                    "verify": ["verify", "m", "c"],
                    "rank": ["rank", "m", "c"],
                    "serve": ["serve", "m", "c"],
                    "experiments": ["experiments"],
                }[command]
            )
            assert args.command == command

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "m.pkl", "c.jsonl",
                "--host", "0.0.0.0",
                "--port", "0",
                "--tier-config", "tiers.json",
                "--cache-dir", "/tmp/cache",
                "--jobs", "4",
                "--max-queue", "9",
                "--check",
            ]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.tier_config == "tiers.json"
        assert args.cache_dir == "/tmp/cache"
        assert args.jobs == 4
        assert args.max_queue == 9
        assert args.check is True


class TestCommands:
    def test_generate_writes_corpus(self, cli_artifacts):
        corpus_path, _ = cli_artifacts
        from repro.io import import_corpus

        corpus = import_corpus(corpus_path)
        assert len(corpus) == 50
        assert corpus.labels.sum() == 6

    def test_train_writes_model(self, cli_artifacts):
        _, model_path = cli_artifacts
        from repro.io import load_model

        verifier = load_model(model_path)
        assert verifier.is_fitted

    def test_verify_prints_table(self, cli_artifacts, capsys):
        corpus_path, model_path = cli_artifacts
        assert main(["verify", model_path, corpus_path, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "pharmacies verified" in out

    def test_rank_prints_pairord(self, cli_artifacts, capsys):
        corpus_path, model_path = cli_artifacts
        assert main(["rank", model_path, corpus_path, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "pairwise orderedness" in out

    def test_serve_check_binds_and_drains(self, cli_artifacts, capsys, tmp_path):
        corpus_path, model_path = cli_artifacts
        cache_dir = str(tmp_path / "verdicts")
        assert (
            main(
                [
                    "serve", model_path, corpus_path,
                    "--port", "0",
                    "--cache-dir", cache_dir,
                    "--jobs", "2",
                    "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serving 50 pharmacies" in out
        assert "drained cleanly" in out

    def test_serve_rejects_bad_tier_config(self, cli_artifacts, tmp_path):
        corpus_path, model_path = cli_artifacts
        bad = tmp_path / "tiers.json"
        bad.write_text('{"nope": 1}')
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "serve", model_path, corpus_path,
                    "--port", "0",
                    "--tier-config", str(bad),
                    "--check",
                ]
            )

    def test_experiments_delegates(self, capsys):
        assert main(["experiments", "figure3", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "FIGURE3" in out


class TestShardedCommands:
    """generate --shards writes a directory verify/rank/serve can read."""

    @pytest.fixture(scope="class")
    def sharded_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-shards")
        out = str(root / "corpus")
        assert (
            main(
                [
                    "generate",
                    "--legit", "6",
                    "--illegit", "44",
                    "--seed", "3",
                    "--shards", "4",
                    "-o", out,
                ]
            )
            == 0
        )
        return out

    def test_generate_writes_manifest_and_shards(self, sharded_dir, capsys):
        from pathlib import Path

        root = Path(sharded_dir)
        assert (root / "manifest.json").is_file()
        assert len(list(root.glob("shard-*.jsonl"))) == 4

    def test_verify_reads_sharded_dir(self, cli_artifacts, sharded_dir, capsys):
        _, model_path = cli_artifacts
        assert main(["verify", model_path, sharded_dir, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "50 pharmacies verified" in out

    def test_rank_reads_sharded_dir(self, cli_artifacts, sharded_dir, capsys):
        _, model_path = cli_artifacts
        assert main(["rank", model_path, sharded_dir, "--top", "3"]) == 0
        assert "pairwise orderedness" in capsys.readouterr().out

    def test_serve_check_on_sharded_dir(self, cli_artifacts, sharded_dir, capsys):
        _, model_path = cli_artifacts
        assert (
            main(
                [
                    "serve", model_path, sharded_dir,
                    "--port", "0",
                    "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serving 50 pharmacies" in out
