"""Tests for the directed graph."""

import pytest

from repro.exceptions import GraphError
from repro.network.graph import DirectedGraph


def triangle():
    g = DirectedGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestDirectedGraph:
    def test_add_node_idempotent(self):
        g = DirectedGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.n_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = DirectedGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.n_edges == 1

    def test_parallel_edges_accumulate_weight(self):
        g = DirectedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 2.0)
        assert g.n_edges == 1
        assert g.successors("a")["b"] == 3.0

    def test_successors_predecessors(self):
        g = triangle()
        assert g.successors("a") == {"b": 1.0}
        assert g.predecessors("a") == {"c": 1.0}

    def test_degrees(self):
        g = triangle()
        assert g.out_degree("a") == 1
        assert g.in_degree("a") == 1

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_edges_iteration(self):
        edges = set((s, d) for s, d, _ in triangle().edges())
        assert edges == {("a", "b"), ("b", "c"), ("c", "a")}

    def test_nodes_insertion_order(self):
        g = DirectedGraph()
        g.add_edge("z", "a")
        g.add_node("m")
        assert list(g.nodes()) == ["z", "a", "m"]

    def test_subgraph(self):
        g = triangle()
        sub = g.subgraph(["a", "b"])
        assert sub.n_nodes == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "c")

    def test_unknown_node_raises(self):
        with pytest.raises(GraphError):
            triangle().successors("x")

    def test_empty_node_id_rejected(self):
        with pytest.raises(GraphError):
            DirectedGraph().add_node("")

    def test_nonpositive_weight_rejected(self):
        g = DirectedGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 0.0)

    def test_len_matches_nodes(self):
        assert len(triangle()) == 3
