"""Tests for EigenTrust."""

import pytest

from repro.exceptions import GraphError
from repro.network.eigentrust import eigentrust
from repro.network.graph import DirectedGraph


def trust_web():
    g = DirectedGraph()
    g.add_edge("p1", "p2")   # pre-trusted p1 vouches for p2
    g.add_edge("p2", "p3")
    g.add_edge("m1", "m2")   # malicious collective vouching for itself
    g.add_edge("m2", "m1")
    return g


class TestEigenTrust:
    def test_scores_sum_to_one(self):
        scores = eigentrust(trust_web(), ["p1"])
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_pretrusted_cluster_dominates(self):
        scores = eigentrust(trust_web(), ["p1"])
        good = scores["p1"] + scores["p2"] + scores["p3"]
        bad = scores["m1"] + scores["m2"]
        assert good > 0.9
        assert bad < 0.1

    def test_malicious_collective_starved(self):
        """The EigenTrust guarantee: a collusion ring with no inbound
        trust from the pre-trusted web gets (almost) no global trust."""
        scores = eigentrust(trust_web(), ["p1"])
        assert scores["m1"] == pytest.approx(0.0, abs=1e-9)
        assert scores["m2"] == pytest.approx(0.0, abs=1e-9)

    def test_trust_decays_along_chain(self):
        g = DirectedGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        scores = eigentrust(g, ["a"])
        assert scores["b"] > scores["c"] > scores["d"]

    def test_alpha_blends_toward_pretrust(self):
        g = trust_web()
        heavy_anchor = eigentrust(g, ["p1"], alpha=0.9)
        light_anchor = eigentrust(g, ["p1"], alpha=0.05)
        assert heavy_anchor["p1"] > light_anchor["p1"]

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            eigentrust(DirectedGraph(), ["x"])

    def test_disjoint_pretrust_raises(self):
        with pytest.raises(GraphError):
            eigentrust(trust_web(), ["ghost"])

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            eigentrust(trust_web(), ["p1"], alpha=1.0)

    def test_dangling_defers_to_pretrust(self):
        g = DirectedGraph()
        g.add_edge("seed", "sink")  # sink makes no trust statements
        scores = eigentrust(g, ["seed"])
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["seed"] > 0
