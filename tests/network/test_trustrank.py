"""Tests for TrustRank and Anti-TrustRank."""

import pytest

from repro.exceptions import GraphError
from repro.network.graph import DirectedGraph
from repro.network.trustrank import anti_trustrank, reverse_graph, trustrank


def good_bad_web():
    """Good cluster g1->g2->g3, bad cluster b1->b2, deceptive b1->g1."""
    g = DirectedGraph()
    g.add_edge("g1", "g2")
    g.add_edge("g2", "g3")
    g.add_edge("b1", "b2")
    g.add_edge("b1", "g1")
    return g


class TestTrustRank:
    def test_seed_and_descendants_trusted(self):
        scores = trustrank(good_bad_web(), ["g1"])
        assert scores["g1"] > 0
        assert scores["g2"] > 0
        assert scores["g3"] > 0

    def test_bad_cluster_untrusted(self):
        scores = trustrank(good_bad_web(), ["g1"])
        assert scores["b1"] == pytest.approx(0.0, abs=1e-9)
        assert scores["b2"] == pytest.approx(0.0, abs=1e-9)

    def test_trust_attenuates_with_distance(self):
        g = DirectedGraph()
        g.add_edge("s", "d1")
        g.add_edge("d1", "d2")
        g.add_edge("d2", "d3")
        scores = trustrank(g, ["s"])
        assert scores["d1"] > scores["d2"] > scores["d3"]

    def test_approximate_isolation_of_good_pages(self):
        """A bad page pointing at a good one does NOT inherit trust."""
        scores = trustrank(good_bad_web(), ["g1"])
        assert scores["b1"] < scores["g3"]

    def test_empty_seed_overlap_raises(self):
        with pytest.raises(GraphError):
            trustrank(good_bad_web(), ["nope"])

    def test_seed_nodes_missing_from_graph_partially_ok(self):
        scores = trustrank(good_bad_web(), ["g1", "ghost"])
        assert scores["g1"] > 0

    def test_scores_sum_to_one(self):
        scores = trustrank(good_bad_web(), ["g1"])
        assert sum(scores.values()) == pytest.approx(1.0)


class TestReverseGraph:
    def test_edges_flipped(self):
        g = good_bad_web()
        r = reverse_graph(g)
        assert r.has_edge("g2", "g1")
        assert not r.has_edge("g1", "g2")

    def test_node_set_preserved(self):
        g = good_bad_web()
        assert set(reverse_graph(g).nodes()) == set(g.nodes())

    def test_weights_preserved(self):
        g = DirectedGraph()
        g.add_edge("a", "b", 3.0)
        assert reverse_graph(g).successors("b")["a"] == 3.0


class TestAntiTrustRank:
    def test_pages_linking_to_bad_accumulate_distrust(self):
        g = DirectedGraph()
        g.add_edge("spammer", "bad")
        g.add_edge("innocent", "good")
        scores = anti_trustrank(g, ["bad"])
        assert scores["spammer"] > scores["innocent"]

    def test_distrust_flows_backwards(self):
        g = DirectedGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "bad")
        scores = anti_trustrank(g, ["bad"])
        assert scores["b"] > 0
        assert scores["a"] > 0
        assert scores["b"] > scores["a"]

    def test_good_cluster_clean(self):
        scores = anti_trustrank(good_bad_web(), ["b2"])
        assert scores["g2"] == pytest.approx(0.0, abs=1e-9)
        assert scores["g3"] == pytest.approx(0.0, abs=1e-9)
