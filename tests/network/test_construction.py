"""Tests for Algorithm 1 (graph creation from pharmacy sites)."""

from repro.network.construction import (
    build_graph_from_link_table,
    build_pharmacy_graph,
)
from repro.web.page import WebPage
from repro.web.site import Website


def site(domain, external_urls):
    page = WebPage(
        url=f"https://www.{domain}/",
        text="x",
        links=tuple(external_urls),
    )
    return Website(domain=domain, pages=(page,))


class TestBuildPharmacyGraph:
    def test_pharmacy_nodes_always_present(self):
        graph = build_pharmacy_graph([site("p1.com", []), site("p2.com", [])])
        assert "p1.com" in graph
        assert "p2.com" in graph

    def test_endpoint_pruning(self):
        graph = build_pharmacy_graph(
            [site("p1.com", ["https://www.fda.gov/deep/path/page.htm"])]
        )
        assert graph.has_edge("p1.com", "fda.gov")
        assert "www.fda.gov" not in graph

    def test_duplicate_endpoints_single_edge(self):
        graph = build_pharmacy_graph(
            [
                site(
                    "p1.com",
                    ["https://a.fda.gov/x", "https://b.fda.gov/y"],
                )
            ]
        )
        assert graph.successors("p1.com")["fda.gov"] == 1.0

    def test_weighted_mode_counts_multiplicity(self):
        graph = build_pharmacy_graph(
            [
                site(
                    "p1.com",
                    ["https://a.fda.gov/x", "https://b.fda.gov/y"],
                )
            ],
            weighted=True,
        )
        assert graph.successors("p1.com")["fda.gov"] == 2.0

    def test_pharmacy_to_pharmacy_edges(self):
        """Affiliate links create pharmacy->pharmacy edges."""
        graph = build_pharmacy_graph(
            [site("spoke.com", ["https://www.hub.com/"]), site("hub.com", [])]
        )
        assert graph.has_edge("spoke.com", "hub.com")
        assert graph.in_degree("hub.com") == 1

    def test_empty_working_set(self):
        assert build_pharmacy_graph([]).n_nodes == 0


class TestBuildFromLinkTable:
    def test_pairs_become_edges(self):
        graph = build_graph_from_link_table([("a.com", "b.com"), ("a.com", "c.com")])
        assert graph.has_edge("a.com", "b.com")
        assert graph.out_degree("a.com") == 2
