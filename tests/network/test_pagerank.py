"""Tests for PageRank / personalized PageRank."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.network.graph import DirectedGraph
from repro.network.pagerank import pagerank, personalized_pagerank


def cycle(n=4):
    g = DirectedGraph()
    names = [f"n{i}" for i in range(n)]
    for i in range(n):
        g.add_edge(names[i], names[(i + 1) % n])
    return g, names


class TestPageRank:
    def test_scores_sum_to_one(self):
        g, _ = cycle()
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_symmetric_cycle_uniform(self):
        g, names = cycle(5)
        scores = pagerank(g)
        for name in names:
            assert scores[name] == pytest.approx(1 / 5, abs=1e-8)

    def test_hub_receives_more(self):
        g = DirectedGraph()
        for spoke in ("s1", "s2", "s3"):
            g.add_edge(spoke, "hub")
        g.add_edge("hub", "s1")
        scores = pagerank(g)
        assert scores["hub"] > scores["s2"]

    def test_dangling_mass_redistributed(self):
        g = DirectedGraph()
        g.add_edge("a", "sink")  # sink has no out-links
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            pagerank(DirectedGraph())

    def test_damping_validation(self):
        g, _ = cycle()
        with pytest.raises(ValueError):
            pagerank(g, damping=1.0)

    def test_weighted_edges_bias_distribution(self):
        g = DirectedGraph()
        g.add_edge("src", "heavy", 9.0)
        g.add_edge("src", "light", 1.0)
        g.add_edge("heavy", "src")
        g.add_edge("light", "src")
        scores = pagerank(g)
        assert scores["heavy"] > scores["light"]


class TestPersonalizedPageRank:
    def test_teleport_concentrates_mass(self):
        g, names = cycle(4)
        scores = personalized_pagerank(g, teleport={"n0": 1.0})
        assert scores["n0"] == max(scores.values())

    def test_teleport_normalized(self):
        g, _ = cycle(4)
        a = personalized_pagerank(g, teleport={"n0": 1.0})
        b = personalized_pagerank(g, teleport={"n0": 100.0})
        for node in a:
            assert a[node] == pytest.approx(b[node])

    def test_unknown_teleport_nodes_ignored(self):
        g, _ = cycle(3)
        scores = personalized_pagerank(g, teleport={"n0": 1.0, "ghost": 5.0})
        assert "ghost" not in scores

    def test_zero_mass_teleport_raises(self):
        g, _ = cycle(3)
        with pytest.raises(GraphError):
            personalized_pagerank(g, teleport={"ghost": 1.0})

    def test_unreachable_nodes_get_zero(self):
        g = DirectedGraph()
        g.add_edge("seed", "reachable")
        g.add_node("island")
        scores = personalized_pagerank(g, teleport={"seed": 1.0})
        assert scores["island"] == pytest.approx(0.0, abs=1e-9)

    def test_converges_regardless_of_iterations(self):
        # 0.85^100 ~ 9e-8, so 100 iterations land within ~1e-6 of the
        # fixpoint on a cycle (the slowest-mixing topology).
        g, _ = cycle(6)
        a = personalized_pagerank(g, teleport={"n0": 1.0}, max_iterations=100)
        b = personalized_pagerank(g, teleport={"n0": 1.0}, max_iterations=500)
        for node in a:
            assert a[node] == pytest.approx(b[node], abs=1e-6)
