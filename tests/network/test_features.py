"""Tests for network feature extraction and Table 11 analysis."""

import numpy as np
import pytest

from repro.network.features import NetworkFeatureExtractor, top_linked_domains
from repro.web.page import WebPage
from repro.web.site import Website


def site(domain, external_urls):
    page = WebPage(
        url=f"https://www.{domain}/", text="x", links=tuple(external_urls)
    )
    return Website(domain=domain, pages=(page,))


def small_working_set():
    """Two trusted-linking legit sites, two cold illegit sites."""
    return [
        site("legit1.com", ["https://www.fda.gov/a", "https://twitter.com/x"]),
        site("legit2.com", ["https://www.fda.gov/b"]),
        site("bad1.net", ["https://www.wordpress.org/t"]),
        site("bad2.net", ["https://www.wordpress.org/t"]),
    ]


class TestNetworkFeatureExtractor:
    def test_feature_order_and_shape(self):
        extractor = NetworkFeatureExtractor()
        matrix = extractor.extract(small_working_set(), ["legit1.com"])
        assert matrix.feature_names == (
            "outlink_trust",
            "trustrank",
            "inlink_trust",
        )
        assert matrix.features.shape == (4, 3)

    def test_outlink_trust_separates_classes(self):
        extractor = NetworkFeatureExtractor()
        matrix = extractor.extract(
            small_working_set(), ["legit1.com", "legit2.com"]
        )
        outlink = matrix.column("outlink_trust")
        # legit sites link to fda.gov (trusted); bad sites to wordpress.
        assert outlink[0] > outlink[2]
        assert outlink[1] > outlink[3]

    def test_seed_nodes_have_own_trustrank(self):
        extractor = NetworkFeatureExtractor()
        matrix = extractor.extract(small_working_set(), ["legit1.com"])
        own = matrix.column("trustrank")
        assert own[0] > own[2]

    def test_anti_trustrank_columns(self):
        extractor = NetworkFeatureExtractor(include_anti_trustrank=True)
        matrix = extractor.extract(
            small_working_set(),
            trusted_domains=["legit1.com"],
            distrusted_domains=["bad1.net"],
        )
        assert "outlink_distrust" in matrix.feature_names
        assert "anti_trustrank" in matrix.feature_names
        assert matrix.features.shape == (4, 5)

    def test_degree_features(self):
        extractor = NetworkFeatureExtractor(include_degree_features=True)
        matrix = extractor.extract(small_working_set(), ["legit1.com"])
        out_deg = matrix.column("log_out_degree")
        assert out_deg[0] == pytest.approx(np.log1p(2))

    def test_graph_exposed_after_extract(self):
        extractor = NetworkFeatureExtractor()
        assert extractor.graph is None
        extractor.extract(small_working_set(), ["legit1.com"])
        assert extractor.graph is not None
        assert "fda.gov" in extractor.graph


class TestTopLinkedDomains:
    def test_per_class_ordering(self):
        sites = small_working_set()
        labels = [1, 1, 0, 0]
        ranked = top_linked_domains(sites, labels, top_k=3)
        assert ranked[1][0][0] == "fda.gov"
        assert ranked[0][0][0] == "wordpress.org"

    def test_sites_mode_counts_each_site_once(self):
        sites = [
            site("a.com", ["https://www.x.com/1", "https://www.x.com/2"]),
        ]
        ranked = top_linked_domains(sites, [1], count_mode="sites")
        assert ranked[1][0] == ("x.com", 1)

    def test_links_mode_counts_multiplicity(self):
        sites = [
            site("a.com", ["https://www.x.com/1", "https://www.x.com/2"]),
        ]
        ranked = top_linked_domains(sites, [1], count_mode="links")
        assert ranked[1][0] == ("x.com", 2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            top_linked_domains(small_working_set(), [1, 0])

    def test_bad_count_mode_raises(self):
        with pytest.raises(ValueError):
            top_linked_domains(small_working_set(), [1, 1, 0, 0], count_mode="x")

    def test_top_k_truncates(self):
        sites = [
            site("a.com", [f"https://www.t{i}.com/" for i in range(8)]),
        ]
        ranked = top_linked_domains(sites, [1], top_k=3)
        assert len(ranked[1]) == 3


class TestInlinkTrust:
    def test_zero_without_in_edges(self):
        extractor = NetworkFeatureExtractor()
        matrix = extractor.extract(small_working_set(), ["legit1.com"])
        # Pharmacy-only graph: nothing points at pharmacies here.
        assert np.allclose(matrix.column("inlink_trust"), 0.0)

    def test_auxiliary_in_links_raise_inlink_trust(self):
        sites = small_working_set()
        portal = site(
            "portal.org",
            [
                "https://www.legit1.com/",
                "https://www.legit2.com/",
                "https://www.fda.gov/",
            ],
        )
        extractor = NetworkFeatureExtractor()
        matrix = extractor.extract(
            sites, ["legit1.com", "legit2.com"], auxiliary_sites=[portal]
        )
        inlink = matrix.column("inlink_trust")
        assert inlink.shape == (4,)
        assert np.all(inlink >= 0.0)
        # The linked pharmacies now have an in-neighbour; the bad sites
        # still have none, so their in-link trust stays exactly zero.
        assert inlink[2] == 0.0
        assert inlink[3] == 0.0

    def test_bidirectional_portal_raises_test_legit_own_score(self):
        """Trust at distance 2: seed -> portal -> unseen legit."""
        seed = site("seed-legit.com", ["https://www.portal.org/"])
        unseen = site("unseen-legit.com", ["https://www.fda.gov/"])
        bad = site("bad.net", ["https://www.wordpress.org/"])
        portal = site(
            "portal.org",
            ["https://www.seed-legit.com/", "https://www.unseen-legit.com/"],
        )
        extractor = NetworkFeatureExtractor()
        matrix = extractor.extract(
            [seed, unseen, bad], ["seed-legit.com"], auxiliary_sites=[portal]
        )
        own = matrix.column("trustrank")
        assert own[1] > own[2]  # unseen legit beats the bad site
        assert own[1] > 0.0
