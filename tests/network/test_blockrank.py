"""Tests for block-wise multi-process ranking over spilled CSR blocks.

The contract: block ranking over a compiled plan equals the in-memory
:func:`repro.network.pagerank.personalized_pagerank` to 1e-9 (in fact
bit-equal — row-sliced CSR keeps per-row data order), serial and
parallel runs are identical, and the edge-array compile path matches
the graph compile path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, ValidationError
from repro.network.blockrank import (
    block_anti_trustrank,
    block_pagerank,
    block_personalized_pagerank,
    block_trustrank,
    compile_transition_store,
    compile_transition_store_from_edges,
    load_block_plan,
)
from repro.network.graph import DirectedGraph
from repro.network.pagerank import personalized_pagerank
from repro.network.trustrank import anti_trustrank, reverse_graph, trustrank
from repro.perf.store import MatrixStore


def _random_graph(n_nodes=60, n_edges=300, seed=11) -> DirectedGraph:
    rng = np.random.default_rng(seed)
    graph = DirectedGraph()
    names = [f"d{i}.example" for i in range(n_nodes)]
    for name in names:
        graph.add_node(name)
    for s, d in zip(
        rng.integers(0, n_nodes, n_edges), rng.integers(0, n_nodes, n_edges)
    ):
        if s != d:
            graph.add_edge(names[s], names[d])
    return graph


@pytest.fixture(scope="module")
def graph():
    return _random_graph()


@pytest.fixture()
def store(tmp_path):
    return MatrixStore(tmp_path / "store")


def _max_divergence(a: dict, b: dict) -> float:
    assert set(a) == set(b)
    return max(abs(a[k] - b[k]) for k in a)


class TestCompile:
    def test_blocks_cover_all_rows(self, graph, store):
        plan = compile_transition_store(graph, store, n_blocks=4)
        assert plan.n == graph.n_nodes
        assert plan.offsets[0] == 0 and plan.offsets[-1] == plan.n
        assert plan.n_blocks == 4

    def test_more_blocks_than_rows_clamps(self, store):
        graph = DirectedGraph()
        graph.add_edge("a.example", "b.example")
        plan = compile_transition_store(graph, store, n_blocks=10)
        assert plan.n_blocks == graph.n_nodes

    def test_empty_graph_rejected(self, store):
        with pytest.raises(GraphError):
            compile_transition_store(DirectedGraph(), store, n_blocks=2)

    def test_bad_block_count_rejected(self, graph, store):
        with pytest.raises(ValidationError):
            compile_transition_store(graph, store, n_blocks=0)

    def test_plan_reloads_identically(self, graph, store):
        plan = compile_transition_store(graph, store, n_blocks=3)
        reloaded = load_block_plan(store)
        assert reloaded.nodes == plan.nodes
        assert reloaded.offsets == plan.offsets
        assert block_pagerank(reloaded) == block_pagerank(plan)


class TestEquivalence:
    def test_uniform_matches_inmemory(self, graph, store):
        plan = compile_transition_store(graph, store, n_blocks=4)
        assert (
            _max_divergence(
                block_pagerank(plan), personalized_pagerank(graph)
            )
            <= 1e-9
        )

    def test_personalized_matches_inmemory(self, graph, store):
        teleport = {f"d{i}.example": 1.0 for i in range(0, 60, 7)}
        plan = compile_transition_store(graph, store, n_blocks=5)
        assert (
            _max_divergence(
                block_personalized_pagerank(plan, teleport=teleport),
                personalized_pagerank(graph, teleport=teleport),
            )
            <= 1e-9
        )

    def test_trustrank_matches_inmemory(self, graph, store):
        seed = [f"d{i}.example" for i in range(6)]
        plan = compile_transition_store(graph, store, n_blocks=4)
        assert (
            _max_divergence(
                block_trustrank(plan, seed), trustrank(graph, seed)
            )
            <= 1e-9
        )

    def test_anti_trustrank_matches_inmemory(self, graph, store):
        seed = [f"d{i}.example" for i in range(50, 60)]
        plan = compile_transition_store(
            reverse_graph(graph), store, n_blocks=4
        )
        assert (
            _max_divergence(
                block_anti_trustrank(plan, seed), anti_trustrank(graph, seed)
            )
            <= 1e-9
        )

    def test_serial_equals_parallel_bitwise(self, graph, store):
        teleport = {f"d{i}.example": 1.0 for i in range(0, 60, 5)}
        plan = compile_transition_store(graph, store, n_blocks=4)
        serial = block_personalized_pagerank(plan, teleport=teleport, jobs=1)
        parallel = block_personalized_pagerank(
            plan, teleport=teleport, jobs=2
        )
        assert serial == parallel  # identical floats, not just close

    def test_block_count_does_not_change_result(self, graph, store):
        one = compile_transition_store(graph, store, n_blocks=1, prefix="p1")
        many = compile_transition_store(graph, store, n_blocks=7, prefix="p7")
        assert block_pagerank(one) == block_pagerank(many)


class TestEdgeCompile:
    def test_edges_match_graph_compile(self, graph, store):
        nodes = list(graph.nodes())
        index = {n: i for i, n in enumerate(nodes)}
        src, dst, weight = [], [], []
        for node in nodes:
            for succ, w in graph.successors(node).items():
                src.append(index[node])
                dst.append(index[succ])
                weight.append(w)
        from_graph = compile_transition_store(
            graph, store, n_blocks=4, prefix="g"
        )
        from_edges = compile_transition_store_from_edges(
            store,
            nodes,
            np.asarray(src),
            np.asarray(dst),
            np.asarray(weight, dtype=np.float64),
            n_blocks=4,
            prefix="e",
        )
        assert block_pagerank(from_graph) == block_pagerank(from_edges)

    def test_edgeless_nodes_are_all_dangling(self, store):
        plan = compile_transition_store_from_edges(
            store,
            ["a.example", "b.example"],
            np.asarray([], dtype=np.int64),
            np.asarray([], dtype=np.int64),
            np.asarray([], dtype=np.float64),
            n_blocks=2,
        )
        ranks = block_pagerank(plan)
        assert ranks["a.example"] == pytest.approx(0.5)

    def test_mismatched_edge_arrays_rejected(self, store):
        with pytest.raises(ValidationError):
            compile_transition_store_from_edges(
                store,
                ["a.example"],
                np.asarray([0]),
                np.asarray([0, 0]),
                np.asarray([1.0]),
                n_blocks=1,
            )

    def test_empty_nodes_rejected(self, store):
        with pytest.raises(GraphError):
            compile_transition_store_from_edges(
                store,
                [],
                np.asarray([]),
                np.asarray([]),
                np.asarray([]),
                n_blocks=1,
            )


class TestValidation:
    def test_bad_damping(self, graph, store):
        plan = compile_transition_store(graph, store, n_blocks=2)
        with pytest.raises(ValidationError):
            block_personalized_pagerank(plan, damping=1.0)

    def test_empty_trust_seed(self, graph, store):
        plan = compile_transition_store(graph, store, n_blocks=2)
        with pytest.raises(GraphError):
            block_trustrank(plan, ["unknown.example"])

    def test_scores_sum_to_one(self, graph, store):
        plan = compile_transition_store(graph, store, n_blocks=3)
        assert sum(block_pagerank(plan).values()) == pytest.approx(1.0)
