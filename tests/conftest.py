"""Shared fixtures: session-scoped tiny corpora so expensive generation
and crawling happen once per test run.

Also arms the per-test timeout guard from
:mod:`repro.devtools.testing` (``REPRO_TEST_TIMEOUT``, default 120s)
so a hung crawl or an accidental real ``time.sleep`` in a retry loop
fails fast instead of hanging CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GeneratorConfig, SyntheticWebGenerator, crawl_snapshot
from repro.devtools.testing import pytest_runtest_call  # noqa: F401


TINY_CONFIG = GeneratorConfig(
    n_legitimate=12,
    n_illegitimate=88,
    n_affiliate_hubs=3,
    min_pages=3,
    max_pages=6,
    min_terms_per_page=60,
    max_terms_per_page=120,
    seed=7,
)


@pytest.fixture(scope="session")
def tiny_snapshot_pair():
    """Both generated snapshots (before crawling)."""
    return SyntheticWebGenerator(TINY_CONFIG).generate_pair()


@pytest.fixture(scope="session")
def tiny_corpus(tiny_snapshot_pair):
    """Crawled Dataset 1 at tiny scale."""
    return crawl_snapshot(tiny_snapshot_pair[0])


@pytest.fixture(scope="session")
def tiny_corpus2(tiny_snapshot_pair):
    """Crawled Dataset 2 at tiny scale."""
    return crawl_snapshot(tiny_snapshot_pair[1])


@pytest.fixture(scope="session")
def tiny_documents(tiny_corpus):
    """1000-term summary documents for Dataset 1."""
    from repro.text import Summarizer

    summarizer = Summarizer(max_terms=1000, seed=0)
    return [summarizer.summarize_site(site) for site in tiny_corpus.sites]


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
