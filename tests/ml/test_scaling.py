"""Tests for StandardScaler."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.scaling import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(3.0, 2.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_centered_not_scaled(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        assert scaler.transform(np.array([[1.0]]))[0, 0] == pytest.approx(0.0)
        assert scaler.transform(np.array([[3.0]]))[0, 0] == pytest.approx(2.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((1, 1)))

    def test_feature_mismatch_raises(self):
        scaler = StandardScaler().fit(np.ones((3, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((3, 4)))
