"""Tests for the multilayer perceptron."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.mlp import MLPClassifier


def blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(-1.2, 0.6, size=(n, 3))
    X1 = rng.normal(1.2, 0.6, size=(n, 3))
    return np.vstack([X0, X1]), np.array([0] * n + [1] * n)


class TestMLPClassifier:
    def test_learns_blobs(self):
        X, y = blobs()
        clf = MLPClassifier(n_epochs=100, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 2)) * 2 - 1
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        clf = MLPClassifier(hidden_units=24, n_epochs=400, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_proba_rows_sum_to_one(self):
        X, y = blobs(n=30)
        proba = MLPClassifier(n_epochs=30, seed=0).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_deterministic_given_seed(self):
        X, y = blobs(n=30)
        a = MLPClassifier(n_epochs=20, seed=3).fit(X, y).predict_proba(X)
        b = MLPClassifier(n_epochs=20, seed=3).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MLPClassifier().predict(np.ones((1, 2)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_units=0)
        with pytest.raises(ValueError):
            MLPClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            MLPClassifier(momentum=1.0)
        with pytest.raises(ValueError):
            MLPClassifier(batch_size=0)
        with pytest.raises(ValueError):
            MLPClassifier(class_weight="nope")

    def test_feature_mismatch_raises(self):
        X, y = blobs(n=20)
        clf = MLPClassifier(n_epochs=5).fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.ones((1, 9)))

    def test_decision_scores_separate_classes(self):
        X, y = blobs()
        clf = MLPClassifier(n_epochs=100, seed=0).fit(X, y)
        scores = clf.decision_scores(X)
        assert scores[y == 1].mean() > scores[y == 0].mean()
