"""Tests for Ensemble Selection."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.ensemble import EnsembleSelection, LibraryModel


def make_model(name, proba_by_index):
    """A LibraryModel backed by a fixed (n, 2) probability table."""
    table = np.asarray(proba_by_index, dtype=np.float64)

    def predict_proba(indices):
        return table[np.asarray(indices, dtype=np.int64)]

    return LibraryModel(name=name, predict_proba=predict_proba)


def proba_from_scores(scores):
    scores = np.asarray(scores, dtype=np.float64)
    return np.column_stack([1 - scores, scores])


class TestEnsembleSelection:
    Y = np.array([1, 1, 1, 0, 0, 0, 0, 0])
    IDX = np.arange(8)

    def good(self):
        return make_model(
            "good", proba_from_scores([0.9, 0.8, 0.85, 0.1, 0.2, 0.15, 0.1, 0.05])
        )

    def bad(self):
        return make_model(
            "bad", proba_from_scores([0.1, 0.2, 0.15, 0.9, 0.8, 0.9, 0.85, 0.95])
        )

    def noisy(self):
        rng = np.random.default_rng(0)
        return make_model("noisy", proba_from_scores(rng.random(8)))

    def test_picks_best_single_model(self):
        selection = EnsembleSelection().fit(
            [self.bad(), self.good(), self.noisy()], self.IDX, self.Y
        )
        assert "good" in selection.bag_counts
        assert selection.bag_counts.get("good", 0) >= selection.bag_counts.get(
            "bad", 0
        )

    def test_predictions_follow_bag(self):
        selection = EnsembleSelection().fit([self.good()], self.IDX, self.Y)
        preds = selection.predict(self.IDX)
        assert (preds == self.Y).all()

    def test_proba_shape_and_range(self):
        selection = EnsembleSelection().fit(
            [self.good(), self.noisy()], self.IDX, self.Y
        )
        proba = selection.predict_proba(self.IDX)
        assert proba.shape == (8, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_ensemble_not_worse_than_best_member(self):
        from repro.ml.metrics import auc_roc

        library = [self.good(), self.bad(), self.noisy()]
        selection = EnsembleSelection().fit(library, self.IDX, self.Y)
        ensemble_auc = auc_roc(self.Y, selection.decision_scores(self.IDX))
        best_single = max(
            auc_roc(self.Y, m.predict_proba(self.IDX)[:, 1]) for m in library
        )
        assert ensemble_auc >= best_single - 1e-9

    def test_with_replacement_can_pick_same_model_twice(self):
        # Two complementary models; selection may add either repeatedly.
        selection = EnsembleSelection(max_rounds=10).fit(
            [self.good(), self.noisy()], self.IDX, self.Y
        )
        assert sum(selection.bag_counts.values()) >= 1

    def test_empty_library_raises(self):
        with pytest.raises(ValueError):
            EnsembleSelection().fit([], self.IDX, self.Y)

    def test_bad_proba_shape_raises(self):
        broken = LibraryModel(
            name="broken", predict_proba=lambda idx: np.zeros((len(idx), 3))
        )
        with pytest.raises(ValueError):
            EnsembleSelection().fit([broken], self.IDX, self.Y)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EnsembleSelection().predict_proba(self.IDX)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            EnsembleSelection(n_init=0)
        with pytest.raises(ValueError):
            EnsembleSelection(max_rounds=-1)

    def test_bag_stable_under_library_order(self):
        # Selection walks candidates in sorted-name order and breaks
        # ties deterministically, so the bag must not depend on the
        # order the library list is passed in — including when two
        # models predict identically (the tie-break case).
        rng = np.random.default_rng(5)
        y = (rng.random(40) < 0.4).astype(int)
        idx = np.arange(40)
        tables = {}
        for m in range(6):
            scores = np.clip(0.6 * y + 0.2 + rng.normal(scale=0.3, size=40), 0, 1)
            tables[f"m{m}"] = proba_from_scores(scores)
        tables["m6-twin"] = tables["m0"].copy()  # exact duplicate of m0
        models = [make_model(name, table) for name, table in tables.items()]
        baseline = EnsembleSelection().fit(models, idx, y).bag_counts
        for seed in range(4):
            shuffled = list(models)
            np.random.default_rng(seed).shuffle(shuffled)
            bag = EnsembleSelection().fit(shuffled, idx, y).bag_counts
            assert bag == baseline

    def test_custom_metric_used(self):
        calls = []

        def metric(y_true, scores):
            calls.append(1)
            from repro.ml.metrics import auc_roc

            return auc_roc(y_true, scores)

        EnsembleSelection(metric=metric).fit([self.good()], self.IDX, self.Y)
        assert calls
