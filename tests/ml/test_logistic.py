"""Tests for logistic regression."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import NotFittedError
from repro.ml.logistic import LogisticRegression


def blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(-1.5, 0.8, size=(n, 3))
    X1 = rng.normal(1.5, 0.8, size=(n, 3))
    return np.vstack([X0, X1]), np.array([0] * n + [1] * n)


class TestLogisticRegression:
    def test_learns_blobs(self):
        X, y = blobs()
        clf = LogisticRegression().fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_sparse_input(self):
        X, y = blobs()
        clf = LogisticRegression().fit(sp.csr_matrix(X), y)
        assert (clf.predict(sp.csr_matrix(X)) == y).mean() > 0.95

    def test_probabilities_calibrated_direction(self):
        X, y = blobs()
        clf = LogisticRegression().fit(X, y)
        proba = clf.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba[y == 1, 1].mean() > proba[y == 0, 1].mean()

    def test_decision_function_is_logit(self):
        X, y = blobs(n=30)
        clf = LogisticRegression().fit(X, y)
        margin = clf.decision_function(X[:5])
        proba = clf.predict_proba(X[:5])[:, 1]
        assert np.allclose(proba, 1.0 / (1.0 + np.exp(-margin)))

    def test_balanced_weighting_on_imbalance(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(-0.7, 1, (180, 4)), rng.normal(0.7, 1, (20, 4))]
        )
        y = np.array([0] * 180 + [1] * 20)
        balanced = LogisticRegression(class_weight="balanced").fit(X, y)
        plain = LogisticRegression(class_weight=None).fit(X, y)
        rec_b = (balanced.predict(X)[y == 1] == 1).mean()
        rec_p = (plain.predict(X)[y == 1] == 1).mean()
        assert rec_b >= rec_p

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(9, 2))
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, [0, 1, 2] * 3)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().decision_function(np.ones((1, 2)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(n_iterations=0)
        with pytest.raises(ValueError):
            LogisticRegression(momentum=1.0)
        with pytest.raises(ValueError):
            LogisticRegression(class_weight="nope")

    def test_feature_mismatch_raises(self):
        X, y = blobs(n=15)
        clf = LogisticRegression(n_iterations=10).fit(X, y)
        with pytest.raises(ValueError):
            clf.decision_function(np.ones((1, 8)))

    def test_deterministic(self):
        X, y = blobs(n=20)
        a = LogisticRegression().fit(X, y).decision_function(X)
        b = LogisticRegression().fit(X, y).decision_function(X)
        assert np.allclose(a, b)
