"""Tests for Multinomial and Gaussian Naïve Bayes."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import NotFittedError
from repro.ml.naive_bayes import GaussianNB, MultinomialNB


def separable_counts(n=60, seed=0):
    """Two classes with distinct dominant features."""
    rng = np.random.default_rng(seed)
    X0 = rng.poisson([5, 1, 0.5], size=(n, 3)).astype(float)
    X1 = rng.poisson([0.5, 1, 5], size=(n, 3)).astype(float)
    X = np.vstack([X0, X1])
    y = np.array([0] * n + [1] * n)
    return X, y


class TestMultinomialNB:
    def test_learns_separable_data(self):
        X, y = separable_counts()
        clf = MultinomialNB().fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_sparse_input_matches_dense(self):
        X, y = separable_counts()
        dense = MultinomialNB().fit(X, y).predict_proba(X)
        sparse = MultinomialNB().fit(sp.csr_matrix(X), y).predict_proba(
            sp.csr_matrix(X)
        )
        assert np.allclose(dense, sparse)

    def test_proba_rows_sum_to_one(self):
        X, y = separable_counts()
        proba = MultinomialNB().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_prior_respected_on_uninformative_input(self):
        # 90/10 imbalance; an all-zero row should follow the prior.
        X = np.ones((100, 2))
        y = np.array([0] * 90 + [1] * 10)
        clf = MultinomialNB().fit(X, y)
        proba = clf.predict_proba(np.zeros((1, 2)))
        assert proba[0, 0] > proba[0, 1]

    def test_uniform_prior_option(self):
        X = np.ones((100, 2))
        y = np.array([0] * 90 + [1] * 10)
        clf = MultinomialNB(fit_prior=False).fit(X, y)
        proba = clf.predict_proba(np.zeros((1, 2)))
        assert proba[0, 0] == pytest.approx(proba[0, 1])

    def test_hand_computed_likelihood(self):
        # One doc per class: class 0 = [2, 0], class 1 = [0, 2], alpha=1.
        X = np.array([[2.0, 0.0], [0.0, 2.0]])
        y = np.array([0, 1])
        clf = MultinomialNB(alpha=1.0).fit(X, y)
        # P(t0 | c0) = (2+1)/(2+2) = 3/4.
        assert np.exp(clf._log_likelihood[0, 0]) == pytest.approx(3 / 4)
        assert np.exp(clf._log_likelihood[0, 1]) == pytest.approx(1 / 4)

    def test_negative_features_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit(np.array([[-1.0, 1.0], [1.0, 0.0]]), [0, 1])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MultinomialNB().predict(np.ones((1, 2)))

    def test_feature_mismatch_raises(self):
        X, y = separable_counts()
        clf = MultinomialNB().fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.ones((1, 5)))

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            MultinomialNB(alpha=0.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit(np.ones((3, 2)), [1, 1, 1])

    def test_classes_preserved(self):
        X, y = separable_counts()
        clf = MultinomialNB().fit(X, y + 5)  # labels 5 and 6
        assert set(clf.predict(X)) <= {5, 6}


class TestGaussianNB:
    def test_learns_gaussian_blobs(self):
        rng = np.random.default_rng(0)
        X0 = rng.normal(-2, 1, size=(80, 2))
        X1 = rng.normal(2, 1, size=(80, 2))
        X = np.vstack([X0, X1])
        y = np.array([0] * 80 + [1] * 80)
        clf = GaussianNB().fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_decision_scores_monotone_with_position(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(-1, 0.5, size=(50, 1)), rng.normal(1, 0.5, size=(50, 1))]
        )
        y = np.array([0] * 50 + [1] * 50)
        clf = GaussianNB().fit(X, y)
        scores = clf.decision_scores(np.array([[-2.0], [0.0], [2.0]]))
        assert scores[0] < scores[1] < scores[2]

    def test_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, 40)
        proba = GaussianNB().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_constant_feature_does_not_crash(self):
        X = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 0.1], [1.0, 0.9]])
        y = np.array([0, 1, 0, 1])
        clf = GaussianNB().fit(X, y)
        assert clf.predict(X).shape == (4,)

    def test_var_smoothing_validation(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianNB().predict_proba(np.ones((1, 2)))
