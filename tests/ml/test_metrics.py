"""Tests for the evaluation measures of Section 6.2."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import (
    accuracy,
    auc_roc,
    classification_report,
    confusion_counts,
    f1_score,
    mean_confidence_interval,
    pairwise_orderedness,
    precision,
    recall,
    roc_curve,
)


Y_TRUE = [1, 1, 1, 0, 0, 0, 0, 0]
Y_PRED = [1, 1, 0, 0, 0, 0, 1, 0]


class TestConfusionAndBasics:
    def test_confusion_counts(self):
        tp, fp, tn, fn = confusion_counts(Y_TRUE, Y_PRED, positive_label=1)
        assert (tp, fp, tn, fn) == (2, 1, 4, 1)

    def test_accuracy(self):
        assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(6 / 8)

    def test_precision(self):
        assert precision(Y_TRUE, Y_PRED, 1) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall(Y_TRUE, Y_PRED, 1) == pytest.approx(2 / 3)

    def test_negative_class_measures(self):
        assert precision(Y_TRUE, Y_PRED, 0) == pytest.approx(4 / 5)
        assert recall(Y_TRUE, Y_PRED, 0) == pytest.approx(4 / 5)

    def test_f1(self):
        p = precision(Y_TRUE, Y_PRED, 1)
        r = recall(Y_TRUE, Y_PRED, 1)
        assert f1_score(Y_TRUE, Y_PRED, 1) == pytest.approx(2 * p * r / (p + r))

    def test_degenerate_precision_zero(self):
        assert precision([0, 0], [0, 0], 1) == 0.0

    def test_degenerate_recall_zero(self):
        assert recall([0, 0], [0, 1], 1) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1, 0], [1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestROC:
    def test_perfect_separation_auc_one(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert auc_roc(y, scores) == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        y = [0, 0, 1, 1]
        scores = [0.9, 0.8, 0.2, 0.1]
        assert auc_roc(y, scores) == pytest.approx(0.0)

    def test_random_scores_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert auc_roc(y, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_get_half_credit(self):
        y = [0, 1]
        scores = [0.5, 0.5]
        assert auc_roc(y, scores) == pytest.approx(0.5)

    def test_curve_endpoints(self):
        fpr, tpr, thresholds = roc_curve([0, 1, 1, 0], [0.1, 0.9, 0.8, 0.3])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] > thresholds[1]

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_roc([1, 1], [0.1, 0.2])

    def test_auc_known_value(self):
        # One inversion among 2x2 pairs -> AUC = 3/4.
        y = [0, 1, 0, 1]
        scores = [0.2, 0.3, 0.4, 0.9]
        assert auc_roc(y, scores) == pytest.approx(0.75)


class TestConfidenceInterval:
    def test_single_value(self):
        mean, half = mean_confidence_interval([0.9])
        assert mean == 0.9
        assert half == 0.0

    def test_constant_values(self):
        mean, half = mean_confidence_interval([0.5, 0.5, 0.5])
        assert mean == 0.5
        assert half == pytest.approx(0.0)

    def test_symmetric_interval_contains_mean_spread(self):
        mean, half = mean_confidence_interval([0.8, 0.9, 1.0])
        assert mean == pytest.approx(0.9)
        assert half > 0

    def test_higher_confidence_wider(self):
        _, half95 = mean_confidence_interval([0.8, 0.9, 1.0], confidence=0.95)
        _, half99 = mean_confidence_interval([0.8, 0.9, 1.0], confidence=0.99)
        assert half99 > half95

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestPairwiseOrderedness:
    def test_perfect_ranking(self):
        ranks = [0.9, 0.8, 0.2, 0.1]
        labels = [1, 1, 0, 0]
        assert pairwise_orderedness(ranks, labels) == pytest.approx(1.0)

    def test_fully_inverted(self):
        ranks = [0.1, 0.2, 0.8, 0.9]
        labels = [1, 1, 0, 0]
        assert pairwise_orderedness(ranks, labels) == pytest.approx(0.0)

    def test_tie_counts_as_violation(self):
        """The paper: I=1 when an illegitimate gets an equal or higher
        score than a legitimate."""
        ranks = [0.5, 0.5]
        labels = [1, 0]
        assert pairwise_orderedness(ranks, labels) == pytest.approx(0.0)

    def test_single_violation_fraction(self):
        # 1 legit vs 2 illegit; one illegit outranks the legit.
        ranks = [0.5, 0.9, 0.1]
        labels = [1, 0, 0]
        assert pairwise_orderedness(ranks, labels) == pytest.approx(0.5)

    def test_one_class_raises(self):
        with pytest.raises(ValueError):
            pairwise_orderedness([0.1, 0.2], [1, 1])

    def test_matches_naive_quadratic(self):
        rng = np.random.default_rng(1)
        ranks = rng.random(40)
        labels = rng.integers(0, 2, 40)
        if labels.sum() in (0, 40):
            labels[0] = 1 - labels[0]
        expected_violations = sum(
            1
            for i in range(40)
            for j in range(40)
            if labels[i] == 1 and labels[j] == 0 and ranks[j] >= ranks[i]
        )
        n_pairs = int(labels.sum() * (40 - labels.sum()))
        expected = (n_pairs - expected_violations) / n_pairs
        assert pairwise_orderedness(ranks, labels) == pytest.approx(expected)


class TestClassificationReport:
    def test_all_fields(self):
        scores = [0.9, 0.8, 0.4, 0.3, 0.2, 0.1, 0.6, 0.05]
        report = classification_report(Y_TRUE, Y_PRED, scores)
        assert report.accuracy == pytest.approx(6 / 8)
        assert report.legitimate_precision == pytest.approx(2 / 3)
        assert report.legitimate_recall == pytest.approx(2 / 3)
        assert report.illegitimate_precision == pytest.approx(4 / 5)
        assert report.illegitimate_recall == pytest.approx(4 / 5)
        assert 0.0 <= report.auc_roc <= 1.0

    def test_as_dict_keys(self):
        scores = np.linspace(0, 1, 8)
        report = classification_report(Y_TRUE, Y_PRED, scores)
        assert set(report.as_dict()) == {
            "accuracy",
            "legitimate_precision",
            "legitimate_recall",
            "illegitimate_precision",
            "illegitimate_recall",
            "auc_roc",
        }


@given(
    labels=st.lists(st.integers(0, 1), min_size=4, max_size=60).filter(
        lambda ls: 0 < sum(ls) < len(ls)
    ),
    seed=st.integers(0, 1000),
)
def test_auc_always_in_unit_interval(labels, seed):
    rng = np.random.default_rng(seed)
    scores = rng.random(len(labels))
    value = auc_roc(labels, scores)
    assert 0.0 <= value <= 1.0


@given(
    labels=st.lists(st.integers(0, 1), min_size=4, max_size=60).filter(
        lambda ls: 0 < sum(ls) < len(ls)
    ),
    seed=st.integers(0, 1000),
)
def test_pairord_in_unit_interval(labels, seed):
    rng = np.random.default_rng(seed)
    ranks = rng.random(len(labels))
    value = pairwise_orderedness(ranks, labels)
    assert 0.0 <= value <= 1.0


class TestPrecisionRecallCurve:
    def test_perfect_ranking(self):
        from repro.ml.metrics import average_precision, precision_recall_curve

        y = [1, 1, 0, 0]
        scores = [0.9, 0.8, 0.2, 0.1]
        prec, rec, thresholds = precision_recall_curve(y, scores)
        assert prec[0] == 1.0 and rec[0] == 0.0
        assert rec[-1] == pytest.approx(1.0)
        assert average_precision(y, scores) == pytest.approx(1.0)

    def test_ap_hand_computed(self):
        from repro.ml.metrics import average_precision

        # Ranking: pos, neg, pos -> AP = (1/2)(1) + (1/2)(2/3) = 0.8333.
        y = [1, 0, 1]
        scores = [0.9, 0.5, 0.1]
        assert average_precision(y, scores) == pytest.approx(5 / 6)

    def test_recall_monotone(self):
        from repro.ml.metrics import precision_recall_curve

        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 50)
        y[0] = 1
        scores = rng.random(50)
        _, rec, _ = precision_recall_curve(y, scores)
        assert np.all(np.diff(rec) >= -1e-12)

    def test_no_positives_raises(self):
        from repro.ml.metrics import precision_recall_curve

        with pytest.raises(ValueError):
            precision_recall_curve([0, 0], [0.5, 0.1])


class TestThresholdForPrecision:
    def test_finds_perfect_threshold(self):
        from repro.ml.metrics import threshold_for_precision

        y = [1, 1, 0, 0]
        scores = [0.9, 0.8, 0.2, 0.1]
        threshold = threshold_for_precision(y, scores, min_precision=1.0)
        assert threshold is not None
        predictions = (np.asarray(scores) >= threshold).astype(int)
        assert precision(y, predictions, 1) == 1.0
        assert recall(y, predictions, 1) == 1.0

    def test_infeasible_returns_none(self):
        from repro.ml.metrics import threshold_for_precision

        # The top-scored item is negative: precision 1.0 is unreachable.
        y = [0, 1]
        scores = [0.9, 0.1]
        assert threshold_for_precision(y, scores, min_precision=1.0) is None

    def test_trades_recall_for_precision(self):
        from repro.ml.metrics import threshold_for_precision

        y = [1, 0, 1, 0, 1]
        scores = [0.9, 0.8, 0.7, 0.6, 0.5]
        strict = threshold_for_precision(y, scores, min_precision=1.0)
        loose = threshold_for_precision(y, scores, min_precision=0.6)
        assert strict is not None and loose is not None
        assert strict >= loose

    def test_validation(self):
        from repro.ml.metrics import threshold_for_precision

        with pytest.raises(ValueError):
            threshold_for_precision([1, 0], [0.5, 0.1], min_precision=0.0)
