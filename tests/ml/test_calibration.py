"""Tests for Platt scaling and the calibrated classifier wrapper."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.calibration import CalibratedClassifier, PlattScaler
from repro.ml.svm import LinearSVC


def scored_labels(n=300, seed=0):
    """Scores drawn so that P(y=1|s) = sigma(2 s)."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(0, 1.5, n)
    proba = 1.0 / (1.0 + np.exp(-2.0 * scores))
    labels = (rng.random(n) < proba).astype(int)
    return scores, labels


class TestPlattScaler:
    def test_monotone_increasing_in_score(self):
        scores, labels = scored_labels()
        scaler = PlattScaler().fit(scores, labels)
        grid = scaler.transform(np.array([-3.0, -1.0, 0.0, 1.0, 3.0]))
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_recovers_generating_sigmoid(self):
        scores, labels = scored_labels(n=4000, seed=1)
        scaler = PlattScaler().fit(scores, labels)
        predicted = scaler.transform(np.array([0.0]))
        assert predicted[0] == pytest.approx(0.5, abs=0.06)
        predicted = scaler.transform(np.array([1.0]))
        true_value = 1.0 / (1.0 + np.exp(-2.0))
        assert predicted[0] == pytest.approx(true_value, abs=0.06)

    def test_probabilities_in_unit_interval(self):
        scores, labels = scored_labels()
        scaler = PlattScaler().fit(scores, labels)
        out = scaler.transform(np.linspace(-100, 100, 50))
        assert np.all((out >= 0) & (out <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PlattScaler().transform([0.0])

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit([0.1, 0.2], [1, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit([0.1, 0.2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit([], [])


class TestCalibratedClassifier:
    def test_calibrated_svm_probabilities(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(-1, 1, (100, 3)), rng.normal(1, 1, (100, 3))]
        )
        y = np.array([0] * 100 + [1] * 100)
        train, holdout = np.arange(0, 200, 2), np.arange(1, 200, 2)
        svm = LinearSVC(n_epochs=15).fit(X[train], y[train])
        calibrated = CalibratedClassifier(
            svm, svm.decision_scores(X[holdout]), y[holdout]
        )
        proba = calibrated.predict_proba(X[holdout])
        assert np.allclose(proba.sum(axis=1), 1.0)
        # Calibration: average probability ~ class rate.
        assert proba[:, 1].mean() == pytest.approx(0.5, abs=0.1)

    def test_predictions_respect_original_classes(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-1, 1, (50, 2)), rng.normal(1, 1, (50, 2))])
        y = np.array([5] * 50 + [9] * 50)  # non-0/1 labels
        svm = LinearSVC(n_epochs=15).fit(X, y)
        calibrated = CalibratedClassifier(svm, svm.decision_scores(X), (y == 9).astype(int))
        assert set(calibrated.predict(X)) <= {5, 9}

    def test_auc_preserved_by_calibration(self):
        """Platt scaling is monotone, so ranking quality is unchanged."""
        from repro.ml.metrics import auc_roc

        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(-1, 1, (80, 2)), rng.normal(1, 1, (80, 2))])
        y = np.array([0] * 80 + [1] * 80)
        svm = LinearSVC(n_epochs=15).fit(X, y)
        calibrated = CalibratedClassifier(svm, svm.decision_scores(X), y)
        raw_auc = auc_roc(y, svm.decision_scores(X))
        cal_auc = auc_roc(y, calibrated.decision_scores(X))
        assert cal_auc == pytest.approx(raw_auc, abs=1e-9)
