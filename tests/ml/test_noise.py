"""Tests for label-noise injection and robustness curves."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.noise import inject_label_noise, noise_robustness_curve


class TestInjectLabelNoise:
    def test_zero_rate_is_identity(self):
        y = [1, 0, 1, 0, 0]
        assert np.array_equal(inject_label_noise(y, 0.0), y)

    def test_original_untouched(self):
        y = np.array([1, 0, 1, 0])
        inject_label_noise(y, 1.0)
        assert np.array_equal(y, [1, 0, 1, 0])

    def test_full_rate_flips_everything(self):
        y = np.array([1, 0, 1, 0])
        noisy = inject_label_noise(y, 1.0, direction="both")
        assert np.array_equal(noisy, 1 - y)

    def test_flip_count(self):
        y = np.zeros(100, dtype=int)
        noisy = inject_label_noise(y, 0.2, direction="both", seed=1)
        assert int(np.sum(noisy != y)) == 20

    def test_direction_legit_to_illegit(self):
        y = np.array([1] * 10 + [0] * 10)
        noisy = inject_label_noise(y, 0.5, direction="legit_to_illegit", seed=0)
        # Only 1 -> 0 flips: the illegitimate half is untouched.
        assert np.array_equal(noisy[10:], y[10:])
        assert int(np.sum(noisy[:10] == 0)) == 5

    def test_direction_illegit_to_legit(self):
        y = np.array([1] * 10 + [0] * 10)
        noisy = inject_label_noise(y, 0.3, direction="illegit_to_legit", seed=0)
        assert np.array_equal(noisy[:10], y[:10])
        assert int(np.sum(noisy[10:] == 1)) == 3

    def test_deterministic(self):
        y = np.random.default_rng(0).integers(0, 2, 50)
        a = inject_label_noise(y, 0.3, seed=4)
        b = inject_label_noise(y, 0.3, seed=4)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_label_noise([1, 0], 1.5)
        with pytest.raises(ValueError):
            inject_label_noise([1, 0], 0.5, direction="sideways")


class TestNoiseRobustnessCurve:
    def test_curve_shape(self):
        y = np.array([1] * 10 + [0] * 30)

        def fit_score(noisy):
            # Score = agreement with clean labels: decays with noise.
            return float(np.mean(noisy == y))

        curve = noise_robustness_curve(fit_score, y, noise_rates=(0.0, 0.2, 0.5))
        assert [rate for rate, _ in curve] == [0.0, 0.2, 0.5]
        scores = [score for _, score in curve]
        assert scores[0] == pytest.approx(1.0)
        assert scores[0] >= scores[1] >= scores[2]


@given(
    rate=st.floats(0.0, 1.0),
    n=st.integers(4, 60),
    seed=st.integers(0, 50),
)
def test_noise_never_changes_length_or_alphabet(rate, n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    noisy = inject_label_noise(y, rate, seed=seed)
    assert noisy.shape == y.shape
    assert set(np.unique(noisy)) <= {0, 1}
