"""Tests for the Pegasos linear SVM."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import NotFittedError
from repro.ml.svm import LinearSVC


def blobs(n=80, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(-gap, 1.0, size=(n, 4))
    X1 = rng.normal(gap, 1.0, size=(n, 4))
    return np.vstack([X0, X1]), np.array([0] * n + [1] * n)


class TestLinearSVC:
    def test_separable_blobs(self):
        X, y = blobs()
        clf = LinearSVC(n_epochs=20).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.97

    def test_sparse_input(self):
        X, y = blobs()
        clf = LinearSVC(n_epochs=20).fit(sp.csr_matrix(X), y)
        assert (clf.predict(sp.csr_matrix(X)) == y).mean() > 0.97

    def test_sparse_dense_agree(self):
        X, y = blobs(n=40)
        dense = LinearSVC(n_epochs=5, seed=1).fit(X, y)
        sparse = LinearSVC(n_epochs=5, seed=1).fit(sp.csr_matrix(X), y)
        assert np.allclose(
            dense.decision_function(X),
            sparse.decision_function(sp.csr_matrix(X)),
            atol=1e-8,
        )

    def test_decision_scores_are_margins(self):
        X, y = blobs()
        clf = LinearSVC(n_epochs=20).fit(X, y)
        scores = clf.decision_scores(X)
        assert scores[y == 1].mean() > scores[y == 0].mean()

    def test_proba_is_sigmoid_of_margin(self):
        X, y = blobs()
        clf = LinearSVC(n_epochs=10).fit(X, y)
        margin = clf.decision_function(X[:5])
        proba = clf.predict_proba(X[:5])
        assert np.allclose(proba[:, 1], 1.0 / (1.0 + np.exp(-margin)))

    def test_balanced_weighting_helps_minority_recall(self):
        rng = np.random.default_rng(0)
        # 8% minority with a modest gap.
        X0 = rng.normal(-0.8, 1.0, size=(230, 5))
        X1 = rng.normal(0.8, 1.0, size=(20, 5))
        X = np.vstack([X0, X1])
        y = np.array([0] * 230 + [1] * 20)
        balanced = LinearSVC(class_weight="balanced", n_epochs=20).fit(X, y)
        plain = LinearSVC(class_weight=None, n_epochs=20).fit(X, y)
        recall_balanced = (balanced.predict(X)[y == 1] == 1).mean()
        recall_plain = (plain.predict(X)[y == 1] == 1).mean()
        assert recall_balanced >= recall_plain

    def test_deterministic_given_seed(self):
        X, y = blobs(n=30)
        a = LinearSVC(n_epochs=5, seed=7).fit(X, y).decision_function(X)
        b = LinearSVC(n_epochs=5, seed=7).fit(X, y).decision_function(X)
        assert np.allclose(a, b)

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(9, 2))
        y = np.array([0, 1, 2] * 3)
        with pytest.raises(ValueError):
            LinearSVC().fit(X, y)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVC().decision_function(np.ones((1, 2)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            LinearSVC(lam=0.0)
        with pytest.raises(ValueError):
            LinearSVC(n_epochs=0)
        with pytest.raises(ValueError):
            LinearSVC(class_weight="bogus")

    def test_feature_mismatch_raises(self):
        X, y = blobs(n=20)
        clf = LinearSVC(n_epochs=3).fit(X, y)
        with pytest.raises(ValueError):
            clf.decision_function(np.ones((2, 9)))


class TestWarmStart:
    def test_explicit_cold_start_args_reproduce_the_default(self):
        from repro.ml.svm import pegasos_weights

        X, y = blobs(n=20)
        signs = np.where(y == 1, 1.0, -1.0)
        weight = np.ones(len(y))
        kwargs = dict(lam=1e-3, n_epochs=4, seed=7, batch_size=8)
        cold = pegasos_weights(X, signs, weight, **kwargs)
        explicit = pegasos_weights(
            X,
            signs,
            weight,
            init_weights=np.zeros(X.shape[1] + 1),
            t0=0,
            **kwargs,
        )
        assert np.array_equal(cold, explicit)

    def test_warm_fit_matches_manual_schedule_continuation(self):
        from repro.ml.svm import pegasos_weights

        X, y = blobs(n=30, seed=2)
        clf = LinearSVC(n_epochs=5, class_weight=None, seed=3).fit(X, y)
        start = np.concatenate([clf._w, [clf._b]])
        t_before = clf._t
        clf.warm_fit(X, y, n_epochs=2)
        manual = pegasos_weights(
            X,
            np.where(y == 1, 1.0, -1.0),
            np.ones(len(y)),
            lam=clf._lam,
            n_epochs=2,
            seed=3,
            batch_size=clf._batch_size,
            init_weights=start,
            t0=t_before,
        )
        assert np.array_equal(np.concatenate([clf._w, [clf._b]]), manual)
        assert clf._t == t_before + 2 * clf._steps_per_pass(X.shape[0])

    def test_warm_fit_keeps_separable_data_separated(self):
        X, y = blobs()
        clf = LinearSVC(n_epochs=20).fit(X, y)
        clf.warm_fit(X, y, n_epochs=3)
        assert (clf.predict(X) == y).mean() > 0.97

    def test_warm_fit_before_fit_raises(self):
        X, y = blobs(n=10)
        with pytest.raises(NotFittedError):
            LinearSVC().warm_fit(X, y)

    def test_warm_fit_feature_mismatch_raises(self):
        X, y = blobs(n=10)
        clf = LinearSVC(n_epochs=2).fit(X, y)
        with pytest.raises(ValueError):
            clf.warm_fit(np.ones((4, X.shape[1] + 1)), np.array([0, 1, 0, 1]))

    def test_warm_fit_param_validation(self):
        X, y = blobs(n=10)
        clf = LinearSVC(n_epochs=2).fit(X, y)
        with pytest.raises(ValueError):
            clf.warm_fit(X, y, n_epochs=0)

    def test_pegasos_init_weights_validation(self):
        from repro.ml.svm import pegasos_weights

        X, y = blobs(n=10)
        signs = np.where(y == 1, 1.0, -1.0)
        weight = np.ones(len(y))
        kwargs = dict(lam=1e-3, n_epochs=1, seed=0, batch_size=4)
        with pytest.raises(ValueError):
            pegasos_weights(
                X, signs, weight, init_weights=np.zeros(2), **kwargs
            )
        with pytest.raises(ValueError):
            pegasos_weights(X, signs, weight, t0=-1, **kwargs)
