"""Tests for the classifier base utilities."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ml.base import check_X, check_X_y, clone, ensure_dense
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.svm import LinearSVC
from repro.ml.tree import C45Tree


class TestEnsureDense:
    def test_sparse_densified(self):
        X = sp.csr_matrix(np.eye(3))
        out = ensure_dense(X)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, np.eye(3))

    def test_1d_promoted_to_column(self):
        assert ensure_dense(np.array([1.0, 2.0])).shape == (2, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            ensure_dense(np.zeros((2, 2, 2)))


class TestCheckXY:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((3, 2)), [0, 1])

    def test_2d_y_rejected(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((2, 2)), np.ones((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((0, 2)), [])

    def test_sparse_passthrough(self):
        X = sp.csr_matrix(np.ones((2, 2)))
        out, y = check_X_y(X, [0, 1])
        assert sp.issparse(out)

    def test_sparse_densified_when_disallowed(self):
        X = sp.csr_matrix(np.ones((2, 2)))
        out = check_X(X, allow_sparse=False)
        assert isinstance(out, np.ndarray)


class TestClone:
    @pytest.mark.parametrize(
        "estimator",
        [
            MultinomialNB(alpha=0.3, fit_prior=False),
            GaussianNB(var_smoothing=1e-6),
            LinearSVC(lam=0.01, n_epochs=7, class_weight=None, seed=5),
            C45Tree(max_depth=3, min_samples_split=6),
        ],
    )
    def test_clone_preserves_params(self, estimator):
        copy = clone(estimator)
        assert type(copy) is type(estimator)
        assert copy.get_params() == estimator.get_params()
        assert copy is not estimator

    def test_clone_is_unfitted(self):
        X = np.array([[0.0], [1.0], [0.1], [0.9]])
        y = np.array([0, 1, 0, 1])
        fitted = GaussianNB().fit(X, y)
        copy = clone(fitted)
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            copy.predict(X)

    def test_repr_contains_params(self):
        text = repr(MultinomialNB(alpha=0.5))
        assert "MultinomialNB" in text
        assert "0.5" in text
