"""Tests for stratified cross-validation utilities."""

import numpy as np
import pytest

from repro.ml.model_selection import (
    StratifiedKFold,
    cross_val_predictions,
    train_test_split,
)


class TestStratifiedKFold:
    def test_partitions_everything(self):
        y = np.array([0] * 30 + [1] * 6)
        seen = []
        for train, test in StratifiedKFold(3, seed=0).split(y):
            seen.extend(test.tolist())
            assert set(train).isdisjoint(set(test))
        assert sorted(seen) == list(range(36))

    def test_stratification_preserved(self):
        y = np.array([0] * 30 + [1] * 6)
        for _, test in StratifiedKFold(3, seed=0).split(y):
            assert (y[test] == 1).sum() == 2
            assert (y[test] == 0).sum() == 10

    def test_n_splits_count(self):
        y = np.array([0, 1] * 10)
        folds = list(StratifiedKFold(5, seed=0).split(y))
        assert len(folds) == 5

    def test_class_smaller_than_folds_raises(self):
        y = np.array([0] * 10 + [1] * 2)
        with pytest.raises(ValueError):
            list(StratifiedKFold(3).split(y))

    def test_deterministic_given_seed(self):
        y = np.array([0] * 12 + [1] * 6)
        a = [t.tolist() for _, t in StratifiedKFold(3, seed=4).split(y)]
        b = [t.tolist() for _, t in StratifiedKFold(3, seed=4).split(y)]
        assert a == b

    def test_shuffle_changes_assignment(self):
        y = np.array([0] * 12 + [1] * 6)
        a = [t.tolist() for _, t in StratifiedKFold(3, seed=1).split(y)]
        b = [t.tolist() for _, t in StratifiedKFold(3, seed=2).split(y)]
        assert a != b

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        y = np.array([0] * 20 + [1] * 5)
        train, test = train_test_split(y, test_fraction=0.2, seed=0)
        assert set(train).isdisjoint(set(test))
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(25))

    def test_both_classes_in_both_sides(self):
        y = np.array([0] * 20 + [1] * 5)
        train, test = train_test_split(y, test_fraction=0.3, seed=0)
        assert {0, 1} <= set(y[train].tolist())
        assert {0, 1} <= set(y[test].tolist())

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            train_test_split([0, 1], test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split([0, 1], test_fraction=1.0)


class TestCrossValPredictions:
    def test_driver_yields_per_fold(self):
        y = np.array([0] * 9 + [1] * 3)

        def fit_predict(train_idx, test_idx):
            return np.zeros(len(test_idx)), np.zeros(len(test_idx))

        folds = list(cross_val_predictions(fit_predict, y, n_splits=3))
        assert len(folds) == 3
        for y_test, preds, scores in folds:
            assert len(y_test) == len(preds) == len(scores) == 4
