"""Tests for undersampling and SMOTE."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.ml.sampling import SAMPLER_ABBREVIATIONS, SMOTE, RandomUnderSampler


def imbalanced(n_major=90, n_minor=10, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(0, 1, (n_major, 3)), rng.normal(5, 1, (n_minor, 3))]
    )
    y = np.array([0] * n_major + [1] * n_minor)
    return X, y


class TestRandomUnderSampler:
    def test_balances_classes(self):
        X, y = imbalanced()
        Xr, yr = RandomUnderSampler(seed=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == 10

    def test_rows_come_from_original(self):
        X, y = imbalanced()
        Xr, _ = RandomUnderSampler(seed=0).fit_resample(X, y)
        original = {tuple(row) for row in X}
        assert all(tuple(row) in original for row in np.asarray(Xr))

    def test_deterministic(self):
        X, y = imbalanced()
        a = RandomUnderSampler(seed=1).fit_resample(X, y)
        b = RandomUnderSampler(seed=1).fit_resample(X, y)
        assert np.array_equal(np.asarray(a[0]), np.asarray(b[0]))

    def test_sparse_input_supported(self):
        X, y = imbalanced()
        Xr, yr = RandomUnderSampler(seed=0).fit_resample(sp.csr_matrix(X), y)
        assert sp.issparse(Xr)
        assert (yr == 0).sum() == (yr == 1).sum()

    def test_already_balanced_unchanged_size(self):
        X, y = imbalanced(n_major=10, n_minor=10)
        Xr, yr = RandomUnderSampler().fit_resample(X, y)
        assert len(yr) == 20


class TestSMOTE:
    def test_upsamples_minority_to_majority(self):
        X, y = imbalanced()
        Xr, yr = SMOTE(seed=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == 90

    def test_original_rows_preserved(self):
        X, y = imbalanced()
        Xr, yr = SMOTE(seed=0).fit_resample(X, y)
        assert np.allclose(Xr[: len(y)], X)
        assert np.array_equal(yr[: len(y)], y)

    def test_synthetic_rows_near_minority_cluster(self):
        X, y = imbalanced()
        Xr, yr = SMOTE(seed=0).fit_resample(X, y)
        synthetic = Xr[len(y):]
        # Minority cluster is centred at 5; synthetic rows interpolate
        # within it, so they stay close.
        assert np.all(np.abs(synthetic.mean(axis=0) - 5.0) < 1.5)

    def test_synthetic_on_segment_between_neighbours(self):
        """SMOTE rows are convex combinations of two minority rows."""
        X = np.array([[0.0, 0.0], [1.0, 1.0], [10.0, 10.0], [11.0, 11.0],
                      [12.0, 12.0], [13.0, 13.0]])
        y = np.array([1, 1, 0, 0, 0, 0])
        Xr, yr = SMOTE(k_neighbors=1, seed=0).fit_resample(X, y)
        synthetic = Xr[len(y):]
        # With the two minority points on the x=y line, every
        # interpolation stays on it.
        assert np.allclose(synthetic[:, 0], synthetic[:, 1])
        assert np.all(synthetic >= 0.0) and np.all(synthetic <= 1.0 + 1e-9)

    def test_deterministic(self):
        X, y = imbalanced()
        a = SMOTE(seed=2).fit_resample(X, y)[0]
        b = SMOTE(seed=2).fit_resample(X, y)[0]
        assert np.allclose(a, b)

    def test_single_minority_row_replicates(self):
        X = np.vstack([np.zeros((5, 2)), np.ones((1, 2))])
        y = np.array([0] * 5 + [1])
        Xr, yr = SMOTE().fit_resample(X, y)
        assert (yr == 1).sum() == 5
        assert np.allclose(Xr[yr == 1], 1.0)

    def test_sparse_input_densified(self):
        X, y = imbalanced()
        Xr, _ = SMOTE(seed=0).fit_resample(sp.csr_matrix(X), y)
        assert isinstance(Xr, np.ndarray)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SMOTE(k_neighbors=0)

    def test_abbreviations_match_paper(self):
        assert SAMPLER_ABBREVIATIONS[None] == "NO"
        assert SAMPLER_ABBREVIATIONS["RandomUnderSampler"] == "SUB"
        assert SAMPLER_ABBREVIATIONS["SMOTE"] == "SMOTE"


@given(
    n_minor=st.integers(2, 8),
    n_major=st.integers(9, 30),
    seed=st.integers(0, 100),
)
@settings(max_examples=25)
def test_smote_output_always_balanced(n_minor, n_major, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_minor + n_major, 3))
    y = np.array([1] * n_minor + [0] * n_major)
    _, yr = SMOTE(seed=seed).fit_resample(X, y)
    assert (yr == 0).sum() == (yr == 1).sum() == n_major


@given(
    n_minor=st.integers(3, 10),
    seed=st.integers(0, 100),
)
@settings(max_examples=25)
def test_smote_synthetic_inside_minority_bounding_box(n_minor, seed):
    """Interpolated points can never leave the minority bounding box."""
    rng = np.random.default_rng(seed)
    minority = rng.normal(size=(n_minor, 2))
    majority = rng.normal(10.0, 1.0, size=(n_minor + 5, 2))
    X = np.vstack([minority, majority])
    y = np.array([1] * n_minor + [0] * (n_minor + 5))
    Xr, yr = SMOTE(seed=seed).fit_resample(X, y)
    synthetic = Xr[len(y):]
    lo, hi = minority.min(axis=0), minority.max(axis=0)
    assert np.all(synthetic >= lo - 1e-9)
    assert np.all(synthetic <= hi + 1e-9)
