"""Tests for the C4.5 decision tree (J48 equivalent)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.tree import C45Tree, _entropy, _pessimistic_errors


class TestEntropyHelpers:
    def test_pure_node_zero_entropy(self):
        assert _entropy(np.array([10.0, 0.0])) == 0.0

    def test_balanced_node_one_bit(self):
        assert _entropy(np.array([5.0, 5.0])) == pytest.approx(1.0)

    def test_pessimistic_errors_exceed_observed(self):
        assert _pessimistic_errors(100, 10) > 10

    def test_pessimistic_errors_zero_samples(self):
        assert _pessimistic_errors(0, 0) == 0.0


class TestC45Tree:
    def test_axis_aligned_split(self):
        X = np.array([[0.1], [0.2], [0.3], [0.7], [0.8], [0.9]] * 4)
        y = np.array([0, 0, 0, 1, 1, 1] * 4)
        clf = C45Tree(min_samples_split=2, min_samples_leaf=1).fit(X, y)
        assert (clf.predict(X) == y).all()

    def test_xor_needs_depth_two(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        clf = C45Tree(min_samples_split=4, min_samples_leaf=2).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9
        assert clf.depth() >= 2

    def test_max_depth_limits(self):
        rng = np.random.default_rng(0)
        X = rng.random((100, 3))
        y = (X[:, 0] + X[:, 1] > 1).astype(int)
        clf = C45Tree(max_depth=1, confidence_factor=None).fit(X, y)
        assert clf.depth() <= 1

    def test_min_samples_leaf_respected(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        clf = C45Tree(min_samples_split=2, min_samples_leaf=2).fit(X, y)
        # Only the middle cut keeps 2 per side.
        assert clf.n_leaves() <= 2

    def test_pure_data_single_leaf(self):
        X = np.random.default_rng(0).random((10, 2))
        y01 = np.array([0, 1] + [0] * 8)
        clf = C45Tree().fit(X, y01)
        assert clf.n_leaves() >= 1  # fitted without error

    def test_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        X = rng.random((60, 3))
        y = (X[:, 0] > 0.5).astype(int)
        proba = C45Tree().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pruning_reduces_or_keeps_leaves(self):
        rng = np.random.default_rng(0)
        X = rng.random((150, 4))
        y = rng.integers(0, 2, 150)  # pure noise: pruning should collapse
        pruned = C45Tree(confidence_factor=0.25).fit(X, y)
        unpruned = C45Tree(confidence_factor=None).fit(X, y)
        assert pruned.n_leaves() <= unpruned.n_leaves()

    def test_constant_features_yield_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        clf = C45Tree().fit(X, y)
        assert clf.depth() == 0

    def test_max_candidate_features(self):
        rng = np.random.default_rng(0)
        X = rng.random((80, 20))
        y = (X[:, 0] > 0.5).astype(int)
        clf = C45Tree(max_candidate_features=5).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.5  # still a working tree

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            C45Tree().predict(np.ones((1, 2)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            C45Tree(max_depth=0)
        with pytest.raises(ValueError):
            C45Tree(min_samples_split=1)
        with pytest.raises(ValueError):
            C45Tree(min_samples_leaf=0)

    def test_feature_mismatch_raises(self):
        X = np.random.default_rng(0).random((20, 3))
        y = (X[:, 0] > 0.5).astype(int)
        clf = C45Tree().fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.ones((1, 7)))

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        X = rng.random((100, 5))
        y = (X[:, 1] > 0.4).astype(int)
        a = C45Tree().fit(X, y).predict_proba(X)
        b = C45Tree().fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_max_features_subsamples_candidates(self):
        rng = np.random.default_rng(2)
        X = rng.random((80, 10))
        y = (X[:, 0] > 0.5).astype(int)
        clf = C45Tree(max_features=2, seed=0).fit(X, y)
        assert clf.predict(X).shape == (80,)

    def test_max_features_seeded_refit_is_deterministic(self):
        # fit() draws its max_features subsets from a per-fit RNG
        # seeded with the constructor seed, so refitting the same
        # instance reproduces the identical tree.
        rng = np.random.default_rng(3)
        X = rng.random((120, 8))
        y = (X[:, 2] + X[:, 5] > 1.0).astype(int)
        clf = C45Tree(max_features=3, seed=42)
        first = clf.fit(X, y).to_text()
        second = clf.fit(X, y).to_text()
        assert first == second

    def test_max_features_clone_reproduces_tree(self):
        from repro.ml.base import clone

        rng = np.random.default_rng(4)
        X = rng.random((120, 8))
        y = (X[:, 0] - X[:, 4] > 0.0).astype(int)
        proto = C45Tree(max_features=3, seed=7)
        copy = clone(proto)
        assert copy.get_params() == proto.get_params()
        a = proto.fit(X, y)
        b = copy.fit(X, y)
        assert a.to_text() == b.to_text()
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))


class TestTreeTextExport:
    def test_leaf_only_tree(self):
        X = np.ones((6, 2))
        y = np.array([0, 1, 0, 1, 0, 0])
        text = C45Tree().fit(X, y).to_text()
        assert text.startswith("class 0")

    def test_split_rendering_with_names(self):
        X = np.array([[0.1], [0.2], [0.8], [0.9]] * 3)
        y = np.array([0, 0, 1, 1] * 3)
        tree = C45Tree(min_samples_split=2, min_samples_leaf=1).fit(X, y)
        text = tree.to_text(feature_names=["tfidf_viagra"])
        assert "tfidf_viagra <=" in text
        assert "tfidf_viagra >" in text
        assert "class 0" in text and "class 1" in text

    def test_unfitted_raises(self):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            C45Tree().to_text()
