"""Tests for model and corpus persistence."""

import numpy as np
import pytest

from repro.io import (
    PersistenceError,
    export_corpus,
    import_corpus,
    load_model,
    save_model,
)


class TestModelPersistence:
    def test_roundtrip_classifier(self, tmp_path):
        from repro.ml.naive_bayes import GaussianNB

        X = np.array([[0.0], [1.0], [0.1], [0.9]])
        y = np.array([0, 1, 0, 1])
        model = GaussianNB().fit(X, y)
        path = tmp_path / "model.pkl"
        save_model(model, path)
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_roundtrip_verifier(self, tmp_path, tiny_corpus):
        from repro.core.verifier import PharmacyVerifier

        verifier = PharmacyVerifier(seed=0).fit(tiny_corpus)
        path = tmp_path / "verifier.pkl"
        save_model(verifier, path)
        loaded = load_model(path)
        original = verifier.verify_site(tiny_corpus.sites[0])
        restored = loaded.verify_site(tiny_corpus.sites[0])
        assert restored.predicted_label == original.predicted_label
        assert restored.rank_score == pytest.approx(original.rank_score)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_model(tmp_path / "nope.pkl")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_model(path)

    def test_wrong_payload(self, tmp_path):
        import pickle

        path = tmp_path / "other.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(PersistenceError):
            load_model(path)


class TestCorpusPersistence:
    def test_roundtrip(self, tmp_path, tiny_corpus):
        path = tmp_path / "corpus.jsonl"
        export_corpus(tiny_corpus, path)
        loaded = import_corpus(path)
        assert loaded.name == tiny_corpus.name
        assert loaded.domains == tiny_corpus.domains
        assert np.array_equal(loaded.labels, tiny_corpus.labels)
        # Page content survives byte-for-byte.
        assert (
            loaded.sites[0].merged_text() == tiny_corpus.sites[0].merged_text()
        )
        # Ground-truth flags survive.
        assert [r.is_outlier for r in loaded.records] == [
            r.is_outlier for r in tiny_corpus.records
        ]

    def test_links_preserved(self, tmp_path, tiny_corpus):
        path = tmp_path / "corpus.jsonl"
        export_corpus(tiny_corpus, path)
        loaded = import_corpus(path)
        assert (
            loaded.sites[3].outbound_endpoints()
            == tiny_corpus.sites[3].outbound_endpoints()
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            import_corpus(tmp_path / "nope.jsonl")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else", "version": 9}\n')
        with pytest.raises(PersistenceError):
            import_corpus(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-corpus", "version": 1, "name": "x"}\n'
            "this is not json\n"
        )
        with pytest.raises(PersistenceError):
            import_corpus(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PersistenceError):
            import_corpus(path)
