"""Tests for the out-of-core matrix store (mmap-backed artifacts)."""

from __future__ import annotations

import mmap

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.io import PersistenceError
from repro.perf.store import MatrixStore


@pytest.fixture()
def store(tmp_path):
    return MatrixStore(tmp_path / "store")


def _backing(array: np.ndarray):
    base = array
    while getattr(base, "base", None) is not None:
        base = base.base
    return base


class TestArrays:
    def test_round_trip_bit_equal(self, store):
        array = np.random.default_rng(3).normal(size=(100, 7))
        store.save_array("vectors/rank", array)
        loaded = store.load_array("vectors/rank")
        np.testing.assert_array_equal(loaded, array)
        assert loaded.dtype == array.dtype

    def test_load_is_memory_mapped(self, store):
        store.save_array("big", np.arange(10_000, dtype=np.float64))
        loaded = store.load_array("big")
        assert isinstance(_backing(loaded), mmap.mmap)

    def test_mmap_false_gives_plain_array(self, store):
        store.save_array("plain", np.arange(5))
        loaded = store.load_array("plain", mmap=False)
        assert not isinstance(_backing(loaded), mmap.mmap)

    def test_missing_array_raises(self, store):
        with pytest.raises(PersistenceError):
            store.load_array("absent")
        assert not store.has_array("absent")

    def test_has_array(self, store):
        store.save_array("x", np.zeros(3))
        assert store.has_array("x")


class TestCsr:
    def test_round_trip_bit_equal(self, store):
        matrix = sp.random(
            60, 40, density=0.1, format="csr", random_state=5
        )
        store.save_csr("m", matrix)
        loaded = store.load_csr("m")
        assert loaded.shape == matrix.shape
        np.testing.assert_array_equal(loaded.data, matrix.data)
        np.testing.assert_array_equal(loaded.indices, matrix.indices)
        np.testing.assert_array_equal(loaded.indptr, matrix.indptr)

    def test_loaded_parts_are_memory_mapped(self, store):
        store.save_csr(
            "m", sp.random(50, 50, density=0.2, format="csr", random_state=1)
        )
        loaded = store.load_csr("m")
        assert isinstance(_backing(loaded.data), mmap.mmap)
        assert isinstance(_backing(loaded.indices), mmap.mmap)

    def test_row_slices_match(self, store):
        matrix = sp.random(30, 20, density=0.3, format="csr", random_state=9)
        store.save_csr("m", matrix)
        loaded = store.load_csr("m")
        np.testing.assert_array_equal(
            loaded[5:15, :].toarray(), matrix[5:15, :].toarray()
        )

    def test_spmv_matches(self, store):
        matrix = sp.random(40, 40, density=0.2, format="csr", random_state=2)
        x = np.random.default_rng(0).normal(size=40)
        store.save_csr("m", matrix)
        np.testing.assert_array_equal(store.load_csr("m") @ x, matrix @ x)

    def test_missing_csr_raises(self, store):
        with pytest.raises(PersistenceError):
            store.load_csr("absent")
        assert not store.has_csr("absent")

    def test_truncated_meta_raises(self, store, tmp_path):
        store.save_csr(
            "m", sp.random(10, 10, density=0.2, format="csr", random_state=3)
        )
        meta = next((tmp_path / "store").rglob("csr.json"))
        meta.write_text("{broken")
        with pytest.raises(PersistenceError):
            store.load_csr("m")


class TestMetaAndNames:
    def test_meta_round_trip(self, store):
        store.save_meta("plan", {"n": 3, "offsets": [0, 1, 3]})
        assert store.load_meta("plan") == {"n": 3, "offsets": [0, 1, 3]}

    def test_missing_meta_raises(self, store):
        with pytest.raises(PersistenceError):
            store.load_meta("absent")

    def test_names_lists_artifacts(self, store):
        store.save_array("a/x", np.zeros(2))
        store.save_csr(
            "b/y", sp.random(4, 4, density=0.5, format="csr", random_state=0)
        )
        names = set(store.names())
        assert "a/x" in names
        assert "b/y" in names

    @pytest.mark.parametrize(
        "bad", ["", "../escape", "a//b", "a b", "UPPER/..", "x\x00"]
    )
    def test_rejects_unsafe_names(self, store, bad):
        with pytest.raises(ValidationError):
            store.save_array(bad, np.zeros(1))
