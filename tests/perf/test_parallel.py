"""Tests for the deterministic parallel map."""

import random
from functools import partial

import pytest

from repro.exceptions import ValidationError
from repro.perf.parallel import pmap, resolve_jobs


def seeded_square(item: int, seed: int) -> tuple[int, float]:
    """Deterministic per item: the seed is threaded, never ambient."""
    rng = random.Random(seed * 1_000_003 + item)
    return (item * item, rng.random())


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_jobs(-2)


class TestPmap:
    def test_serial_matches_list_comprehension(self):
        fn = partial(seeded_square, seed=3)
        items = list(range(25))
        assert pmap(fn, items) == [fn(x) for x in items]

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_order_and_values_identical_at_any_worker_count(self, jobs):
        fn = partial(seeded_square, seed=11)
        items = list(range(40))
        serial = [fn(x) for x in items]
        assert pmap(fn, items, jobs=jobs) == serial

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_explicit_chunksize(self, jobs):
        fn = partial(seeded_square, seed=5)
        items = list(range(17))
        assert pmap(fn, items, jobs=jobs, chunksize=2) == [fn(x) for x in items]

    def test_empty_input(self):
        assert pmap(partial(seeded_square, seed=0), []) == []

    def test_single_item_stays_serial(self):
        assert pmap(partial(seeded_square, seed=0), [9]) == [
            seeded_square(9, seed=0)
        ]

    def test_generator_input_materialized_in_order(self):
        fn = partial(seeded_square, seed=2)
        assert pmap(fn, (i for i in range(10)), jobs=2) == [
            fn(x) for x in range(10)
        ]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValidationError):
            pmap(partial(seeded_square, seed=0), [1, 2, 3], jobs=-1)

    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        import repro.perf.parallel as parallel

        def broken_executor(*args, **kwargs):
            raise OSError("no process support in this sandbox")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_executor)
        fn = partial(seeded_square, seed=7)
        items = list(range(12))
        assert parallel.pmap(fn, items, jobs=4) == [fn(x) for x in items]
