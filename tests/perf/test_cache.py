"""Tests for the content-addressed feature cache."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.perf.cache import (
    CODE_VERSION,
    FeatureCache,
    content_fingerprint,
    params_fingerprint,
)


class TestFingerprints:
    def test_content_fingerprint_is_stable(self):
        assert content_fingerprint(["a", "b"]) == content_fingerprint(["a", "b"])

    def test_content_fingerprint_order_sensitive(self):
        assert content_fingerprint(["a", "b"]) != content_fingerprint(["b", "a"])

    def test_length_prefix_prevents_concat_collisions(self):
        assert content_fingerprint(["ab", "c"]) != content_fingerprint(["a", "bc"])

    def test_accepts_bytes(self):
        assert content_fingerprint([b"xy"]) == content_fingerprint(["xy"])

    def test_params_fingerprint_order_insensitive(self):
        assert params_fingerprint({"a": 1, "b": 2}) == params_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_params_fingerprint_rejects_non_json(self):
        with pytest.raises(ValidationError):
            params_fingerprint({"fn": object()})


class TestFeatureCache:
    def test_round_trip(self, tmp_path):
        cache = FeatureCache(tmp_path)
        key = cache.key("ngg", content_fingerprint(["doc"]), {"n": 4})
        value = {"weights": np.arange(5.0)}
        cache.store(key, value)
        loaded = cache.load(key)
        np.testing.assert_array_equal(loaded["weights"], value["weights"])
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_on_absent_key(self, tmp_path):
        cache = FeatureCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.stats.misses == 1

    def test_key_changes_with_params(self, tmp_path):
        cache = FeatureCache(tmp_path)
        content = content_fingerprint(["doc"])
        assert cache.key("ngg", content, {"n": 4}) != cache.key(
            "ngg", content, {"n": 5}
        )

    def test_key_changes_with_kind_and_content(self, tmp_path):
        cache = FeatureCache(tmp_path)
        content = content_fingerprint(["doc"])
        other = content_fingerprint(["doc2"])
        assert cache.key("ngg", content, {}) != cache.key("summary", content, {})
        assert cache.key("ngg", content, {}) != cache.key("ngg", other, {})

    def test_code_version_invalidates(self, tmp_path):
        cache = FeatureCache(tmp_path)
        content = content_fingerprint(["doc"])
        current = cache.key("ngg", content, {})
        bumped = cache.key("ngg", content, {}, code_version=CODE_VERSION + ".next")
        assert current != bumped

    def test_corrupt_entry_is_evicted_and_recomputed(self, tmp_path):
        cache = FeatureCache(tmp_path)
        key = cache.key("ngg", content_fingerprint(["doc"]), {})
        cache.store(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a model file")
        calls = []

        def compute():
            calls.append(1)
            return [4, 5, 6]

        assert cache.get_or_compute(key, compute) == [4, 5, 6]
        assert calls == [1]
        assert cache.stats.evictions == 1
        # The rewritten entry is clean.
        assert cache.load(key) == [4, 5, 6]

    def test_get_or_compute_hits_skip_compute(self, tmp_path):
        cache = FeatureCache(tmp_path)
        key = cache.key("ngg", content_fingerprint(["doc"]), {})
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute(key, compute) == "value"
        assert cache.get_or_compute(key, compute) == "value"
        assert calls == [1]

    def test_cached_equals_fresh_across_instances(self, tmp_path):
        writer = FeatureCache(tmp_path)
        key = writer.key("sim", content_fingerprint(["x"]), {"k": 1})
        fresh = np.linspace(0.0, 1.0, 7)
        writer.store(key, fresh)
        reader = FeatureCache(tmp_path)
        np.testing.assert_array_equal(reader.load(key), fresh)

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert FeatureCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = FeatureCache.from_env()
        assert cache is not None
        assert cache.root == tmp_path


class TestSizeBudget:
    """LRU eviction under a max_bytes budget."""

    @staticmethod
    def _filled(tmp_path, max_bytes, n_entries=8):
        cache = FeatureCache(tmp_path, max_bytes=max_bytes)
        keys = []
        for i in range(n_entries):
            key = cache.key("budget", content_fingerprint([f"doc{i}"]), {})
            cache.store(key, list(range(50)))
            keys.append(key)
        return cache, keys

    @staticmethod
    def _on_disk(tmp_path):
        return sum(p.stat().st_size for p in tmp_path.glob("??/*.pkl"))

    def test_rejects_non_positive_budget(self, tmp_path):
        with pytest.raises(ValidationError):
            FeatureCache(tmp_path, max_bytes=0)
        with pytest.raises(ValidationError):
            FeatureCache(tmp_path, max_bytes=-5)

    def test_unbounded_never_evicts(self, tmp_path):
        cache, keys = self._filled(tmp_path, max_bytes=None)
        assert cache.stats.evictions == 0
        assert all(cache.load(k) is not None for k in keys)

    def test_stays_under_budget(self, tmp_path):
        probe, _ = self._filled(tmp_path / "probe", max_bytes=None, n_entries=1)
        entry_size = self._on_disk(tmp_path / "probe")
        budget = entry_size * 3 + 1
        cache, keys = self._filled(tmp_path / "real", max_bytes=budget)
        assert self._on_disk(tmp_path / "real") <= budget
        assert cache.stats.evictions == 5

    def test_oldest_evicted_newest_kept(self, tmp_path):
        probe, _ = self._filled(tmp_path / "probe", max_bytes=None, n_entries=1)
        budget = self._on_disk(tmp_path / "probe") * 2 + 1
        cache, keys = self._filled(tmp_path / "real", max_bytes=budget)
        # The most recent store is never evicted.
        assert cache.load(keys[-1]) is not None
        assert cache.load(keys[0]) is None  # oldest went first

    def test_just_written_entry_survives_tiny_budget(self, tmp_path):
        cache = FeatureCache(tmp_path, max_bytes=1)
        key = cache.key("huge", content_fingerprint(["doc"]), {})
        cache.store(key, list(range(1000)))
        # Larger than the whole budget, but keep=... spares it.
        assert cache.load(key) is not None

    def test_load_refreshes_recency(self, tmp_path):
        import os as _os
        import time as _time

        cache = FeatureCache(tmp_path, max_bytes=10_000_000)
        key = cache.key("touch", content_fingerprint(["doc"]), {})
        cache.store(key, "v")
        path = cache._path(key)
        old = _time.time() - 3600
        _os.utime(path, (old, old))
        before = path.stat().st_mtime
        cache.load(key)
        assert path.stat().st_mtime > before

    def test_from_env_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        cache = FeatureCache.from_env()
        assert cache is not None and cache.max_bytes == 12345

    def test_from_env_malformed_budget_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ValidationError):
            FeatureCache.from_env()
