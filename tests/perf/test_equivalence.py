"""Property tests: the vectorized fast paths match the reference kernels.

The vectorized :class:`~repro.text.ngram_graph.NGramGraph` and the CSR
power iteration in :mod:`repro.network.pagerank` replaced pure-Python
dict/loop implementations.  These tests pin the equivalence on
randomized, seeded inputs: same edges, same weights, similarities
within 1e-9, ranks within 1e-9.
"""

import pickle
import random
import string

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.network.graph import DirectedGraph
from repro.network.pagerank import pagerank, personalized_pagerank
from repro.perf.reference import (
    ReferenceNGramGraph,
    reference_personalized_pagerank,
)
from repro.text.ngram_graph import ClassGraphModel, NGramGraph

ALPHABET = string.ascii_lowercase[:9] + " "


def random_text(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(ALPHABET) for _ in range(length))


def random_graph(rng: random.Random, n_nodes: int, n_edges: int) -> DirectedGraph:
    graph = DirectedGraph()
    names = [f"d{i}.example" for i in range(n_nodes)]
    for name in names:
        graph.add_node(name)
    for _ in range(n_edges):
        src, dst = rng.sample(names, 2)
        graph.add_edge(src, dst, weight=rng.choice([1.0, 1.0, 2.0, 3.0]))
    return graph


class TestNGramGraphEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_edges_bit_equal(self, seed):
        rng = random.Random(seed)
        text = random_text(rng, rng.randint(0, 400))
        fast = NGramGraph.from_text(text)
        slow = ReferenceNGramGraph.from_text(text)
        assert dict(fast.edges()) == slow.edges()

    @pytest.mark.parametrize("seed", [10, 11, 12])
    @pytest.mark.parametrize("n,window", [(3, 2), (4, 4), (5, 6)])
    def test_edges_bit_equal_across_params(self, seed, n, window):
        rng = random.Random(seed * 100 + n * 10 + window)
        text = random_text(rng, rng.randint(n, 300))
        fast = NGramGraph.from_text(text, n=n, window=window)
        slow = ReferenceNGramGraph.from_text(text, n=n, window=window)
        assert dict(fast.edges()) == slow.edges()

    @pytest.mark.parametrize("seed", [20, 21, 22, 23])
    def test_similarities_match(self, seed):
        rng = random.Random(seed)
        a_text = random_text(rng, rng.randint(50, 300))
        # Overlap the tail so CS/VS are non-trivial.
        b_text = a_text[len(a_text) // 2 :] + random_text(rng, 120)
        fast = NGramGraph.from_text(a_text).similarities(
            NGramGraph.from_text(b_text)
        )
        slow = ReferenceNGramGraph.from_text(a_text).similarities(
            ReferenceNGramGraph.from_text(b_text)
        )
        assert fast.as_tuple() == pytest.approx(slow, abs=1e-9)

    def test_empty_and_short_texts(self):
        for text in ("", "a", "abc", "abcd"):
            fast = NGramGraph.from_text(text)
            slow = ReferenceNGramGraph.from_text(text)
            assert dict(fast.edges()) == slow.edges()

    @pytest.mark.parametrize("seed", [30, 31])
    def test_merged_class_graph_matches(self, seed):
        rng = random.Random(seed)
        texts = [random_text(rng, rng.randint(40, 200)) for _ in range(6)]
        fast = NGramGraph.merged([NGramGraph.from_text(t) for t in texts])
        slow = ReferenceNGramGraph.merged(
            [ReferenceNGramGraph.from_text(t) for t in texts]
        )
        fast_edges = dict(fast.edges())
        slow_edges = slow.edges()
        assert set(fast_edges) == set(slow_edges)
        for key, weight in slow_edges.items():
            assert fast_edges[key] == pytest.approx(weight, abs=1e-12)

    @pytest.mark.parametrize("seed", [40, 41])
    def test_transform_many_matches_per_doc_reference(self, seed):
        rng = random.Random(seed)
        train = [random_text(rng, rng.randint(60, 220)) for _ in range(8)]
        labels = [i % 2 for i in range(8)]
        test = [random_text(rng, rng.randint(60, 220)) for _ in range(5)]

        # fraction=1.0 so the reference merge below sees the same
        # documents (the default subsamples half of each class).
        model = ClassGraphModel(class_sample_fraction=1.0)
        model.fit(train, labels)
        batch = model.transform_many(test)
        single = model.transform(test)
        np.testing.assert_array_equal(batch, single)

        # Reference: per-document dict-loop similarities against a
        # reference merge of the same per-class texts.
        for col, cls in enumerate(model.classes):
            class_graph = ReferenceNGramGraph.merged(
                [
                    ReferenceNGramGraph.from_text(t)
                    for t, y in zip(train, labels)
                    if y == cls
                ]
            )
            for row, text in enumerate(test):
                expected = ReferenceNGramGraph.from_text(text).similarities(
                    class_graph
                )
                got = batch[row, col * 4 : col * 4 + 4]
                assert tuple(got) == pytest.approx(expected, abs=1e-9)

    def test_pickle_round_trip_preserves_edges(self):
        graph = NGramGraph.from_text("the quick brown fox jumps over the dog")
        clone = pickle.loads(pickle.dumps(graph))
        assert dict(clone.edges()) == dict(graph.edges())
        assert clone.similarities(graph).as_tuple() == pytest.approx(
            (1.0, 1.0, 1.0, 1.0), abs=1e-12
        )


class TestPageRankEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_graphs_match(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(5, 40), rng.randint(4, 120))
        fast = personalized_pagerank(graph)
        slow = reference_personalized_pagerank(graph)
        assert set(fast) == set(slow)
        for node, score in slow.items():
            assert fast[node] == pytest.approx(score, abs=1e-9)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_personalized_with_dangling_and_islands(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, 20, 25)
        graph.add_node("island.example")  # no edges at all
        graph.add_node("dangling.example")
        graph.add_edge("d0.example", "dangling.example")
        teleport = {"d0.example": 2.0, "d3.example": 1.0}
        fast = personalized_pagerank(graph, teleport=teleport)
        slow = reference_personalized_pagerank(graph, teleport=teleport)
        for node, score in slow.items():
            assert fast[node] == pytest.approx(score, abs=1e-9)

    def test_pagerank_wrapper_matches(self):
        rng = random.Random(99)
        graph = random_graph(rng, 15, 30)
        fast = pagerank(graph)
        slow = reference_personalized_pagerank(graph)
        for node, score in slow.items():
            assert fast[node] == pytest.approx(score, abs=1e-9)

    def test_negative_teleport_rejected_by_both(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        with pytest.raises(ValidationError):
            personalized_pagerank(graph, teleport={"a": -0.5})
        with pytest.raises(ValidationError):
            reference_personalized_pagerank(graph, teleport={"a": -0.5})
