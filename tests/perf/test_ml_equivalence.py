"""Property tests: the vectorized ML kernels match the reference loops.

The mini-batch Pegasos SVM, the C4.5 split search, the ensemble
hill-climb, SMOTE's neighbour search, and the batched TF-IDF transform
all replaced per-sample/per-candidate Python loops (kept in
:mod:`repro.perf.reference` as the equivalence oracle).  These tests
pin the equivalence on randomized, seeded inputs: bit-equal where the
arithmetic is identical, within 1e-9 where summation order differs.
"""

import random

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ml.ensemble import EnsembleSelection, LibraryModel
from repro.ml.metrics import auc_roc, auc_roc_many
from repro.ml.sampling import SMOTE
from repro.ml.base import ensure_dense
from repro.ml.svm import pegasos_weights
from repro.ml.tree import C45Tree
from repro.perf.reference import (
    ReferenceC45Tree,
    ReferenceSMOTE,
    reference_ensemble_select,
    reference_ensure_dense,
    reference_pegasos_fit,
    reference_tfidf_transform,
)
from repro.text.term_vector import TfidfVectorizer

VOCAB = [f"term{i}" for i in range(40)]


def random_margin_problem(seed, n_samples=60, n_features=25, sparse=False):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    signs = np.where(rng.random(n_samples) < 0.4, -1.0, 1.0)
    X += 0.5 * signs[:, None]
    sample_weight = rng.choice([0.5, 1.0, 2.0], size=n_samples)
    if sparse:
        X[rng.random(X.shape) < 0.6] = 0.0
        return sp.csr_matrix(X), signs, sample_weight
    return X, signs, sample_weight


def random_documents(rng, n_docs, min_len=5, max_len=40):
    return [
        [rng.choice(VOCAB) for _ in range(rng.randint(min_len, max_len))]
        for _ in range(n_docs)
    ]


class TestPegasosEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch_size", [1, 7, 16])
    def test_dense_matches_reference(self, seed, batch_size):
        X, signs, sw = random_margin_problem(seed)
        kwargs = dict(
            lam=1e-3, n_epochs=4, seed=seed, batch_size=batch_size
        )
        fast = pegasos_weights(X, signs, sw, **kwargs)
        slow = reference_pegasos_fit(X, signs, sw, **kwargs)
        np.testing.assert_allclose(fast, slow, atol=1e-9)

    @pytest.mark.parametrize("seed", [3, 4])
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_sparse_matches_reference(self, seed, batch_size):
        X, signs, sw = random_margin_problem(seed, sparse=True)
        kwargs = dict(
            lam=1e-3, n_epochs=4, seed=seed, batch_size=batch_size
        )
        fast = pegasos_weights(X, signs, sw, **kwargs)
        slow = reference_pegasos_fit(X, signs, sw, **kwargs)
        np.testing.assert_allclose(fast, slow, atol=1e-9)

    def test_batch_size_one_dense_is_bit_equal(self):
        # With one sample per step the fast path performs the exact
        # same scalar operations in the same order as the loop.
        X, signs, sw = random_margin_problem(7)
        kwargs = dict(lam=1e-3, n_epochs=3, seed=5, batch_size=1)
        fast = pegasos_weights(X, signs, sw, **kwargs)
        slow = reference_pegasos_fit(X, signs, sw, **kwargs)
        np.testing.assert_array_equal(fast, slow)

    def test_sparse_and_dense_agree(self):
        X, signs, sw = random_margin_problem(11)
        kwargs = dict(lam=1e-3, n_epochs=3, seed=0, batch_size=8)
        dense = pegasos_weights(X, signs, sw, **kwargs)
        sparse = pegasos_weights(sp.csr_matrix(X), signs, sw, **kwargs)
        np.testing.assert_allclose(sparse, dense, atol=1e-9)


class TestC45Equivalence:
    @staticmethod
    def _random_problem(seed, n_samples=120, n_features=12):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n_samples, n_features))
        # Quantize some columns so duplicate values (and therefore
        # skipped split candidates) actually occur.
        X[:, ::3] = np.round(X[:, ::3], 1)
        y = (X[:, 0] + 0.5 * X[:, 1] - 0.25 * X[:, 2] > 0).astype(int)
        return X, y

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_default_params_identical_tree(self, seed):
        X, y = self._random_problem(seed)
        fast = C45Tree().fit(X, y)
        slow = ReferenceC45Tree().fit(X, y)
        assert fast.to_text() == slow.to_text()
        np.testing.assert_array_equal(fast.predict(X), slow.predict(X))
        np.testing.assert_array_equal(
            fast.predict_proba(X), slow.predict_proba(X)
        )

    @pytest.mark.parametrize("seed", [4, 5])
    @pytest.mark.parametrize(
        "params",
        [
            {"max_candidate_features": 6},
            {"max_features": 4, "seed": 13},
            {"max_depth": 3, "min_samples_leaf": 5},
            {"confidence_factor": None},
        ],
    )
    def test_hyperparameter_grid_identical_tree(self, seed, params):
        X, y = self._random_problem(seed)
        fast = C45Tree(**params).fit(X, y)
        slow = ReferenceC45Tree(**params).fit(X, y)
        assert fast.to_text() == slow.to_text()
        np.testing.assert_array_equal(
            fast.predict_proba(X), slow.predict_proba(X)
        )

    def test_three_class_problem(self):
        rng = np.random.default_rng(17)
        X = rng.normal(size=(150, 8))
        y = np.digitize(X[:, 0] + 0.3 * X[:, 1], [-0.5, 0.5])
        fast = C45Tree().fit(X, y)
        slow = ReferenceC45Tree().fit(X, y)
        assert fast.to_text() == slow.to_text()
        np.testing.assert_array_equal(
            fast.predict_proba(X), slow.predict_proba(X)
        )


class TestEnsembleEquivalence:
    @staticmethod
    def _random_library(seed, n_models=10, n_instances=80):
        rng = np.random.default_rng(seed)
        y = (rng.random(n_instances) < 0.4).astype(int)
        predictions = {}
        for m in range(n_models):
            p = np.clip(
                0.6 * y + 0.2 + rng.normal(scale=0.3, size=n_instances),
                0.0,
                1.0,
            )
            predictions[f"model{m:02d}"] = np.column_stack([1.0 - p, p])
        return predictions, y

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bag_matches_reference(self, seed):
        predictions, y = self._random_library(seed)
        library = [
            LibraryModel(name, lambda idx, p=proba: p[idx])
            for name, proba in predictions.items()
        ]
        selector = EnsembleSelection()
        selector.fit(library, np.arange(y.size), y)
        expected = reference_ensemble_select(predictions, y)
        assert selector.bag_counts == expected

    @pytest.mark.parametrize("n_init,max_rounds", [(1, 5), (3, 12), (2, 0)])
    def test_bag_matches_reference_across_knobs(self, n_init, max_rounds):
        predictions, y = self._random_library(9)
        library = [
            LibraryModel(name, lambda idx, p=proba: p[idx])
            for name, proba in predictions.items()
        ]
        selector = EnsembleSelection(n_init=n_init, max_rounds=max_rounds)
        selector.fit(library, np.arange(y.size), y)
        expected = reference_ensemble_select(
            predictions, y, n_init=n_init, max_rounds=max_rounds
        )
        assert selector.bag_counts == expected

    def test_custom_metric_matches_reference(self):
        predictions, y = self._random_library(12)
        library = [
            LibraryModel(name, lambda idx, p=proba: p[idx])
            for name, proba in predictions.items()
        ]

        def neg_brier(y_true, scores):
            return -float(np.mean((scores - y_true) ** 2))

        selector = EnsembleSelection(metric=neg_brier)
        selector.fit(library, np.arange(y.size), y)
        expected = reference_ensemble_select(predictions, y, metric=neg_brier)
        assert selector.bag_counts == expected


class TestSMOTEEquivalence:
    @staticmethod
    def _random_imbalanced(seed, n_minority=40, n_features=12):
        rng = np.random.default_rng(seed)
        X_min = rng.normal(size=(n_minority, n_features))
        X_maj = rng.normal(loc=2.0, size=(3 * n_minority, n_features))
        X = np.vstack([X_min, X_maj])
        y = np.concatenate(
            [np.zeros(n_minority, dtype=int), np.ones(3 * n_minority, dtype=int)]
        )
        return X, y

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("chunk_size", [1, 7, 512])
    def test_bit_equal_at_any_chunk_size(self, seed, chunk_size):
        X, y = self._random_imbalanced(seed)
        fast_X, fast_y = SMOTE(seed=seed, chunk_size=chunk_size).fit_resample(
            X, y
        )
        slow_X, slow_y = ReferenceSMOTE(seed=seed).fit_resample(X, y)
        np.testing.assert_array_equal(fast_X, slow_X)
        np.testing.assert_array_equal(fast_y, slow_y)

    def test_small_block_and_custom_k(self):
        X, y = self._random_imbalanced(5, n_minority=4)
        fast = SMOTE(k_neighbors=2, seed=3).fit_resample(X, y)
        slow = ReferenceSMOTE(k_neighbors=2, seed=3).fit_resample(X, y)
        np.testing.assert_array_equal(fast[0], slow[0])
        np.testing.assert_array_equal(fast[1], slow[1])

    def test_sparse_input_matches_reference(self):
        X, y = self._random_imbalanced(8)
        X[np.abs(X) < 0.8] = 0.0
        fast = SMOTE(seed=1).fit_resample(sp.csr_matrix(X), y)
        slow = ReferenceSMOTE(seed=1).fit_resample(sp.csr_matrix(X), y)
        np.testing.assert_array_equal(fast[0], slow[0])
        np.testing.assert_array_equal(fast[1], slow[1])


class TestTfidfEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "sublinear_tf,normalize",
        [(False, True), (True, True), (False, False), (True, False)],
    )
    def test_transform_bit_identical(self, seed, sublinear_tf, normalize):
        rng = random.Random(seed)
        train = random_documents(rng, 20)
        test = random_documents(rng, 12)
        # Unseen terms must be skipped identically.
        test[0] = test[0] + ["never-seen-term"]
        test[1] = []
        vectorizer = TfidfVectorizer(
            sublinear_tf=sublinear_tf, normalize=normalize
        )
        vectorizer.fit(train)
        fast = vectorizer.transform(test)
        slow = reference_tfidf_transform(vectorizer, test)
        assert fast.shape == slow.shape
        np.testing.assert_array_equal(fast.indptr, slow.indptr)
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_array_equal(fast.data, slow.data)


class TestAucManyEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_looped_auc(self, seed):
        rng = np.random.default_rng(seed)
        y = (rng.random(70) < 0.35).astype(int)
        scores = rng.random(size=(9, 70))
        # Force heavy ties in some rows (tie handling is the hard part).
        scores[0] = np.round(scores[0], 1)
        scores[1] = 0.5
        scores[2, :] = y  # perfect ranking
        batched = auc_roc_many(y, scores)
        looped = np.array([auc_roc(y, row) for row in scores])
        np.testing.assert_allclose(batched, looped, atol=1e-9)


class TestEnsureDenseEquivalence:
    """The dtype-aware densify must match the np.matrix-routed
    reference bit-for-bit on every dtype branch it dispatches on."""

    @pytest.mark.parametrize(
        "dtype",
        [np.float64, np.float32, np.int64, np.int32, np.bool_],
    )
    def test_sparse_input_matches_reference(self, dtype):
        base = sp.random(40, 17, density=0.2, format="csr", random_state=7)
        X = (base * 10).astype(dtype)
        fast = ensure_dense(X)
        slow = reference_ensure_dense(X)
        assert fast.dtype == slow.dtype == np.float64
        np.testing.assert_array_equal(fast, slow)

    def test_dense_and_1d_inputs_match_reference(self):
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(12, 4))
        np.testing.assert_array_equal(
            ensure_dense(dense), reference_ensure_dense(dense)
        )
        column = rng.normal(size=9)
        fast = ensure_dense(column)
        assert fast.shape == (9, 1)
        np.testing.assert_array_equal(fast, reference_ensure_dense(column))
