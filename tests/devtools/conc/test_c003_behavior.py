"""Behavioral proof for C003: the fixture's hazards are real.

The concpkg package is not just parsed — it runs.  The unseeded
worker's output changes between identical invocations, while the
seeded near-miss worker is bit-stable.  This is the ground truth the
static C003 rule encodes.
"""

from __future__ import annotations

import sys

import pytest

from tests.devtools.conc.conftest import CONCPKG


@pytest.fixture(scope="module")
def driver():
    fixtures_dir = str(CONCPKG.parent)
    if fixtures_dir not in sys.path:
        sys.path.insert(0, fixtures_dir)
    from concpkg import driver as mod

    return mod


def test_unseeded_worker_diverges_between_runs(driver):
    items = list(range(6))
    first = driver.run_all(items, jobs=2)
    second = driver.run_all(items, jobs=2)
    assert first != second, "unseeded default_rng() should not be bit-stable"


def test_seeded_worker_is_bit_stable(driver):
    items = list(range(6))
    first = driver.run_seeded(items, jobs=2)
    second = driver.run_seeded(items, jobs=2)
    assert first == second


def test_seeded_worker_matches_serial_execution(driver):
    from concpkg.workers import work_seeded

    items = list(range(6))
    assert driver.run_seeded(items, jobs=2) == [work_seeded(i) for i in items]
