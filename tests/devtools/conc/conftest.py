"""Shared fixtures: the concpkg fixture package, analyzed once."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.conc.analyzer import conc_findings
from repro.devtools.flow.analysis import analyze_project

CONCPKG = Path(__file__).parent.parent / "fixtures" / "concpkg"
REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="session")
def conc_analysis():
    return analyze_project([str(CONCPKG)])


@pytest.fixture(scope="session")
def concpkg_findings(conc_analysis):
    findings, load_errors = conc_findings(conc_analysis)
    assert load_errors == []
    return findings
