"""Rule-level assertions against the seeded concpkg fixture package.

Every rule C001–C006 has at least one true positive *and* one
near-miss in the package; the suite pins both directions so analyzer
changes cannot silently widen or narrow a rule.
"""

from __future__ import annotations


def _by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def _lines(findings, rule, filename):
    return sorted(
        f.line for f in _by_rule(findings, rule) if f.path.endswith(filename)
    )


class TestTruePositives:
    def test_c001_shared_state_mutations(self, concpkg_findings):
        found = _by_rule(concpkg_findings, "C001")
        assert _lines(concpkg_findings, "C001", "workers.py") == [41, 45]
        assert all("_RESULT_CACHE" in f.message for f in found)

    def test_c002_global_and_class_attr_writes(self, concpkg_findings):
        assert _lines(concpkg_findings, "C002", "workers.py") == [60, 70]
        messages = " ".join(f.message for f in _by_rule(concpkg_findings, "C002"))
        assert "_COUNTER" in messages
        assert "RunFlags.verbose" in messages

    def test_c003_unseeded_rng_in_worker(self, concpkg_findings):
        (finding,) = _by_rule(concpkg_findings, "C003")
        assert finding.path.endswith("workers.py")
        assert finding.line == 84
        assert "[D001]" in finding.message

    def test_c004_raw_write_in_worker(self, concpkg_findings):
        (finding,) = _by_rule(concpkg_findings, "C004")
        assert finding.path.endswith("workers.py")
        assert finding.line == 92

    def test_c005_incomplete_cache_keys(self, concpkg_findings):
        found = _by_rule(concpkg_findings, "C005")
        assert _lines(concpkg_findings, "C005", "caching.py") == [46, 56, 88]
        messages = " ".join(f.message for f in found)
        assert "limit" in messages and "parameter" in messages
        assert "_SUFFIX" in messages and "module global" in messages

    def test_c005_temporal_field_omitted(self, concpkg_findings):
        # EpochSummaries.stale reads self._epoch but never keys it.
        (finding,) = [
            f
            for f in _by_rule(concpkg_findings, "C005")
            if "temporal field" in f.message
        ]
        assert finding.line == 88
        assert "'epoch'" in finding.message
        assert "EpochSummaries.stale" in finding.message

    def test_c006_fork_unsafe_submissions(self, concpkg_findings):
        assert _lines(concpkg_findings, "C006", "driver.py") == [30, 37, 41]
        messages = " ".join(f.message for f in _by_rule(concpkg_findings, "C006"))
        assert "lambda" in messages
        assert "helper" in messages
        assert "lock" in messages

    def test_exact_finding_count(self, concpkg_findings):
        assert len(concpkg_findings) == 12


class TestNearMisses:
    def test_unreached_mutator_not_flagged(self, concpkg_findings):
        # untouched_mutator (TALLY.append) and rebind_unreached never run
        # in a worker, and export_report's raw write is unreachable too.
        lines = {
            (f.path.rsplit("/", 1)[-1], f.line) for f in concpkg_findings
        }
        for miss in (("workers.py", 50), ("workers.py", 66), ("workers.py", 108)):
            assert miss not in lines

    def test_reads_of_forked_state_not_flagged(self, concpkg_findings):
        assert not any(
            "_CONFIG" in f.message for f in concpkg_findings
        ), "read-only access to module state must stay legal"

    def test_seeded_rng_not_flagged(self, concpkg_findings):
        assert not any(
            f.rule == "C003" and f.line == 88 for f in concpkg_findings
        )

    def test_instance_attr_write_not_flagged(self, concpkg_findings):
        assert not any(
            "Session" in f.message or "mode" in f.message
            for f in concpkg_findings
            if f.rule == "C002"
        )

    def test_read_mode_open_not_flagged(self, concpkg_findings):
        assert not any(
            f.rule == "C004" and f.line != 92 for f in concpkg_findings
        )

    def test_partial_of_module_function_not_flagged(self, concpkg_findings):
        # run_all / run_scaled / submit_all ship picklable callables.
        assert not any(
            f.rule == "C006" and f.line not in (30, 37, 41)
            for f in concpkg_findings
        )

    def test_fully_keyed_cache_site_not_flagged(self, concpkg_findings):
        # summarize_keyed covers every compute input (jobs is a knob),
        # and EpochSummaries.keyed carries the epoch in its params.
        assert not any(
            f.rule == "C005" and f.line not in (46, 56, 88)
            for f in concpkg_findings
        )


class TestSuppression:
    def test_suppression_comment_is_honored(self, concpkg_findings):
        # dump_suppressed carries `# repro-conc: disable=C004` on its
        # open() line and is worker-reachable via work().
        assert not any(f.line == 97 for f in concpkg_findings)
