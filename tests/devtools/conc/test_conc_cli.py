"""CLI behaviors: baseline round-trip, SARIF shape, exit codes, and the
repo-tree regression gate (src/repro must stay conc-clean)."""

from __future__ import annotations

import json

import pytest

from repro.devtools.conc.cli import main
from repro.devtools.conc.registry import CONC_RULES

from tests.devtools.conc.conftest import CONCPKG, REPO_ROOT


class TestExitCodes:
    def test_fixture_package_fails(self, capsys):
        assert main([str(CONCPKG), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "found 12 new finding(s)" in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["does/not/exist"]) == 2

    def test_file_path_is_usage_error(self, tmp_path):
        target = tmp_path / "single.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in CONC_RULES:
            assert rule_id in out


class TestBaselineRoundTrip:
    def test_write_then_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "conc-baseline.json"
        assert (
            main(
                [
                    str(CONCPKG),
                    "--write-baseline",
                    "--baseline",
                    str(baseline),
                    "--justification",
                    "seeded fixture hazards",
                ]
            )
            == 0
        )
        payload = json.loads(baseline.read_text())
        assert len(payload["findings"]) == 12
        assert all(
            e["justification"] == "seeded fixture hazards"
            for e in payload["findings"]
        )
        # Same tree against the fresh baseline: everything grandfathered.
        capsys.readouterr()
        assert main([str(CONCPKG), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(12 baselined finding(s) suppressed)" in out
        assert "clean" in out


class TestSarif:
    def test_sarif_document_shape(self, capsys):
        assert main([str(CONCPKG), "--no-baseline", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-conc"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(CONC_RULES) <= rule_ids
        assert {r["ruleId"] for r in run["results"]} == set(CONC_RULES)
        for result in run["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert "reproFingerprint/v1" in result["partialFingerprints"]

    def test_github_format(self, capsys):
        main([str(CONCPKG), "--no-baseline", "--format", "github"])
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "C001" in out


class TestRepoTreeIsClean:
    def test_src_repro_has_no_unbaselined_findings(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro", "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out


class TestUmbrella:
    @pytest.fixture()
    def analyze_main(self):
        from repro.devtools.analyze import main as _main

        return _main

    def test_repo_tree_clean_and_merged_sarif(
        self, analyze_main, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(REPO_ROOT)
        sarif_path = tmp_path / "analysis.sarif"
        assert analyze_main(["src/repro", "--sarif", str(sarif_path)]) == 0
        out = capsys.readouterr().out
        for tool in ("repro-lint", "repro-flow", "repro-conc", "repro-hot"):
            assert f"{tool}: clean" in out
        doc = json.loads(sarif_path.read_text())
        assert [run["tool"]["driver"]["name"] for run in doc["runs"]] == [
            "repro-lint",
            "repro-flow",
            "repro-conc",
            "repro-hot",
        ]
        assert all(run["results"] == [] for run in doc["runs"])

    def test_fixture_tree_fails_without_baselines(
        self, analyze_main, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)  # no baseline files here
        status = analyze_main([str(CONCPKG), "--no-baseline"])
        assert status == 1
        out = capsys.readouterr().out
        assert "repro-conc: 12 new finding(s)" in out
