"""Per-rule unit tests against positive and negative fixtures."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import lint_paths
from repro.devtools.rules import RULES, infer_layer, parse_module

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"

RULE_FIXTURES = {
    "R001": VIOLATIONS / "r001_exceptions.py",
    "R002": VIOLATIONS / "r002_randomness.py",
    "R003": VIOLATIONS / "text" / "r003_layering.py",
    "R004": VIOLATIONS / "r004_mutable_default.py",
    "R005": VIOLATIONS / "r005_print.py",
    "R006": VIOLATIONS / "r006_float_eq.py",
    "R007": VIOLATIONS / "r007_api.py",
    "R008": VIOLATIONS / "web" / "r008_except.py",
    "R009": VIOLATIONS / "r009_mutated_default.py",
}


def _run_rule(rule_id: str, path: str, source: str):
    (rule,) = [r for r in RULES if r.rule_id == rule_id]
    return rule.run(parse_module(path, source))


class TestPositiveFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_triggers_its_rule(self, rule_id):
        path = RULE_FIXTURES[rule_id]
        findings = _run_rule(rule_id, str(path), path.read_text())
        assert findings, f"{path} should trigger {rule_id}"
        assert all(f.rule == rule_id for f in findings)

    def test_every_rule_has_a_fixture(self):
        assert set(RULE_FIXTURES) == {rule.rule_id for rule in RULES}

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_triggers_no_other_rule(self, rule_id):
        findings = lint_paths([str(RULE_FIXTURES[rule_id])])
        assert {f.rule for f in findings} == {rule_id}


class TestNegativeFixture:
    def test_clean_module_has_no_findings(self):
        findings = lint_paths([str(FIXTURES / "clean.py")])
        assert findings == []


class TestR001:
    def test_flags_bare_name_reraise_style(self):
        source = "def f() -> None:\n    raise RuntimeError\n"
        assert len(_run_rule("R001", "x.py", source)) == 1

    def test_allows_library_exceptions(self):
        source = (
            "from repro.exceptions import GraphError\n"
            "def f() -> None:\n    raise GraphError('boom')\n"
        )
        assert _run_rule("R001", "x.py", source) == []

    def test_bare_reraise_is_fine(self):
        source = (
            "def f() -> None:\n"
            "    try:\n        pass\n"
            "    except Exception:\n        raise\n"
        )
        assert _run_rule("R001", "x.py", source) == []

    def test_valueerror_marked_fixable(self):
        source = "def f() -> None:\n    raise ValueError('x')\n"
        (finding,) = _run_rule("R001", "x.py", source)
        assert finding.fixable


class TestR002:
    def test_flags_stdlib_random_import(self):
        assert _run_rule("R002", "x.py", "import random\n")

    def test_flags_np_random_seed(self):
        source = "import numpy as np\nnp.random.seed(0)\n"
        assert _run_rule("R002", "x.py", source)

    def test_allows_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert _run_rule("R002", "x.py", source) == []

    def test_synthesis_module_is_exempt(self):
        path = "src/repro/data/synthesis.py"
        assert _run_rule("R002", path, "import random\n") == []


class TestR003:
    def test_layer_inference(self):
        assert infer_layer("src/repro/text/term_vector.py") == "text"
        assert infer_layer("src/repro/cli.py") == "cli"
        assert infer_layer("src/repro/io.py") is None
        assert infer_layer("src/repro/devtools/lint.py") == "devtools"

    def test_cli_layer_is_unrestricted(self):
        source = "from repro.experiments import tables\n"
        assert _run_rule("R003", "src/repro/cli.py", source) == []

    def test_core_cannot_import_experiments(self):
        source = "from repro.experiments import tables\n"
        assert _run_rule("R003", "src/repro/core/verifier.py", source)

    def test_from_repro_import_submodule(self):
        source = "from repro import experiments\n"
        assert _run_rule("R003", "src/repro/ml/base.py", source)

    def test_lower_layer_may_import_sibling(self):
        source = "from repro.network.graph import DirectedGraph\n"
        assert _run_rule("R003", "src/repro/network/pagerank.py", source) == []


class TestR004:
    def test_kwonly_mutable_default(self):
        source = "def f(*, cache: dict = {}) -> None:\n    '''doc'''\n"
        assert _run_rule("R004", "x.py", source)

    def test_none_default_is_fine(self):
        source = "def f(cache: dict | None = None) -> None:\n    '''doc'''\n"
        assert _run_rule("R004", "x.py", source) == []


class TestR009:
    def test_mutated_default_is_flagged_and_fixable(self):
        source = "def f(x, acc=[]):\n    '''doc'''\n    acc.append(x)\n"
        (finding,) = _run_rule("R009", "x.py", source)
        assert finding.fixable

    def test_read_only_default_is_fine(self):
        source = "def f(x, acc=[]):\n    '''doc'''\n    return acc + [x]\n"
        assert _run_rule("R009", "x.py", source) == []

    def test_subscript_store_counts_as_mutation(self):
        source = "def f(k, cache={}):\n    '''doc'''\n    cache[k] = 1\n"
        assert _run_rule("R009", "x.py", source)

    def test_nested_function_mutation_is_not_attributed(self):
        source = (
            "def f(x, acc=[]):\n"
            "    '''doc'''\n"
            "    def g(acc=[]):\n"
            "        acc.append(x)\n"
            "    return g\n"
        )
        findings = _run_rule("R009", "x.py", source)
        # Only the inner default is mutated in its own scope.
        assert [f.symbol for f in findings] == ["f"]


class TestR005:
    def test_cli_module_is_exempt(self):
        assert _run_rule("R005", "src/repro/cli.py", "print('hi')\n") == []


class TestR006:
    def test_score_name_vs_int_literal(self):
        source = "def f(score: float) -> bool:\n    return score != 0\n"
        assert _run_rule("R006", "x.py", source)

    def test_plain_int_comparison_is_fine(self):
        source = "def f(count: int) -> bool:\n    return count == 0\n"
        assert _run_rule("R006", "x.py", source) == []

    def test_tolerance_comparison_is_fine(self):
        source = "def f(p: float) -> bool:\n    return abs(p - 1.0) < 1e-9\n"
        assert _run_rule("R006", "x.py", source) == []


class TestR007:
    def test_private_functions_skipped(self):
        assert _run_rule("R007", "x.py", "def _helper(a):\n    return a\n") == []

    def test_nested_defs_skipped(self):
        source = (
            "def outer() -> int:\n"
            "    '''doc'''\n"
            "    def inner(a):\n        return a\n"
            "    return inner(1)\n"
        )
        assert _run_rule("R007", "x.py", source) == []

    def test_method_of_public_class_checked(self):
        source = (
            "class Thing:\n"
            "    '''doc'''\n"
            "    def go(self, x):\n        return x\n"
        )
        (finding,) = _run_rule("R007", "x.py", source)
        assert "Thing.go" in finding.message


class TestR008:
    def test_flags_except_exception(self):
        source = (
            "def f() -> int:\n"
            "    '''doc'''\n"
            "    try:\n        return 1\n"
            "    except Exception:\n        return 0\n"
        )
        (finding,) = _run_rule("R008", "x.py", source)
        assert "except Exception" in finding.message

    def test_flags_bare_except(self):
        source = (
            "def f() -> int:\n"
            "    '''doc'''\n"
            "    try:\n        return 1\n"
            "    except:\n        return 0\n"
        )
        assert _run_rule("R008", "x.py", source)

    def test_reraising_handler_is_exempt(self):
        source = (
            "def f() -> None:\n"
            "    '''doc'''\n"
            "    try:\n        pass\n"
            "    except BaseException:\n"
            "        cleanup()\n        raise\n"
        )
        assert _run_rule("R008", "x.py", source) == []

    def test_specific_handler_is_fine(self):
        source = (
            "def f(value: str) -> int:\n"
            "    '''doc'''\n"
            "    try:\n        return int(value)\n"
            "    except ValueError:\n        return 0\n"
        )
        assert _run_rule("R008", "x.py", source) == []

    def test_broad_tuple_member_flagged(self):
        source = (
            "def f() -> int:\n"
            "    '''doc'''\n"
            "    try:\n        return 1\n"
            "    except (KeyError, Exception):\n        return 0\n"
        )
        assert _run_rule("R008", "x.py", source)

    def test_devtools_layer_is_exempt(self):
        source = (
            "def f() -> int:\n"
            "    '''doc'''\n"
            "    try:\n        return 1\n"
            "    except Exception:\n        return 0\n"
        )
        assert _run_rule("R008", "src/repro/devtools/lint.py", source) == []


class TestSuppressions:
    def test_line_suppression(self):
        source = (
            "def f() -> None:\n"
            "    '''doc'''\n"
            "    raise ValueError('x')  # repro-lint: disable=R001\n"
        )
        assert _run_rule("R001", "x.py", source) == []

    def test_file_suppression(self):
        source = (
            "# repro-lint: disable-file=R005\n"
            "def f() -> None:\n"
            "    '''doc'''\n"
            "    print('a')\n"
            "    print('b')\n"
        )
        assert _run_rule("R005", "x.py", source) == []

    def test_unrelated_suppression_does_not_hide(self):
        source = "raise ValueError('x')  # repro-lint: disable=R005\n"
        assert _run_rule("R001", "x.py", source)
