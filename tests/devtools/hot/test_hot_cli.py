"""CLI behaviors: baseline round-trip, SARIF shape, exit codes, the
--fix round trip, and the repo-tree regression gate (src/repro must
stay hot-clean)."""

from __future__ import annotations

import json
import shutil

from repro.devtools.hot.cli import main
from repro.devtools.hot.registry import HOT_RULES

from tests.devtools.hot.conftest import HOTPKG, REPO_ROOT


class TestExitCodes:
    def test_fixture_package_fails(self, capsys):
        assert main([str(HOTPKG), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "found 10 new finding(s)" in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["does/not/exist"]) == 2

    def test_file_path_is_usage_error(self, tmp_path):
        target = tmp_path / "single.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in HOT_RULES:
            assert rule_id in out


class TestBaselineRoundTrip:
    def test_write_then_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "hot-baseline.json"
        assert (
            main(
                [
                    str(HOTPKG),
                    "--write-baseline",
                    "--baseline",
                    str(baseline),
                    "--justification",
                    "seeded fixture anti-patterns",
                ]
            )
            == 0
        )
        payload = json.loads(baseline.read_text())
        assert len(payload["findings"]) == 10
        assert all(
            e["justification"] == "seeded fixture anti-patterns"
            for e in payload["findings"]
        )
        # Same tree against the fresh baseline: everything grandfathered.
        capsys.readouterr()
        assert main([str(HOTPKG), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(10 baselined finding(s) suppressed)" in out
        assert "clean" in out


class TestSarif:
    def test_sarif_document_shape(self, capsys):
        assert main([str(HOTPKG), "--no-baseline", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-hot"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(HOT_RULES) <= rule_ids
        assert {r["ruleId"] for r in run["results"]} == set(HOT_RULES)
        for result in run["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert "reproFingerprint/v1" in result["partialFingerprints"]

    def test_github_format(self, capsys):
        main([str(HOTPKG), "--no-baseline", "--format", "github"])
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "P007" in out


class TestEntryOverride:
    def test_extra_entry_widens_the_hot_set(self, capsys):
        # Registering utils.cold_densify as an entry turns its todense()
        # into an eleventh finding.
        assert (
            main(
                [
                    str(HOTPKG),
                    "--no-baseline",
                    "--entry",
                    "utils.cold_densify",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "found 11 new finding(s)" in out
        assert "utils.py:70" in out


class TestFix:
    def test_fix_round_trip(self, tmp_path, capsys):
        work = tmp_path / "hotpkg"
        shutil.copytree(HOTPKG, work)
        assert main([str(work), "--no-baseline", "--fix"]) == 1
        out = capsys.readouterr().out
        assert "--fix rewrote 1 file(s)" in out
        rewritten = (work / "utils.py").read_text()
        assert '{"viagra", "cialis", "xanax"}' in rewritten
        assert '["viagra", "cialis", "xanax"]' not in rewritten
        # Re-analysis: the P003 is gone, everything else is untouched.
        capsys.readouterr()
        assert main([str(work), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "found 9 new finding(s)" in out
        assert "P003" not in out

    def test_fix_is_idempotent(self, tmp_path, capsys):
        work = tmp_path / "hotpkg"
        shutil.copytree(HOTPKG, work)
        main([str(work), "--no-baseline", "--fix"])
        first = (work / "utils.py").read_text()
        capsys.readouterr()
        main([str(work), "--no-baseline", "--fix"])
        out = capsys.readouterr().out
        assert "rewrote" not in out
        assert (work / "utils.py").read_text() == first


class TestRepoTreeIsClean:
    def test_src_repro_has_no_unbaselined_findings(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro", "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out
