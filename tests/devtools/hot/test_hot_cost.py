"""Cost-model unit tests and ranking pins.

The static cost of a site is ``depth_weight(depth) * reach_weight(d)``
where ``d`` is the call-chain distance from the nearest hot entry.
These tests pin the weights, the full fixture ranking, and that two
independent analysis passes produce byte-identical output.
"""

from __future__ import annotations

from repro.devtools.flow.analysis import analyze_project
from repro.devtools.hot.analyzer import hot_findings
from repro.devtools.hot.cost import (
    depth_weight,
    format_cost,
    reach_weight,
    site_cost,
)
from repro.devtools.hot.registry import COLD_WEIGHT, DEPTH_BASE

from tests.devtools.hot.conftest import HOTPKG


def _key(finding):
    return (finding.rule, finding.path.rsplit("/", 1)[-1], finding.line)


class TestWeights:
    def test_depth_weight_is_geometric(self):
        assert depth_weight(0) == 1.0
        assert depth_weight(1) == DEPTH_BASE
        assert depth_weight(2) == DEPTH_BASE**2

    def test_depth_weight_saturates(self):
        assert depth_weight(7) == depth_weight(4)

    def test_reach_weight_decays_with_distance(self):
        assert reach_weight(0) == 1.0
        assert reach_weight(1) == 0.5
        assert reach_weight(2) > reach_weight(3)

    def test_cold_sites_use_flat_penalty(self):
        assert reach_weight(None) == COLD_WEIGHT
        # A cold site never outranks a hot site of the same depth.
        assert site_cost(2, None) < site_cost(2, 5)

    def test_site_cost_monotonic_in_depth(self):
        assert site_cost(2, 1) > site_cost(1, 1) > site_cost(0, 1)

    def test_format_cost_is_compact(self):
        assert format_cost(8.0) == "8"
        assert format_cost(0.25) == "0.25"
        assert format_cost(1.0 / 3.0) == "0.333333"


class TestRanking:
    def test_full_ranking_pinned(self, hotpkg_findings):
        assert [_key(f) for f in hotpkg_findings] == [
            ("P007", "pipeline.py", 31),  # depth 2, distance 1 -> 8
            ("P001", "pipeline.py", 14),  # depth 1, distance 1 -> 2
            ("P005", "pipeline.py", 21),  # depth 1, distance 1 -> 2
            ("P006", "features.py", 27),  # depth 0, distance 1 -> 0.5
            ("P007", "pipeline.py", 34),  # depth 0, distance 1 -> 0.5
            ("P007", "pipeline.py", 39),  # depth 0, distance 2 -> 1/3
            ("P003", "utils.py", 11),  # depth 1, cold -> 0.25
            ("P004", "utils.py", 37),  # depth 1, cold -> 0.25
            ("P008", "utils.py", 51),  # depth 1, cold -> 0.25
            ("P002", "legacy.py", 3),  # depth 0, cold -> 0.0625
        ]

    def test_deeper_nesting_outranks_shallower(self, hotpkg_findings):
        order = [_key(f) for f in hotpkg_findings]
        # Same rule, same function: the two-loops-deep toarray() must
        # rank above the top-level todense().
        assert order.index(("P007", "pipeline.py", 31)) < order.index(
            ("P007", "pipeline.py", 34)
        )

    def test_entry_proximity_outranks_distance(self, hotpkg_findings):
        order = [_key(f) for f in hotpkg_findings]
        # Same rule, same depth: one call from the entry beats two.
        assert order.index(("P007", "pipeline.py", 34)) < order.index(
            ("P007", "pipeline.py", 39)
        )

    def test_hot_sites_outrank_cold_sites(self, hotpkg_findings):
        ranks = {_key(f): i for i, f in enumerate(hotpkg_findings)}
        hottest_cold = min(r for (_, name, _), r in ranks.items() if name == "utils.py")
        coldest_hot = max(
            r for (_, name, _), r in ranks.items() if name == "pipeline.py"
        )
        assert coldest_hot < hottest_cold

    def test_hot_chain_rendered_in_message(self, hotpkg_findings):
        top = hotpkg_findings[0]
        assert top.message.endswith("[cost 8; hot: run_tfidf_sweep -> densify_grid]")

    def test_cold_tag_rendered_in_message(self, hotpkg_findings):
        (p002,) = [f for f in hotpkg_findings if f.rule == "P002"]
        assert p002.message.endswith("[cost 0.0625; cold]")


class TestDeterminism:
    def test_two_independent_passes_agree(self):
        first, errors_a = hot_findings(analyze_project([str(HOTPKG)]))
        second, errors_b = hot_findings(analyze_project([str(HOTPKG)]))
        assert errors_a == errors_b == []
        assert first == second
