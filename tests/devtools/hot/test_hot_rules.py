"""Rule-level assertions against the seeded hotpkg fixture package.

Every rule P001–P008 has at least one true positive *and* one
near-miss in the package; the suite pins both directions so analyzer
changes cannot silently widen or narrow a rule.
"""

from __future__ import annotations


def _by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def _lines(findings, rule, filename):
    return sorted(
        f.line for f in _by_rule(findings, rule) if f.path.endswith(filename)
    )


def _sites(findings):
    return {(f.path.rsplit("/", 1)[-1], f.line) for f in findings}


class TestTruePositives:
    def test_p001_per_item_call_with_batch_sibling(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P001")
        assert finding.path.endswith("pipeline.py")
        assert finding.line == 14
        assert "transform_many" in finding.message

    def test_p002_reference_import_in_production_module(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P002")
        assert finding.path.endswith("legacy.py")
        assert finding.line == 3
        assert "repro.perf.reference" in finding.message

    def test_p003_list_membership_scan_in_loop(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P003")
        assert finding.path.endswith("utils.py")
        assert finding.line == 11
        assert finding.fixable
        assert "use a set" in finding.message

    def test_p004_incremental_array_growth(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P004")
        assert finding.path.endswith("utils.py")
        assert finding.line == 37
        assert "np.append" in finding.message

    def test_p005_loop_invariant_pure_call(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P005")
        assert finding.path.endswith("pipeline.py")
        assert finding.line == 21
        assert "_weight_table" in finding.message
        assert "hoist" in finding.message

    def test_p006_invariant_state_rederived(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P006")
        assert finding.path.endswith("features.py")
        assert finding.line == 27
        assert "Vocabulary.ordered" in finding.message
        assert "_terms" in finding.message

    def test_p007_densification_sites(self, hotpkg_findings):
        assert _lines(hotpkg_findings, "P007", "pipeline.py") == [31, 34, 39]
        messages = " ".join(f.message for f in _by_rule(hotpkg_findings, "P007"))
        assert ".toarray()" in messages
        assert ".todense()" in messages

    def test_p008_string_accumulation(self, hotpkg_findings):
        (finding,) = _by_rule(hotpkg_findings, "P008")
        assert finding.path.endswith("utils.py")
        assert finding.line == 51
        assert "join" in finding.message

    def test_exact_finding_count(self, hotpkg_findings):
        assert len(hotpkg_findings) == 10

    def test_every_message_carries_a_cost_tag(self, hotpkg_findings):
        assert all("[cost " in f.message for f in hotpkg_findings)


class TestNearMisses:
    def test_set_membership_not_flagged(self, hotpkg_findings):
        assert ("utils.py", 20) not in _sites(hotpkg_findings)

    def test_loop_built_container_not_flagged(self, hotpkg_findings):
        assert ("utils.py", 28) not in _sites(hotpkg_findings)

    def test_post_loop_concatenate_not_flagged(self, hotpkg_findings):
        assert ("utils.py", 45) not in _sites(hotpkg_findings)

    def test_numeric_accumulator_not_flagged(self, hotpkg_findings):
        assert ("utils.py", 58) not in _sites(hotpkg_findings)

    def test_cold_densify_not_flagged(self, hotpkg_findings):
        # P007 is hot-gated: utils.cold_densify is unreachable from any
        # registered entry, so its todense() stays legal.
        assert not any(
            f.path.endswith("utils.py") for f in _by_rule(hotpkg_findings, "P007")
        )

    def test_toarray_outside_loop_not_flagged(self, hotpkg_findings):
        assert ("pipeline.py", 33) not in _sites(hotpkg_findings)

    def test_varying_argument_call_not_flagged(self, hotpkg_findings):
        assert ("pipeline.py", 22) not in _sites(hotpkg_findings)

    def test_batch_sibling_body_exempt(self, hotpkg_findings):
        # transform_many's own loop over transform() is the sanctioned
        # implementation of the batch API, not a per-item caller.
        assert not any(
            f.path.endswith("features.py")
            for f in _by_rule(hotpkg_findings, "P001")
        )

    def test_growing_vocabulary_not_flagged(self, hotpkg_findings):
        assert ("features.py", 40) not in _sites(hotpkg_findings)

    def test_benchmarks_segment_import_exempt(self, hotpkg_findings):
        assert not any(
            f.path.endswith("bench.py") for f in _by_rule(hotpkg_findings, "P002")
        )


class TestSuppression:
    def test_inline_marker_silences_p008(self, hotpkg_findings):
        assert ("utils.py", 65) not in _sites(hotpkg_findings)
