"""Shared fixtures: the hotpkg fixture package, analyzed once."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.flow.analysis import analyze_project
from repro.devtools.hot.analyzer import hot_findings

HOTPKG = Path(__file__).parent.parent / "fixtures" / "hotpkg"
REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="session")
def hot_analysis():
    return analyze_project([str(HOTPKG)])


@pytest.fixture(scope="session")
def hotpkg_findings(hot_analysis):
    findings, load_errors = hot_findings(hot_analysis)
    assert load_errors == []
    return findings
