"""Seeded R001 violation: raises a builtin exception."""

from __future__ import annotations


def reject(value: int) -> None:
    """Raise for negative input (the wrong way)."""
    if value < 0:
        raise ValueError(f"negative value {value}")
