"""Seeded R004 violation: mutable default argument."""

from __future__ import annotations


def collect(item: str, bucket: list[str] = []) -> list[str]:
    """Append to a shared default list (the classic footgun)."""
    bucket.append(item)
    return bucket
