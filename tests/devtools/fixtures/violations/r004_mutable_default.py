"""Seeded R004 violation: mutable default argument.

The default is only *read* here so the escalation rule (R009, mutated
mutable default) stays quiet — its own fixture lives in
``r009_mutated_default.py``.
"""

from __future__ import annotations


def collect(item: str, bucket: list[str] = []) -> list[str]:
    """Return a new list; the shared default is never mutated."""
    return bucket + [item]
