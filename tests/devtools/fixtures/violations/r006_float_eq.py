"""Seeded R006 violation: exact float equality on a probability."""

from __future__ import annotations


def is_certain(probability: float) -> bool:
    """Compare a probability exactly (the wrong way)."""
    return probability == 1.0
