"""Seeded R008 violation: bare and over-broad exception handlers."""

from __future__ import annotations


def swallow_everything(path: str) -> str:
    """Read a file while hiding every possible failure."""
    try:
        with open(path, encoding="utf-8") as fh:
            return fh.read()
    except Exception:
        return ""


def swallow_bare(value: str) -> int:
    """Parse an int, bare-except style."""
    try:
        return int(value)
    except:
        return 0


def swallow_in_tuple(value: str) -> float:
    """Hide the broad member inside a tuple handler."""
    try:
        return float(value)
    except (KeyError, BaseException):
        return 0.0
