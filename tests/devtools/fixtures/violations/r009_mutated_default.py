"""Fixture for R009: mutable defaults the function body mutates.

``gather`` and ``tally`` are true positives (append / subscript-store
into the default).  ``read_only`` is the R004-only near-miss: its
mutable default is never mutated, so R009 must stay quiet.

R004 (the syntactic superset) and R007 are file-suppressed so this
fixture exercises exactly one rule.
"""
# repro-lint: disable-file=R004,R007

from __future__ import annotations


def gather(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(name, counts={}):
    """Count occurrences per name."""
    counts[name] = counts.get(name, 0) + 1
    return counts


def read_only(labels=["a", "b"]):
    # Near-miss: mutable default, but only read.
    return labels[0]
