"""Seeded R007 violation: public function without hints or docstring."""

from __future__ import annotations


def combine(a, b):
    return a + b
