"""Seeded R005 violation: print() in library code."""

from __future__ import annotations


def report_progress(step: int) -> None:
    """Log progress the wrong way."""
    print(f"step {step} done")
