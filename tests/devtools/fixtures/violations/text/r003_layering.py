"""Seeded R003 violation: a `text`-layer module importing `core`."""

from __future__ import annotations

from repro.core.config import ExperimentConfig

__all__ = ["ExperimentConfig"]
