"""Seeded R002 violation: unseeded global randomness."""

from __future__ import annotations

import numpy as np


def noisy_sample(n: int) -> "np.ndarray":
    """Draw from the unseeded global RandomState."""
    return np.random.rand(n)
