"""Memoization sites for the cache-key completeness rule (C005).

``TinyCache`` duck-types ``repro.perf.FeatureCache``'s ``key`` /
``get_or_compute`` surface, which is exactly what the analyzer keys on.

* ``summarize`` — true positive: ``compute`` reads the ``limit``
  parameter but the key only covers ``texts``.
* ``decorate`` — true positive: ``compute`` reads the module global
  ``_SUFFIX``, absent from the key.
* ``summarize_keyed`` — near-miss: every input ``compute`` reads is in
  the key, and the ``jobs`` execution knob is legitimately unkeyed
  (``pmap`` is order-stable at any worker count).
* ``EpochSummaries.stale`` — true positive for the temporal extension:
  ``compute`` reads ``self._epoch`` but the key never mentions the
  epoch, so a replayed tick is served another snapshot's rows.
* ``EpochSummaries.keyed`` — near-miss: the same read, but the key's
  params carry the epoch.
"""

from __future__ import annotations

from repro.perf.parallel import pmap

_SUFFIX = " [summary]"


class TinyCache:
    def __init__(self) -> None:
        self._store: dict = {}

    def key(self, kind: str, content: str, params: dict) -> tuple:
        return (kind, content, repr(sorted(params.items())))

    def get_or_compute(self, key, compute):
        if key not in self._store:
            self._store[key] = compute()
        return self._store[key]


def summarize(texts, limit, cache=None):
    def compute():
        return [text[:limit] for text in texts]

    if cache is None:
        return compute()
    key = cache.key("summaries", str(len(texts)), {"n_texts": len(texts)})
    return cache.get_or_compute(key, compute)


def decorate(texts, cache=None):
    def compute():
        return [text + _SUFFIX for text in texts]

    if cache is None:
        return compute()
    key = cache.key("decorated", str(len(texts)), {"n_texts": len(texts)})
    return cache.get_or_compute(key, compute)


def summarize_keyed(texts, limit, jobs=None, cache=None):
    def compute():
        return pmap(len, [text[:limit] for text in texts], jobs=jobs)

    if cache is None:
        return compute()
    key = cache.key(
        "summaries-keyed",
        str(len(texts)),
        {"n_texts": len(texts), "limit": limit},
    )
    return cache.get_or_compute(key, compute)


class EpochSummaries:
    def __init__(self, cache):
        self._cache = cache
        self._epoch = 0
        self._texts: list = []

    def advance(self, texts):
        self._epoch += 1
        self._texts = list(texts)

    def stale(self):
        def compute():
            return [text + f"@{self._epoch}" for text in self._texts]

        key = self._cache.key(
            "epoch-summaries",
            str(len(self._texts)),
            {"n_texts": len(self._texts)},
        )
        return self._cache.get_or_compute(key, compute)

    def keyed(self):
        def compute():
            return [text + f"@{self._epoch}" for text in self._texts]

        key = self._cache.key(
            "epoch-summaries-keyed",
            str(len(self._texts)),
            {"n_texts": len(self._texts), "epoch": self._epoch},
        )
        return self._cache.get_or_compute(key, compute)
