"""Module-level state shared (or not) with worker processes.

``_RESULT_CACHE`` is mutated inside the worker call tree — the C001
true positive: each pool worker fills its own copy-on-write copy and
the parent never sees the writes.  ``_CONFIG`` is only ever *read* by
workers (reads of forked state are fine), and ``TALLY`` is mutated
only by a function no worker reaches — both near-miss negatives.
"""

from __future__ import annotations

_RESULT_CACHE: dict[int, object] = {}

_CONFIG = {"mode": "fast", "scale": 3}

TALLY: list[int] = []
