"""Worker callables and their helpers.

Seeded hazards (each asserted by ``test_conc_rules.py``):

* ``_record`` / ``accumulate`` — C001 true positives: the worker call
  tree mutates ``state._RESULT_CACHE``, directly and through a
  parameter whose default aliases it.
* ``bump_counter`` / ``enable_verbose`` — C002 true positives: a
  ``global`` rebind and a class-attribute write, both worker-reachable
  and both silently lost in the parent process under fork.
* ``_draw_noise`` — C003 true positive: unseeded ``default_rng()``
  gives every worker process (and every run) a different stream.
  ``_draw_seeded`` is the near-miss: seeded per item, bit-stable.
* ``dump_partial`` — C004 true positive: a raw write-mode ``open``
  that tears on crash.  ``read_blob`` (read-mode) and
  ``export_report`` (write-mode but unreachable from any worker) are
  the near-misses; ``dump_suppressed`` shows the suppression comment.
* ``locked_worker`` — C006 true positive: its default argument
  constructs a ``threading.Lock``, which cannot cross a pickle/fork
  boundary.  ``scale_item`` is the picklable near-miss used through
  ``functools.partial``.
"""

from __future__ import annotations

import os

from numpy.random import default_rng
from threading import Lock

from concpkg.state import _CONFIG, _RESULT_CACHE, TALLY

_COUNTER = 0


class RunFlags:
    verbose = False


def _record(item: int) -> None:
    _RESULT_CACHE[item] = item * 2


def accumulate(item: int, acc=_RESULT_CACHE) -> None:
    acc[item] = True


def untouched_mutator() -> None:
    # C001 near-miss: mutates shared state, but no worker reaches it.
    TALLY.append(1)


def read_config() -> int:
    # C001 near-miss: workers *read* forked module state all the time.
    return _CONFIG["scale"]


def bump_counter() -> None:
    global _COUNTER
    _COUNTER += 1


def rebind_unreached() -> None:
    # C002 near-miss: same shape as bump_counter, never worker-reachable.
    global _COUNTER
    _COUNTER = 0


def enable_verbose() -> None:
    RunFlags.verbose = True


class Session:
    def __init__(self) -> None:
        self.mode = "idle"

    def set_mode(self, mode: str) -> None:
        # C002 near-miss: instance-attribute writes are worker-local by
        # design, not shared state.
        self.mode = mode


def _draw_noise() -> float:
    return float(default_rng().random())


def _draw_seeded(seed: int) -> float:
    return float(default_rng(seed).random())


def dump_partial(path: str, payload: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)


def dump_suppressed(path: str, payload: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:  # repro-conc: disable=C004
        fh.write(payload)


def read_blob(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def export_report(path: str, rows: list[str]) -> None:
    # C004 near-miss: raw write, but nothing ships this to a worker.
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(rows))


def locked_worker(item: int, lock=Lock()) -> int:
    with lock:
        return item


def scale_item(item: int, scale: int = 1) -> int:
    return item * scale


def work(item: int, out_dir: str | None = None) -> float:
    """The hazardous worker: reaches every true positive above."""
    _record(item)
    accumulate(item)
    bump_counter()
    enable_verbose()
    if out_dir is not None:
        dump_partial(os.path.join(out_dir, f"{item}.txt"), str(item))
        dump_suppressed(os.path.join(out_dir, f"{item}.ok"), str(item))
    return item * read_config() + _draw_noise()


def work_seeded(item: int) -> float:
    """The disciplined near-miss worker: seeded, read-only, write-free."""
    return item * 2 + _draw_seeded(item)
