"""Fixture package for the repro-conc analyzer tests.

Parsed by ``repro.devtools.flow.project.load_project`` for the static
tests, and *imported and executed* by the C003 behavior test, which
proves the fork-RNG rule flags code that really does misbehave: the
unseeded worker path returns different values run to run, the seeded
near-miss is bit-stable.

Every rule C001–C006 has at least one seeded true positive and one
near-miss negative; ``tests/devtools/conc/test_conc_rules.py`` pins
the exact split.
"""
