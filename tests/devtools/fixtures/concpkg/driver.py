"""Submission sites: every way this package ships work to a pool.

C006 true positives: ``run_lambda`` (lambda), ``run_nested`` (closure),
``run_locked`` (fork-unsafe default capture).  Near-misses:
``run_all``/``run_scaled`` submit module-level functions through
``functools.partial`` and ``submit_all`` uses a real executor with a
picklable callable — none may be flagged.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial

from repro.perf.parallel import pmap

from concpkg.workers import locked_worker, scale_item, work, work_seeded


def run_all(items, jobs=None, out_dir=None):
    fn = partial(work, out_dir=out_dir)
    return pmap(fn, items, jobs=jobs)


def run_seeded(items, jobs=None):
    return pmap(work_seeded, items, jobs=jobs)


def run_lambda(items):
    return pmap(lambda item: item + 1, items)


def run_nested(items):
    def helper(item):
        return item - 1

    return pmap(helper, items)


def run_locked(items):
    return pmap(locked_worker, items)


def run_scaled(items, scale):
    return pmap(partial(scale_item, scale=scale), items)


def submit_all(items):
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work_seeded, item) for item in items]
        return [future.result() for future in futures]
