"""A module that satisfies every repro-lint rule (negative fixture)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

EPS = 1e-9


def well_behaved(values: list[float], seed: int = 7) -> float:
    """Sum ``values`` after a seeded shuffle, validating the input."""
    if not values:
        raise ValidationError("values must be non-empty")
    rng = np.random.default_rng(seed)
    shuffled = rng.permutation(np.asarray(values, dtype=np.float64))
    total = float(shuffled.sum())
    if abs(total - 1.0) < EPS:
        total = 1.0
    return total


class Accumulator:
    """Accumulate floats without mutable-default footguns."""

    def __init__(self, initial: tuple[float, ...] = ()) -> None:
        self._items = list(initial)

    def add(self, value: float) -> None:
        """Append ``value``."""
        self._items.append(value)
