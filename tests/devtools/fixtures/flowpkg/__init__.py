"""Fixture package for the repro-flow analyzer tests.

Never imported at test time — only *parsed* by
``repro.devtools.flow.project.load_project``.  Each module seeds
specific taint/determinism violations (or deliberately clean flows)
that the test-suite and the CI self-check assert on.
"""
