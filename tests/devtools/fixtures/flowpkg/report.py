"""Report module: f-string interpolation is a T005 sink here."""

from __future__ import annotations


def render(title):
    return f"# {title}\n"  # T005 when `title` is tainted
