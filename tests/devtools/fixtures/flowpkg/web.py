"""Taint sources: web fetches."""

from __future__ import annotations


def fetch_page(host, url):
    """Returns untrusted web content (taint source)."""
    return host.fetch(url)


def refetch(host, page_text):
    """Feeds page-derived text straight back into a fetch (T004)."""
    return host.fetch(page_text)
