"""Deliberately clean flows: sanitizers break the taint."""

from __future__ import annotations

from repro.devtools.sanitizers import sanitizes


@sanitizes("*")
def tokenize(text):
    return [token for token in text.lower().split() if token.isalnum()]


@sanitizes("path")
def safe_name(name):
    return "".join(ch for ch in name if ch.isalnum())


def store_tokens(host):
    content = host.fetch("https://shop.example/index")
    tokens = tokenize(content)
    with open("out/" + tokens[0], "w") as fh:  # clean: tokenize() sanitized
        fh.write("ok")


def store_named(host, label):
    content = host.fetch("https://shop.example/index")
    with open("out/" + safe_name(content), "w") as fh:  # clean: path cleared
        fh.write(label)
