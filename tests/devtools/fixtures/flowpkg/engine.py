"""Call-graph shapes: methods, attr-name fallback, dispatch tables."""

from __future__ import annotations


class Engine:
    def __init__(self, host):
        self._host = host

    def run(self, url):
        raw = self._fetch_raw(url)
        return self.process(raw)

    def _fetch_raw(self, url):
        return self._host.fetch(url)

    def process(self, raw):
        return raw


def run_engine(engine, url):
    # Unknown receiver: resolves to Engine.run via the attr-name fallback.
    return engine.run(url)


def handle_fast(payload):
    return payload


def handle_slow(payload):
    return payload


HANDLERS = {"fast": handle_fast, "slow": handle_slow}


def dispatch(kind, payload):
    return HANDLERS[kind](payload)
