"""Determinism hazards that single-file R002 provably misses.

``default_rng`` is on R002's seeded-construction allowlist, so linting
this file reports nothing — only interprocedural analysis sees that the
construction is unseeded *and* reachable from the CLI entrypoint.
"""

from __future__ import annotations

from numpy.random import default_rng


def sample_scores(values):
    rng = default_rng()  # D001: unseeded construction (R002-clean!)
    return [value + rng.random() for value in values]


def pick_order(items):
    seen = set(items)
    out = []
    for item in seen:  # D003: unordered iteration feeds the result
        out.append(item)
    return out


def unreached_jitter():
    # Same D001 hazard, but no entrypoint reaches this function, so the
    # determinism analysis must NOT report it.
    rng = default_rng()
    return rng.random()
