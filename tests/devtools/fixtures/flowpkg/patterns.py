"""Regex sinks: tainted patterns and a ReDoS literal."""

from __future__ import annotations

import re

BAD_RE = re.compile("(a+)+b")  # T003: catastrophic backtracking

OK_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")  # benign tokenizer idiom


def scan(text, pattern):
    return re.search(pattern, text)  # T002 when `pattern` is tainted


def scan_quiet(text, pattern):
    return re.search(pattern, text)  # repro-flow: disable=T002
