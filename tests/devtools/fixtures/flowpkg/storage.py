"""Path sink two calls away from the untrusted data."""

from __future__ import annotations


def cache_path(name):
    return "cache/" + name


def store(name, content):
    path = cache_path(name)
    with open(path, "w") as fh:  # T001 when `name` is tainted
        fh.write(content)
