"""Entrypoint module: ties sources to every sink cross-module."""

from __future__ import annotations

import time

from flowpkg import helpers, patterns, report, storage
from flowpkg.web import fetch_page as grab, refetch


def main(host):
    content = grab(host, "https://pharm.example/start")  # aliased import
    storage.store(content, "payload")  # -> T001 in storage.py
    patterns.scan("body", content)  # -> T002 in patterns.py
    patterns.scan_quiet("body", content)  # suppressed in patterns.py
    refetch(host, content)  # -> T004 in web.py
    report.render(content)  # -> T005 in report.py
    scores = helpers.sample_scores([1, 2, 3])  # -> transitive D001
    ordered = helpers.pick_order(scores)  # -> transitive D003
    return ordered


def elapsed_filter(scores):
    cutoff = time.time()
    return [score for score in scores if score < cutoff]  # D002
