"""near-miss for P002: the module's dotted name contains a
'benchmarks' segment, so the reference import is the oracle it should
be."""

from repro.perf.reference import reference_pegasos_fit


def bench_fit(X, y):
    return reference_pegasos_fit(X, y, lam=0.01, n_epochs=3, seed=0)
