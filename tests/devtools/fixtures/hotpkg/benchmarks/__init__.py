"""Benchmark segment: reference-kernel imports are sanctioned here."""
