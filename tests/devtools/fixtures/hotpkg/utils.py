"""Cold utility helpers: syntactic rules fire here at cold rank, and
hot-gated rules must stay quiet."""

import numpy as np


def count_flagged(tokens):
    flagged = ["viagra", "cialis", "xanax"]
    hits = 0
    for token in tokens:
        if token in flagged:  # P003: list scan per iteration (fixable)
            hits += 1
    return hits


def count_flagged_set(tokens):
    flagged = {"viagra", "cialis", "xanax"}
    hits = 0
    for token in tokens:
        if token in flagged:  # near-miss: already hashed
            hits += 1
    return hits


def unique_tokens(tokens):
    seen = []
    for token in tokens:
        if token in seen:  # near-miss: container built inside the loop
            continue
        seen.append(token)
    return seen


def accumulate(values):
    out = np.zeros(0)
    for value in values:
        out = np.append(out, value)  # P004: quadratic array growth
    return out


def gather(values):
    parts = []
    for value in values:
        parts.append(np.zeros(3) + value)
    return np.concatenate(parts)  # near-miss: one concatenate after


def render_report(rows):
    report = ""
    for row in rows:
        report += str(row)  # P008: quadratic string growth
    return report


def count_rows(rows):
    total = 0
    for _row in rows:
        total += 1  # near-miss: numeric accumulator
    return total


def render_suppressed(rows):
    body = ""
    for row in rows:
        body += str(row)  # repro-hot: disable=P008
    return body


def cold_densify(matrix):
    return matrix.todense()  # near-miss: unreachable from hot entries
