"""Production-looking module leaning on a reference kernel (P002)."""

from repro.perf.reference import reference_pegasos_fit


def legacy_fit(X, y):
    return reference_pegasos_fit(X, y, lam=0.01, n_epochs=3, seed=0)
