"""Batch/per-item feature APIs and vocabulary state (P001/P006)."""


class Model:
    def __init__(self, size):
        self.size = size

    def transform(self, doc):
        """Per-item API with a registered batch sibling."""
        return len(doc) * self.size

    def transform_many(self, docs):
        """Batch sibling: its own loop over transform() is sanctioned."""
        out = []
        for doc in docs:
            out.append(self.transform(doc))  # near-miss: sibling's body
        return out


class Vocabulary:
    """Frozen after construction: re-sorting per call is pure waste."""

    def __init__(self, docs):
        self._terms = [term for doc in docs for term in doc]

    def ordered(self):
        return sorted(self._terms)  # P006: invariant state re-derived


class GrowingVocabulary:
    """Mutated after construction: re-sorting per call is required."""

    def __init__(self):
        self._terms = []

    def add(self, term):
        self._terms.append(term)

    def ordered(self):
        return sorted(self._terms)  # near-miss: attribute grows
