"""Hot-reachable pipeline helpers: the expensive anti-patterns live on
exactly the paths the sweep driver exercises."""


def _weight_table(size):
    """Provably pure: arithmetic over whitelisted builtins only."""
    total = float(size * (size + 1)) / 2.0
    return [float(index) / max(total, 1.0) for index in range(size)]


def per_item_scores(model, docs):
    scores = []
    for doc in docs:
        scores.append(model.transform(doc))  # P001: batch sibling exists
    return scores


def weight_documents(docs, size):
    weights = []
    for doc in docs:
        table = _weight_table(size)  # P005: loop-invariant pure call
        varying = _weight_table(len(doc))  # near-miss: argument varies
        weights.append(table[0] + varying[-1])
    return weights


def densify_grid(matrix, docs):
    out = []
    for doc in docs:
        for gram in doc:
            cell = matrix.toarray()  # P007: densify two loops deep
            out.append(len(gram) + cell[0][0])
    header = matrix.toarray()  # near-miss: toarray outside any loop
    total = matrix.todense()  # P007: hot todense at top level
    return out, header, total, _cell_total(matrix)


def _cell_total(matrix):
    return matrix.todense().sum()  # P007: one call further from the entry
