"""Sweep driver: the hot entry point rooting the reachability pass."""

from hotpkg import pipeline
from hotpkg.features import Vocabulary


def run_tfidf_sweep(model, docs, matrix, size):
    """Matches the registered 'sweep.run_tfidf_sweep' entry suffix."""
    scores = pipeline.per_item_scores(model, docs)
    grid = pipeline.densify_grid(matrix, docs)
    weights = pipeline.weight_documents(docs, size)
    vocab = Vocabulary(docs)
    return scores, grid, weights, vocab.ordered()
