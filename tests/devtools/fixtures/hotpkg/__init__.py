"""Seeded hot-path anti-patterns for repro-hot rule tests.

Every rule P001-P008 has at least one true positive and one near-miss
in this package.  ``sweep.run_tfidf_sweep`` matches the registered
hot-entry suffix, so the ``pipeline``/``features`` call tree is hot
while ``utils`` stays cold — pinning both the rules and the cost
model's hot/cold ranking.
"""
