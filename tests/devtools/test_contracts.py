"""Contract-decorator tests: valid passes, invalid raises, disabled no-ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools import contracts
from repro.devtools.contracts import (
    check_probability_vector,
    check_row_stochastic,
    check_score_range,
    contracts_enabled,
)
from repro.exceptions import ContractViolationError
from repro.network.graph import DirectedGraph
from repro.network.pagerank import personalized_pagerank
from repro.network.trustrank import trustrank


class TestEnablement:
    def test_enabled_under_pytest(self):
        assert contracts_enabled() is True

    def test_env_zero_forces_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert contracts_enabled() is False

    def test_env_one_forces_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled() is True

    def test_disabled_decorator_is_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")

        def broken() -> dict[str, float]:
            return {"a": 5.0}

        decorated = check_probability_vector()(broken)
        assert decorated is broken
        assert decorated() == {"a": 5.0}

    def test_enabled_decorator_wraps(self):
        def fine() -> dict[str, float]:
            return {"a": 0.5, "b": 0.5}

        decorated = check_probability_vector()(fine)
        assert decorated is not fine
        assert decorated() == {"a": 0.5, "b": 0.5}


class TestProbabilityVector:
    def test_valid_dict_passes(self):
        @check_probability_vector()
        def dist() -> dict[str, float]:
            return {"x": 0.25, "y": 0.75}

        assert dist() == {"x": 0.25, "y": 0.75}

    def test_valid_array_passes(self):
        @check_probability_vector()
        def dist() -> np.ndarray:
            return np.array([0.1, 0.2, 0.7])

        assert dist().sum() == pytest.approx(1.0)

    def test_bad_mass_raises(self):
        @check_probability_vector()
        def dist() -> dict[str, float]:
            return {"x": 0.9, "y": 0.9}

        with pytest.raises(ContractViolationError, match="mass sums to"):
            dist()

    def test_negative_entry_raises(self):
        @check_probability_vector()
        def dist() -> dict[str, float]:
            return {"x": -0.5, "y": 1.5}

        with pytest.raises(ContractViolationError, match="outside"):
            dist()

    def test_nan_raises(self):
        @check_probability_vector()
        def dist() -> dict[str, float]:
            return {"x": float("nan"), "y": 1.0}

        with pytest.raises(ContractViolationError, match="non-finite"):
            dist()

    def test_empty_raises(self):
        @check_probability_vector()
        def dist() -> dict[str, float]:
            return {}

        with pytest.raises(ContractViolationError, match="empty"):
            dist()


class TestRowStochastic:
    def test_valid_matrix_passes(self):
        @check_row_stochastic()
        def proba() -> np.ndarray:
            return np.array([[0.2, 0.8], [1.0, 0.0]])

        assert proba().shape == (2, 2)

    def test_bad_row_sum_raises(self):
        @check_row_stochastic()
        def proba() -> np.ndarray:
            return np.array([[0.2, 0.9]])

        with pytest.raises(ContractViolationError, match="row sums"):
            proba()

    def test_wrong_ndim_raises(self):
        @check_row_stochastic()
        def proba() -> np.ndarray:
            return np.array([0.2, 0.8])

        with pytest.raises(ContractViolationError, match="2-D"):
            proba()


class TestScoreRange:
    def test_scalar_in_range_passes(self):
        @check_score_range(0.0, 1.0)
        def score() -> float:
            return 0.5

        assert score() == 0.5

    def test_out_of_range_raises(self):
        @check_score_range(0.0, 1.0)
        def score() -> float:
            return 1.5

        with pytest.raises(ContractViolationError, match="outside"):
            score()

    def test_getter_projection(self):
        @check_score_range(0.0, 1.0, getter=lambda pair: pair[1])
        def labelled() -> tuple[str, float]:
            return ("ok", 2.0)

        with pytest.raises(ContractViolationError):
            labelled()

    def test_allow_nan(self):
        @check_score_range(0.0, 1.0, allow_nan=True)
        def score() -> float:
            return float("nan")

        assert np.isnan(score())

    def test_nan_rejected_by_default(self):
        @check_score_range(0.0, 1.0)
        def score() -> float:
            return float("nan")

        with pytest.raises(ContractViolationError, match="NaN"):
            score()


class TestKernelWiring:
    """The shipped kernels run under their contracts in this suite."""

    @staticmethod
    def _chain() -> DirectedGraph:
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        return graph

    def test_trustrank_is_instrumented(self):
        assert hasattr(trustrank, "__wrapped__")
        scores = trustrank(self._chain(), trusted_seed=["a"])
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_personalized_pagerank_is_instrumented(self):
        assert hasattr(personalized_pagerank, "__wrapped__")
        scores = personalized_pagerank(self._chain())
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_contract_catches_corrupted_kernel_output(self):
        raw = personalized_pagerank.__wrapped__

        def corrupted(graph: DirectedGraph) -> dict[str, float]:
            scores = dict(raw(graph))
            first = next(iter(scores))
            scores[first] += 1.0
            return scores

        guarded = check_probability_vector()(corrupted)
        with pytest.raises(ContractViolationError):
            guarded(self._chain())
