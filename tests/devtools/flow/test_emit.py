"""SARIF and GitHub workflow-command emitters."""

from __future__ import annotations

import json

from repro.devtools.emit import SARIF_VERSION, render_github, render_sarif
from repro.devtools.findings import Finding

FINDING = Finding(
    rule="T001",
    path="src/repro/io.py",
    line=10,
    column=4,
    message="untrusted data reaches open()",
    symbol="load_model",
    source_line="with open(path) as fh:",
)


class TestSarif:
    def test_document_shape(self):
        doc = json.loads(render_sarif("repro-flow", [FINDING], {"T001": "path sink"}))
        assert doc["version"] == SARIF_VERSION
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-flow"
        (result,) = run["results"]
        assert result["ruleId"] == "T001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/io.py"
        assert location["region"]["startLine"] == 10
        assert location["region"]["startColumn"] == 5  # 1-based

    def test_fingerprint_round_trips(self):
        doc = json.loads(render_sarif("repro-lint", [FINDING], {}))
        fp = doc["runs"][0]["results"][0]["partialFingerprints"]["reproFingerprint/v1"]
        assert fp == FINDING.fingerprint()

    def test_rules_cover_catalog_and_findings(self):
        doc = json.loads(render_sarif("repro-flow", [FINDING], {"D001": "rng"}))
        ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert "D001" in ids and "T001" in ids

    def test_empty_findings_still_valid(self):
        doc = json.loads(render_sarif("repro-flow", [], {"T001": "path sink"}))
        assert doc["runs"][0]["results"] == []


class TestGithubCommands:
    def test_error_command_shape(self):
        out = render_github([FINDING])
        assert out.startswith("::error file=src/repro/io.py,line=10,col=5,")
        assert "::T001 untrusted data reaches open()" in out

    def test_property_escaping(self):
        tricky = Finding(
            rule="T005",
            path="a,b:c.py",
            line=1,
            column=0,
            message="100% bad\nnewline",
        )
        out = render_github([tricky])
        assert "file=a%2Cb%3Ac.py" in out
        assert "100%25 bad%0Anewline" in out
