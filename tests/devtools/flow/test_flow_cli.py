"""End-to-end tests of the flow CLI: exit codes, baseline, formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.flow.cli import main

from tests.devtools.flow.conftest import FLOWPKG

REPO_ROOT = Path(__file__).resolve().parents[3]


class TestExitCodes:
    def test_seeded_package_fails_with_every_rule(self, capsys):
        status = main([str(FLOWPKG), "--no-baseline"])
        out = capsys.readouterr().out
        assert status == 1
        for rule_id in ("T001", "T002", "T003", "T004", "T005", "D001", "D002", "D003"):
            assert rule_id in out

    def test_nonexistent_path_is_usage_error(self, capsys):
        assert main(["does/not/exist"]) == 2
        assert "not a package directory" in capsys.readouterr().err

    def test_repo_tree_is_clean(self, capsys, monkeypatch):
        # The acceptance bar: the real package carries no unbaselined
        # flow findings (run from the repo root the way CI does).
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "T001" in out and "D003" in out


class TestInterproceduralEvidence:
    def test_taint_report_names_the_call_chain(self, capsys):
        main([str(FLOWPKG), "--no-baseline"])
        out = capsys.readouterr().out
        assert "flowpkg.cli.main -> flowpkg.storage.store" in out

    def test_rng_reported_in_helper_that_lint_passes(self, capsys):
        # repro-lint's single-file R002 does not fire on helpers.py
        # (default_rng is allowlisted); the flow analysis must.
        from repro.devtools.lint import lint_paths

        lint_findings = lint_paths([str(FLOWPKG / "helpers.py")])
        assert not any(f.rule == "R002" for f in lint_findings)

        main([str(FLOWPKG), "--no-baseline"])
        out = capsys.readouterr().out
        assert "helpers.py" in out and "D001" in out


class TestBaselineWorkflow:
    def test_round_trip(self, tmp_path, capsys):
        baseline_path = tmp_path / "flow-baseline.json"
        assert (
            main(
                [
                    str(FLOWPKG),
                    "--baseline",
                    str(baseline_path),
                    "--write-baseline",
                    "--justification",
                    "seeded fixtures",
                ]
            )
            == 0
        )
        payload = json.loads(baseline_path.read_text())
        assert payload["tool"] == "repro-flow"

        capsys.readouterr()
        assert main([str(FLOWPKG), "--baseline", str(baseline_path)]) == 0
        assert "baselined" in capsys.readouterr().out


class TestFormats:
    def test_sarif_output_parses_and_carries_results(self, capsys):
        status = main([str(FLOWPKG), "--no-baseline", "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-flow"
        rules_fired = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert "T001" in rules_fired and "D001" in rules_fired

    def test_github_format(self, capsys):
        main([str(FLOWPKG), "--no-baseline", "--format", "github"])
        out = capsys.readouterr().out
        assert out.startswith("::error file=")

    def test_json_format(self, capsys):
        main([str(FLOWPKG), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["baselined"] == 0
        assert len(payload["new"]) >= 8
