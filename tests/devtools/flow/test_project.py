"""Project loading: module names, imports, sanitizers, dispatch tables."""

from __future__ import annotations

from repro.devtools.flow.project import load_project

from tests.devtools.flow.conftest import FLOWPKG


class TestModuleNaming:
    def test_package_root_becomes_dotted_prefix(self, flow_project):
        assert "flowpkg.cli" in flow_project.modules
        assert "flowpkg.storage" in flow_project.modules

    def test_init_module_is_the_package_itself(self, flow_project):
        assert "flowpkg" in flow_project.modules
        assert flow_project.modules["flowpkg"].is_package

    def test_no_load_errors(self, flow_project):
        assert flow_project.errors == []


class TestImports:
    def test_plain_from_import(self, flow_project):
        cli = flow_project.modules["flowpkg.cli"]
        assert cli.imports["storage"] == "flowpkg.storage"

    def test_aliased_import(self, flow_project):
        cli = flow_project.modules["flowpkg.cli"]
        assert cli.imports["grab"] == "flowpkg.web.fetch_page"

    def test_stdlib_import(self, flow_project):
        cli = flow_project.modules["flowpkg.cli"]
        assert cli.imports["time"] == "time"


class TestFunctionIndex:
    def test_methods_carry_class_and_symbol(self, flow_project):
        unit = flow_project.functions["flowpkg.engine.Engine.run"]
        assert unit.symbol == "Engine.run"
        assert unit.class_name == "flowpkg.engine.Engine"
        assert unit.params[0] == "self"

    def test_by_name_fallback_index(self, flow_project):
        assert "flowpkg.engine.Engine.process" in flow_project.by_name["process"]

    def test_sanitizer_decorators_are_read(self, flow_project):
        tokenize = flow_project.functions["flowpkg.clean.tokenize"]
        assert tokenize.sanitizes == frozenset({"*"})
        safe_name = flow_project.functions["flowpkg.clean.safe_name"]
        assert safe_name.sanitizes == frozenset({"path"})
        plain = flow_project.functions["flowpkg.storage.store"]
        assert plain.sanitizes is None


class TestDispatchTables:
    def test_module_level_dict_of_function_refs(self, flow_project):
        table = flow_project.dispatch_tables["flowpkg.engine.HANDLERS"]
        assert set(table) == {
            "flowpkg.engine.handle_fast",
            "flowpkg.engine.handle_slow",
        }


class TestSuppressions:
    def test_flow_marker_parsed(self, flow_project):
        patterns = flow_project.modules["flowpkg.patterns"]
        suppressed_lines = [
            line
            for line, ids in patterns.line_suppressions.items()
            if "T002" in ids
        ]
        assert len(suppressed_lines) == 1

    def test_syntax_errors_recorded_not_raised(self, tmp_path):
        package = tmp_path / "badpkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "broken.py").write_text("def f(:\n")
        project = load_project([str(package)])
        assert len(project.errors) == 1
        assert "syntax error" in project.errors[0][2]
        assert "badpkg" in project.modules  # the rest still loads


class TestEntrypoints:
    def test_cli_public_functions_are_entrypoints(self, flow_project):
        names = {u.qualname for u in flow_project.entrypoints()}
        assert "flowpkg.cli.main" in names
        assert "flowpkg.cli.elapsed_filter" in names

    def test_private_and_non_entry_modules_excluded(self, flow_project):
        names = {u.qualname for u in flow_project.entrypoints()}
        assert "flowpkg.helpers.sample_scores" not in names

    def test_extra_entrypoints_appended(self, flow_project):
        names = {
            u.qualname
            for u in flow_project.entrypoints(["flowpkg.helpers.unreached_jitter"])
        }
        assert "flowpkg.helpers.unreached_jitter" in names


def test_fixture_package_location_exists():
    assert (FLOWPKG / "cli.py").is_file()
