"""Shared fixtures: the flowpkg fixture package, analyzed once."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.flow.callgraph import build_call_graph
from repro.devtools.flow.interp import run_analysis
from repro.devtools.flow.project import load_project

FLOWPKG = Path(__file__).parent.parent / "fixtures" / "flowpkg"


@pytest.fixture(scope="session")
def flow_project():
    return load_project([str(FLOWPKG)])


@pytest.fixture(scope="session")
def flow_result(flow_project):
    return run_analysis(flow_project)


@pytest.fixture(scope="session")
def flow_graph(flow_project, flow_result):
    return build_call_graph(flow_project, flow_result)
