"""Interprocedural taint findings on the seeded fixture package."""

from __future__ import annotations


def _by_rule(flow_result, rule):
    return [f for f in flow_result.taint_findings if f.rule == rule]


class TestCrossFunctionFlows:
    def test_fetch_to_open_across_modules(self, flow_result):
        (finding,) = _by_rule(flow_result, "T001")
        assert finding.path.endswith("flowpkg/storage.py")
        assert finding.symbol == "store"
        assert "fetch()" in finding.message
        assert "flowpkg.cli.main -> flowpkg.storage.store" in finding.message

    def test_fetch_to_regex_pattern(self, flow_result):
        (finding,) = _by_rule(flow_result, "T002")
        assert finding.path.endswith("flowpkg/patterns.py")
        assert finding.symbol == "scan"

    def test_fetch_back_into_fetch_is_ssrf(self, flow_result):
        (finding,) = _by_rule(flow_result, "T004")
        assert finding.path.endswith("flowpkg/web.py")
        assert finding.symbol == "refetch"

    def test_fetch_into_report_interpolation(self, flow_result):
        (finding,) = _by_rule(flow_result, "T005")
        assert finding.path.endswith("flowpkg/report.py")
        assert finding.symbol == "render"


class TestRedosLiteral:
    def test_catastrophic_literal_flagged(self, flow_result):
        (finding,) = _by_rule(flow_result, "T003")
        assert finding.path.endswith("flowpkg/patterns.py")
        assert "(a+)+b" in finding.message

    def test_benign_tokenizer_idiom_not_flagged(self, flow_result):
        assert len(_by_rule(flow_result, "T003")) == 1


class TestSanitizers:
    def test_full_sanitizer_breaks_the_flow(self, flow_result):
        # clean.store_tokens opens a path derived from tokenize() output.
        assert not any(
            f.path.endswith("flowpkg/clean.py") for f in flow_result.taint_findings
        )

    def test_suppression_comment_honored(self, flow_result):
        assert not any(
            f.symbol == "scan_quiet" for f in flow_result.taint_findings
        )


class TestSummaries:
    def test_source_function_summary_returns_taint(self, flow_result):
        summary = flow_result.summaries["flowpkg.web.fetch_page"]
        assert summary.ret_taint is not None

    def test_sanitizer_does_not_propagate_taint(self, flow_result):
        summary = flow_result.summaries["flowpkg.clean.tokenize"]
        assert summary.ret_taint is None

    def test_param_to_sink_summary_recorded(self, flow_result):
        summary = flow_result.summaries["flowpkg.storage.store"]
        hits = summary.sink_pdeps.get(0, ())
        assert any(h.category == "path" for h in hits)
