"""Entrypoint-gated determinism findings (the interprocedural R002)."""

from __future__ import annotations

from repro.devtools.flow.determinism import determinism_findings


def _findings(flow_project, flow_result, flow_graph, extra=()):
    return determinism_findings(flow_project, flow_result, flow_graph, extra)


class TestTransitiveRng:
    def test_unseeded_default_rng_two_calls_deep(
        self, flow_project, flow_result, flow_graph
    ):
        findings = _findings(flow_project, flow_result, flow_graph)
        d001 = [f for f in findings if f.rule == "D001"]
        assert len(d001) == 1
        assert d001[0].path.endswith("flowpkg/helpers.py")
        assert d001[0].symbol == "sample_scores"
        assert "flowpkg.cli.main -> flowpkg.helpers.sample_scores" in d001[0].message

    def test_unreachable_rng_not_reported(
        self, flow_project, flow_result, flow_graph
    ):
        findings = _findings(flow_project, flow_result, flow_graph)
        assert not any(f.symbol == "unreached_jitter" for f in findings)

    def test_extra_entrypoint_exposes_it(
        self, flow_project, flow_result, flow_graph
    ):
        findings = _findings(
            flow_project,
            flow_result,
            flow_graph,
            extra=["flowpkg.helpers.unreached_jitter"],
        )
        assert any(f.symbol == "unreached_jitter" for f in findings)


class TestClockAndSets:
    def test_wall_clock_comparison_in_entrypoint(
        self, flow_project, flow_result, flow_graph
    ):
        findings = _findings(flow_project, flow_result, flow_graph)
        d002 = [f for f in findings if f.rule == "D002"]
        assert any(f.symbol == "elapsed_filter" for f in d002)

    def test_set_iteration_reached_transitively(
        self, flow_project, flow_result, flow_graph
    ):
        findings = _findings(flow_project, flow_result, flow_graph)
        d003 = [f for f in findings if f.rule == "D003"]
        assert any(f.symbol == "pick_order" for f in d003)
