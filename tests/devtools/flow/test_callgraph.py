"""Call-graph resolution: methods, aliases, dispatch, fallback."""

from __future__ import annotations


class TestEdgeResolution:
    def test_aliased_import_call(self, flow_graph):
        assert "flowpkg.web.fetch_page" in flow_graph.callees("flowpkg.cli.main")

    def test_module_attribute_call(self, flow_graph):
        assert "flowpkg.storage.store" in flow_graph.callees("flowpkg.cli.main")

    def test_self_method_calls(self, flow_graph):
        callees = flow_graph.callees("flowpkg.engine.Engine.run")
        assert "flowpkg.engine.Engine._fetch_raw" in callees
        assert "flowpkg.engine.Engine.process" in callees

    def test_unknown_receiver_falls_back_to_attr_name(self, flow_graph):
        # engine.run(url) on an unannotated parameter: resolved to the
        # only project method named `run`.
        assert "flowpkg.engine.Engine.run" in flow_graph.callees(
            "flowpkg.engine.run_engine"
        )

    def test_dispatch_table_fans_out_to_all_handlers(self, flow_graph):
        callees = flow_graph.callees("flowpkg.engine.dispatch")
        assert "flowpkg.engine.handle_fast" in callees
        assert "flowpkg.engine.handle_slow" in callees

    def test_intra_module_helper_call(self, flow_graph):
        assert "flowpkg.storage.cache_path" in flow_graph.callees(
            "flowpkg.storage.store"
        )


class TestReachability:
    def test_transitive_chain_from_entrypoint(self, flow_graph):
        chains = flow_graph.reachable_from("flowpkg.cli.main")
        assert chains["flowpkg.helpers.sample_scores"] == (
            "flowpkg.cli.main",
            "flowpkg.helpers.sample_scores",
        )

    def test_unreached_function_absent(self, flow_graph):
        chains = flow_graph.reachable_from("flowpkg.cli.main")
        assert "flowpkg.helpers.unreached_jitter" not in chains

    def test_reachable_from_any_keeps_shortest_chain(self, flow_graph):
        best = flow_graph.reachable_from_any(
            ["flowpkg.cli.main", "flowpkg.helpers.sample_scores"]
        )
        entry, chain = best["flowpkg.helpers.sample_scores"]
        assert entry == "flowpkg.helpers.sample_scores"
        assert chain == ("flowpkg.helpers.sample_scores",)
