"""Unit tests for the ReDoS heuristic."""

from __future__ import annotations

import pytest

from repro.devtools.flow.redos import explain, is_catastrophic


class TestCatastrophic:
    @pytest.mark.parametrize(
        "pattern",
        [
            "(a+)+b",
            "(a+)+",
            r"(\w*)*x",
            "(?:x+)*y",
            "(.+)+end",
            "(a{2,})+",
        ],
    )
    def test_nested_quantifiers_flagged(self, pattern):
        assert is_catastrophic(pattern)

    @pytest.mark.parametrize("pattern", ["(a|ab)+c", "(x|x)*"])
    def test_overlapping_alternations_flagged(self, pattern):
        assert is_catastrophic(pattern)


class TestBenign:
    @pytest.mark.parametrize(
        "pattern",
        [
            r"[a-z0-9]+(?:[-'][a-z0-9]+)*",  # tokenizer: required separator
            r"^[a-zA-Z][a-zA-Z0-9+.-]*:",  # scheme prefix
            r"\d+\.\d+",
            "abc",
            "(ab|cd)+",  # disjoint first characters
            r"https?://",
        ],
    )
    def test_not_flagged(self, pattern):
        assert not is_catastrophic(pattern)


def test_explain_names_the_construct():
    assert "nested quantifier" in explain("(a+)+b")
    assert "alternation" in explain("(a|ab)+c")
