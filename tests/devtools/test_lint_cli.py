"""End-to-end tests of the lint CLI: exit codes, baseline, autofix."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.baseline import Baseline
from repro.devtools.lint import discover_files, lint_paths, main

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_violation_tree_fails_with_every_rule(self, capsys):
        status = main([str(VIOLATIONS), "--no-baseline"])
        out = capsys.readouterr().out
        assert status == 1
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006", "R007"):
            assert rule_id in out

    def test_clean_file_passes(self, capsys):
        assert main([str(FIXTURES / "clean.py"), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_syntax_error_reported_as_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert main([str(bad), "--no-baseline"]) == 1
        assert "E000" in capsys.readouterr().out

    def test_nonexistent_path_is_usage_error(self, capsys):
        assert main(["does/not/exist", "--no-baseline"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_repo_tree_is_clean_under_committed_baseline(self, capsys, monkeypatch):
        # Fingerprints record repo-relative paths, so lint from the root
        # exactly the way CI invokes it.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro"]) == 0


class TestJsonFormat:
    def test_json_payload_shape(self, capsys):
        status = main(
            [str(VIOLATIONS / "r001_exceptions.py"), "--no-baseline", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["baselined"] == 0
        (finding,) = payload["new"]
        assert finding["rule"] == "R001"
        assert finding["fixable"] is True
        assert finding["fingerprint"].startswith("R001|")


class TestBaselineWorkflow:
    def test_round_trip(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        write_status = main(
            [
                str(VIOLATIONS),
                "--baseline",
                str(baseline_path),
                "--write-baseline",
                "--justification",
                "fixture debt",
            ]
        )
        assert write_status == 0
        assert baseline_path.exists()

        capsys.readouterr()
        rerun_status = main([str(VIOLATIONS), "--baseline", str(baseline_path)])
        out = capsys.readouterr().out
        assert rerun_status == 0
        assert "baselined" in out

    def test_new_violation_still_fails(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        shutil.copy(VIOLATIONS / "r001_exceptions.py", tree / "old.py")
        baseline_path = tmp_path / "baseline.json"
        main([str(tree), "--baseline", str(baseline_path), "--write-baseline"])

        shutil.copy(VIOLATIONS / "r005_print.py", tree / "new.py")
        capsys.readouterr()
        assert main([str(tree), "--baseline", str(baseline_path)]) == 1
        assert "R005" in capsys.readouterr().out

    def test_stale_entries_warn(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        shutil.copy(VIOLATIONS / "r001_exceptions.py", tree / "old.py")
        baseline_path = tmp_path / "baseline.json"
        main([str(tree), "--baseline", str(baseline_path), "--write-baseline"])

        (tree / "old.py").write_text('"""Now clean."""\n')
        capsys.readouterr()
        assert main([str(tree), "--baseline", str(baseline_path)]) == 0
        assert "stale" in capsys.readouterr().out

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text("{not json")
        status = main(
            [str(FIXTURES / "clean.py"), "--baseline", str(baseline_path)]
        )
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_fingerprint_survives_line_shift(self, tmp_path):
        original = (VIOLATIONS / "r001_exceptions.py").read_text()
        target = tmp_path / "mod.py"
        target.write_text(original)
        baseline = Baseline.from_findings(lint_paths([str(target)]))

        shifted = original.replace(
            '"""Seeded R001 violation: raises a builtin exception."""',
            '"""Seeded R001 violation: raises a builtin exception."""\n\nPADDING = 1',
        )
        target.write_text(shifted)
        new, grandfathered = baseline.filter(lint_paths([str(target)]))
        assert new == []
        assert len(grandfathered) == 1


class TestAutofix:
    def test_fix_rewrites_raise_and_adds_import(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text((VIOLATIONS / "r001_exceptions.py").read_text())
        findings = lint_paths([str(target)], fix=True)
        fixed = target.read_text()
        assert "raise ValidationError(" in fixed
        assert "from repro.exceptions import ValidationError" in fixed
        assert all(f.rule != "R001" for f in findings)

    def test_fix_merges_existing_exceptions_import(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Doc."""\n\n'
            "from repro.exceptions import GraphError\n\n\n"
            "def f(flag: bool) -> None:\n"
            '    """Doc."""\n'
            "    if flag:\n"
            "        raise GraphError('g')\n"
            "    raise KeyError('k')\n"
        )
        lint_paths([str(target)], fix=True)
        fixed = target.read_text()
        assert "from repro.exceptions import GraphError, MissingKeyError" in fixed
        assert "raise MissingKeyError('k')" in fixed

    def test_fix_is_idempotent(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text((VIOLATIONS / "r001_exceptions.py").read_text())
        lint_paths([str(target)], fix=True)
        once = target.read_text()
        lint_paths([str(target)], fix=True)
        assert target.read_text() == once

    def test_fix_rewrites_mutated_default_to_sentinel(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text((VIOLATIONS / "r009_mutated_default.py").read_text())
        findings = lint_paths([str(target)], fix=True)
        fixed = target.read_text()
        assert "def gather(item, bucket=None):" in fixed
        assert "    if bucket is None:\n        bucket = []\n" in fixed
        # Guard lands below the docstring, not above it.
        assert '    """Count occurrences per name."""\n    if counts is None:' in fixed
        # The read-only near-miss keeps its (R004-suppressed) default.
        assert 'def read_only(labels=["a", "b"]):' in fixed
        assert all(f.rule != "R009" for f in findings)

    def test_r009_fix_is_idempotent(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text((VIOLATIONS / "r009_mutated_default.py").read_text())
        lint_paths([str(target)], fix=True)
        once = target.read_text()
        lint_paths([str(target)], fix=True)
        assert target.read_text() == once


class TestMachineFormats:
    def test_sarif_output(self, capsys):
        status = main(
            [str(VIOLATIONS / "r005_print.py"), "--no-baseline", "--format", "sarif"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
        assert any(
            r["ruleId"] == "R005" for r in doc["runs"][0]["results"]
        )

    def test_github_output(self, capsys):
        main([str(VIOLATIONS / "r005_print.py"), "--no-baseline", "--format", "github"])
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "R005" in out


class TestFixExitCode:
    def test_fix_applied_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text((VIOLATIONS / "r001_exceptions.py").read_text())
        status = main([str(target), "--no-baseline", "--fix"])
        assert status == 1
        assert "rewrote" in capsys.readouterr().err

    def test_fix_with_nothing_to_do_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean.py"), "--no-baseline", "--fix"]) == 0


class TestDiscovery:
    def test_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        found = discover_files([str(tmp_path)])
        assert [p.name for p in found] == ["real.py"]

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "R007" in out
