"""Tests for the Website model."""

import pytest

from repro.exceptions import DataGenerationError
from repro.web.page import WebPage
from repro.web.site import Website


def make_site():
    pages = (
        WebPage(
            url="https://www.pharm.com/",
            text="front page content",
            links=(
                "https://www.pharm.com/p1",
                "https://www.fda.gov/a",
                "https://www.fda.gov/b",
            ),
        ),
        WebPage(
            url="https://www.pharm.com/p1",
            text="product page content",
            links=("https://twitter.com/x", "https://www.fda.gov/c"),
        ),
    )
    return Website(domain="pharm.com", pages=pages)


class TestWebsite:
    def test_n_pages(self):
        assert make_site().n_pages == 2

    def test_merged_text_joins_all_pages(self):
        merged = make_site().merged_text()
        assert "front page content" in merged
        assert "product page content" in merged

    def test_outbound_endpoints_deduplicated_in_order(self):
        assert make_site().outbound_endpoints() == ("fda.gov", "twitter.com")

    def test_outbound_endpoint_counts(self):
        counts = make_site().outbound_endpoint_counts()
        assert counts["fda.gov"] == 3
        assert counts["twitter.com"] == 1

    def test_internal_links_not_in_endpoints(self):
        assert "pharm.com" not in make_site().outbound_endpoints()

    def test_front_page(self):
        assert make_site().front_page().url == "https://www.pharm.com/"

    def test_front_page_empty_site(self):
        assert Website(domain="pharm.com").front_page() is None

    def test_wrong_domain_page_rejected(self):
        page = WebPage(url="https://www.other.com/", text="x")
        with pytest.raises(DataGenerationError):
            Website(domain="pharm.com", pages=(page,))

    def test_empty_site_merged_text(self):
        assert Website(domain="pharm.com").merged_text() == ""

    def test_empty_site_endpoints(self):
        assert Website(domain="pharm.com").outbound_endpoints() == ()
