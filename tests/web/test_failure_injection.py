"""Failure-injection tests: the crawler against unreliable hosts."""

import numpy as np
import pytest

from repro.exceptions import CrawlError
from repro.web.crawler import Crawler
from repro.web.host import InMemoryWebHost
from repro.web.page import WebPage


class FlakyHost:
    """Wraps a host; every fetch fails with probability ``failure_rate``
    (deterministic given the seed), except an optional always-up set."""

    def __init__(self, inner, failure_rate=0.3, seed=0, always_up=()):
        self._inner = inner
        self._failure_rate = failure_rate
        self._rng = np.random.default_rng(seed)
        self._always_up = set(always_up)

    def fetch(self, url):
        if url not in self._always_up and self._rng.random() < self._failure_rate:
            return None
        return self._inner.fetch(url)


def star_host(n_leaves=10):
    """Front page linking to n leaf pages."""
    root_links = tuple(f"https://www.a.com/p{i}" for i in range(n_leaves))
    pages = [WebPage(url="https://www.a.com/", text="root", links=root_links)]
    pages.extend(
        WebPage(url=f"https://www.a.com/p{i}", text=f"leaf {i}")
        for i in range(n_leaves)
    )
    return InMemoryWebHost(pages)


class TestFlakyHost:
    def test_crawl_survives_partial_failures(self):
        host = FlakyHost(
            star_host(), failure_rate=0.4, seed=1,
            always_up=("https://www.a.com/",),
        )
        crawler = Crawler(host)
        site = crawler.crawl_site("https://www.a.com/")
        # Some leaves fail, but the crawl completes with what it got.
        assert 1 <= site.n_pages <= 11
        assert crawler.last_stats.fetch_failures >= 1

    def test_all_leaves_down_leaves_front_page(self):
        host = FlakyHost(
            star_host(), failure_rate=1.0, seed=0,
            always_up=("https://www.a.com/",),
        )
        site = Crawler(host).crawl_site("https://www.a.com/")
        assert site.n_pages == 1

    def test_dead_seed_raises(self):
        host = FlakyHost(star_host(), failure_rate=1.0, seed=0)
        with pytest.raises(CrawlError):
            Crawler(host).crawl_site("https://www.a.com/")

    def test_failed_pages_do_not_corrupt_site(self):
        host = FlakyHost(
            star_host(), failure_rate=0.5, seed=3,
            always_up=("https://www.a.com/",),
        )
        site = Crawler(host).crawl_site("https://www.a.com/")
        assert all(page.domain == "a.com" for page in site.pages)
        assert site.merged_text()  # the crawl yielded usable text

    def test_pipeline_tolerates_thin_crawls(self):
        """A site reduced to its front page still flows through
        summarization and classification without errors."""
        from repro.text import Summarizer

        host = FlakyHost(
            star_host(), failure_rate=1.0, seed=0,
            always_up=("https://www.a.com/",),
        )
        site = Crawler(host).crawl_site("https://www.a.com/")
        document = Summarizer(max_terms=100).summarize_site(site)
        assert document.domain == "a.com"
        assert len(document) >= 1
