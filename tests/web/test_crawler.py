"""Tests for the BFS crawler (paper protocol: no depth limit, max pages)."""

import pytest

from repro.exceptions import CrawlError
from repro.web.crawler import Crawler, DEFAULT_MAX_PAGES
from repro.web.host import InMemoryWebHost
from repro.web.page import WebPage


def chain_host(n_pages: int, domain: str = "a.com") -> InMemoryWebHost:
    """A site whose pages form a linked chain p0 -> p1 -> ... ."""
    pages = []
    for i in range(n_pages):
        url = f"https://www.{domain}/" if i == 0 else f"https://www.{domain}/p{i}"
        links = []
        if i + 1 < n_pages:
            links.append(f"https://www.{domain}/p{i + 1}")
        pages.append(WebPage(url=url, text=f"page {i}", links=tuple(links)))
    return InMemoryWebHost(pages)


class TestCrawler:
    def test_crawls_whole_chain(self):
        crawler = Crawler(chain_host(5))
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 5
        assert site.domain == "a.com"

    def test_bfs_order_front_page_first(self):
        site = Crawler(chain_host(3)).crawl_site("https://www.a.com/")
        assert site.pages[0].text == "page 0"
        assert [p.text for p in site.pages] == ["page 0", "page 1", "page 2"]

    def test_max_pages_cap(self):
        crawler = Crawler(chain_host(10), max_pages=4)
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 4
        assert crawler.last_stats.pages_skipped >= 1

    def test_default_cap_is_paper_200(self):
        assert DEFAULT_MAX_PAGES == 200
        assert Crawler(chain_host(1)).max_pages == 200

    def test_unknown_seed_raises(self):
        with pytest.raises(CrawlError):
            Crawler(chain_host(2)).crawl_site("https://www.missing.com/")

    def test_invalid_max_pages(self):
        with pytest.raises(CrawlError):
            Crawler(chain_host(1), max_pages=0)

    def test_cycle_does_not_loop(self):
        pages = [
            WebPage(
                url="https://www.a.com/",
                text="0",
                links=("https://www.a.com/p1",),
            ),
            WebPage(
                url="https://www.a.com/p1",
                text="1",
                links=("https://www.a.com/",),
            ),
        ]
        site = Crawler(InMemoryWebHost(pages)).crawl_site("https://www.a.com/")
        assert site.n_pages == 2

    def test_external_links_not_followed(self):
        pages = [
            WebPage(
                url="https://www.a.com/",
                text="0",
                links=("https://www.b.com/",),
            ),
            WebPage(url="https://www.b.com/", text="other site"),
        ]
        site = Crawler(InMemoryWebHost(pages)).crawl_site("https://www.a.com/")
        assert site.n_pages == 1
        assert site.outbound_endpoints() == ("b.com",)

    def test_broken_internal_links_counted(self):
        pages = [
            WebPage(
                url="https://www.a.com/",
                text="0",
                links=("https://www.a.com/missing",),
            )
        ]
        crawler = Crawler(InMemoryWebHost(pages))
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 1
        assert crawler.last_stats.fetch_failures == 1

    def test_stats_fields(self):
        crawler = Crawler(chain_host(3))
        crawler.crawl_site("https://www.a.com/")
        stats = crawler.last_stats
        assert stats.domain == "a.com"
        assert stats.pages_fetched == 3
        assert stats.pages_skipped == 0
        assert stats.fetch_failures == 0

    def test_seed_can_be_inner_page(self):
        site = Crawler(chain_host(4)).crawl_site("https://www.a.com/p2")
        # From p2 only p2 -> p3 are reachable.
        assert site.n_pages == 2
