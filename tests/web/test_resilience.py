"""Unit tests for the resilience substrate: clocks, retry policy,
circuit breaker, fault injection, and crawl checkpoints."""

import pytest

from repro.exceptions import (
    CheckpointError,
    PermanentFetchError,
    TransientFetchError,
    ValidationError,
)
from repro.web.host import InMemoryWebHost
from repro.web.page import WebPage
from repro.web.resilience import (
    CircuitBreaker,
    CrawlCheckpoint,
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SystemClock,
    VirtualClock,
    load_checkpoint,
    save_checkpoint,
)


def two_page_host():
    return InMemoryWebHost(
        [
            WebPage(
                url="https://www.a.com/",
                text="front page text",
                links=("https://www.a.com/p1", "https://www.a.com/p2"),
            ),
            WebPage(url="https://www.a.com/p1", text="inner page one"),
        ]
    )


class TestVirtualClock:
    def test_starts_at_origin(self):
        assert VirtualClock().monotonic() == 0.0
        assert VirtualClock(start=5.0).monotonic() == 5.0

    def test_sleep_advances_without_blocking(self):
        clock = VirtualClock()
        clock.sleep(2.5)
        clock.advance(1.5)
        assert clock.monotonic() == pytest.approx(4.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValidationError):
            VirtualClock().advance(-1.0)


class TestSystemClock:
    def test_monotonic_is_nondecreasing(self):
        clock = SystemClock()
        first = clock.monotonic()
        assert clock.monotonic() >= first

    def test_negative_sleep_is_clamped(self):
        SystemClock().sleep(-10.0)  # must neither raise nor block


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0, jitter=0.0)
        rng = policy.rng()
        assert policy.backoff(1, rng) == pytest.approx(1.0)
        assert policy.backoff(2, rng) == pytest.approx(2.0)
        assert policy.backoff(3, rng) == pytest.approx(3.0)  # capped
        assert policy.backoff(9, rng) == pytest.approx(3.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.2)
        rng = policy.rng()
        for _ in range(50):
            assert 0.8 <= policy.backoff(1, rng) <= 1.2

    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(seed=42)
        first = [policy.backoff(i, policy.rng()) for i in (1, 2)]
        second = [policy.backoff(i, policy.rng()) for i in (1, 2)]
        assert first == second

    def test_retry_index_must_be_positive(self):
        policy = RetryPolicy()
        with pytest.raises(ValidationError):
            policy.backoff(0, policy.rng())


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            assert breaker.allow("a.com")
            breaker.record_failure("a.com")
        assert breaker.state("a.com") == "open"
        assert not breaker.allow("a.com")

    def test_cooldown_allows_half_open_probe(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0, clock=clock)
        breaker.record_failure("a.com")
        assert not breaker.allow("a.com")
        clock.advance(10.0)
        assert breaker.allow("a.com")
        assert breaker.state("a.com") == "half-open"

    def test_probe_success_closes(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure("a.com")
        clock.advance(1.0)
        assert breaker.allow("a.com")
        breaker.record_success("a.com")
        assert breaker.state("a.com") == "closed"
        assert breaker.allow("a.com")

    def test_probe_failure_reopens_immediately(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=5, reset_after=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure("a.com")
        clock.advance(1.0)
        assert breaker.allow("a.com")  # half-open probe
        breaker.record_failure("a.com")  # one failure re-opens
        assert breaker.state("a.com") == "open"
        assert not breaker.allow("a.com")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("a.com")
        assert not breaker.allow("a.com")
        assert breaker.allow("b.com")

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_after=-1.0)


class TestFaultPlan:
    def test_lookup_is_normalization_invariant(self):
        plan = FaultPlan()
        plan.add("https://www.a.com/p1/", FaultSpec(FaultKind.PERMANENT))
        assert plan.spec_for("https://www.a.com/p1") is not None
        assert "https://www.a.com/p1" in plan

    def test_seeded_is_deterministic(self):
        urls = [f"https://www.a.com/p{i}" for i in range(50)]
        one = FaultPlan.seeded(urls, seed=3, transient_rate=0.4)
        two = FaultPlan.seeded(list(reversed(urls)), seed=3, transient_rate=0.4)
        assert one.items() == two.items()

    def test_seeded_rate_one_hits_every_url(self):
        urls = [f"https://www.a.com/p{i}" for i in range(10)]
        plan = FaultPlan.seeded(urls, seed=0, transient_rate=1.0)
        assert len(plan) == 10
        assert all(spec.kind is FaultKind.TRANSIENT for _, spec in plan.items())

    def test_rates_over_one_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.seeded(["https://www.a.com/"], transient_rate=0.7,
                             permanent_rate=0.7)

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.TRANSIENT, recover_after=0)
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.TRUNCATE, keep_fraction=1.5)


class TestFaultInjectingWebHost:
    def test_transient_recovers_after_k_attempts(self):
        plan = FaultPlan()
        plan.add("https://www.a.com/", FaultSpec(FaultKind.TRANSIENT, recover_after=2))
        host = FaultInjectingWebHost(two_page_host(), plan)
        for _ in range(2):
            with pytest.raises(TransientFetchError):
                host.fetch("https://www.a.com/")
        page = host.fetch("https://www.a.com/")
        assert page is not None and page.text == "front page text"

    def test_permanent_never_recovers(self):
        plan = FaultPlan()
        plan.add("https://www.a.com/", FaultSpec(FaultKind.PERMANENT))
        host = FaultInjectingWebHost(two_page_host(), plan)
        for _ in range(5):
            with pytest.raises(PermanentFetchError):
                host.fetch("https://www.a.com/")

    def test_slow_advances_shared_clock(self):
        clock = VirtualClock()
        plan = FaultPlan()
        plan.add("https://www.a.com/", FaultSpec(FaultKind.SLOW, delay=7.0))
        host = FaultInjectingWebHost(two_page_host(), plan, clock=clock)
        assert host.fetch("https://www.a.com/") is not None
        assert clock.monotonic() == pytest.approx(7.0)

    def test_truncate_cuts_text_and_links(self):
        plan = FaultPlan()
        plan.add(
            "https://www.a.com/", FaultSpec(FaultKind.TRUNCATE, keep_fraction=0.5)
        )
        host = FaultInjectingWebHost(two_page_host(), plan)
        page = host.fetch("https://www.a.com/")
        assert page.text == "front p"  # half of 15 chars, floored
        assert len(page.links) == 1

    def test_garble_mangles_but_serves(self):
        plan = FaultPlan()
        plan.add("https://www.a.com/p1", FaultSpec(FaultKind.GARBLE))
        host = FaultInjectingWebHost(two_page_host(), plan)
        page = host.fetch("https://www.a.com/p1")
        assert page is not None
        assert page.text != "inner page one"
        assert "�" in page.text

    def test_flapping_alternates_phases(self):
        plan = FaultPlan()
        plan.add("https://www.a.com/", FaultSpec(FaultKind.FLAPPING, period=2))
        host = FaultInjectingWebHost(two_page_host(), plan)
        outcomes = []
        for _ in range(6):
            try:
                outcomes.append(host.fetch("https://www.a.com/") is not None)
            except TransientFetchError:
                outcomes.append(False)
        assert outcomes == [False, False, True, True, False, False]

    def test_attempt_accounting(self):
        host = FaultInjectingWebHost(two_page_host(), FaultPlan())
        host.fetch("https://www.a.com/")
        host.fetch("https://www.a.com/")
        host.fetch("https://www.a.com/p1")
        assert host.attempts["www.a.com/"] == 2
        assert host.total_attempts() == 3


class TestCheckpoint:
    def make_checkpoint(self):
        return CrawlCheckpoint(
            seed_url="https://www.a.com/",
            domain="a.com",
            pages=(
                WebPage(
                    url="https://www.a.com/",
                    text="root",
                    links=("https://www.a.com/p1",),
                ),
            ),
            visited=frozenset({"a.com/", "a.com/p1"}),
            frontier=("https://www.a.com/p1",),
            counters={"retries": 2},
            failed_urls=("https://www.a.com/dead",),
        )

    def test_json_round_trip(self):
        checkpoint = self.make_checkpoint()
        restored = CrawlCheckpoint.from_json(checkpoint.to_json())
        assert restored == checkpoint

    def test_malformed_json_raises(self):
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.from_json("{not json")

    def test_wrong_format_raises(self):
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.from_json('{"format": "something-else"}')

    def test_version_skew_raises(self):
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.from_json(
                '{"format": "repro-crawl-checkpoint", "version": 99}'
            )

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "crawl.ckpt"
        checkpoint = self.make_checkpoint()
        save_checkpoint(checkpoint, path)
        assert load_checkpoint(path) == checkpoint
        # The atomic write leaves no temp file behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.ckpt")
