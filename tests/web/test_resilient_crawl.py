"""Adversarial and fault-injection crawl tests.

The resilient crawler against scripted failures (:class:`FaultPlan`),
hostile page graphs (redirect loops, link farms), interruption
(deadlines, fetch budgets), and checkpoint resume — plus the
determinism soak: identical seeds and fault plans must yield
byte-identical crawl statistics and verification reports.
"""

import numpy as np
import pytest

from repro.core.verifier import PharmacyVerifier
from repro.exceptions import CheckpointError, CrawlError
from repro.web.crawler import Crawler
from repro.web.host import InMemoryWebHost
from repro.web.page import WebPage
from repro.web.resilience import (
    CircuitBreaker,
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    VirtualClock,
)


def star_host(n_leaves=20, domain="a.com"):
    """Front page linking to ``n_leaves`` leaf pages."""
    root_links = tuple(f"https://www.{domain}/p{i}" for i in range(n_leaves))
    pages = [WebPage(url=f"https://www.{domain}/", text="root", links=root_links)]
    pages.extend(
        WebPage(url=f"https://www.{domain}/p{i}", text=f"leaf {i}")
        for i in range(n_leaves)
    )
    return InMemoryWebHost(pages)


def page_urls(site):
    return sorted(page.url for page in site.pages)


class TestAdversarialGraphs:
    def test_redirect_loop_terminates(self):
        """A two-page loop whose links vary in scheme, case, trailing
        slash, and query string must not revisit pages."""
        pages = [
            WebPage(
                url="https://www.a.com/",
                text="front",
                links=("http://WWW.A.COM/loop/",),
            ),
            WebPage(
                url="https://www.a.com/loop",
                text="loop",
                links=("HTTPS://www.a.com/?revisit=1", "https://www.a.com/loop"),
            ),
        ]
        crawler = Crawler(InMemoryWebHost(pages))
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 2

    def test_self_linking_page_fetched_once(self):
        pages = [
            WebPage(
                url="https://www.a.com/",
                text="narcissus",
                links=("https://www.a.com/", "https://www.a.com/#top"),
            )
        ]
        host = FaultInjectingWebHost(InMemoryWebHost(pages), FaultPlan())
        Crawler(host).crawl_site("https://www.a.com/")
        assert host.total_attempts() == 1

    def test_link_farm_fan_out_capped(self):
        """A page carrying far more links than the per-page cap bounds
        frontier growth; the overflow is counted, not followed."""
        farm_links = tuple(f"https://www.a.com/x{i}" for i in range(500))
        pages = [WebPage(url="https://www.a.com/", text="farm", links=farm_links)]
        pages.extend(
            WebPage(url=f"https://www.a.com/x{i}", text=f"x{i}") for i in range(500)
        )
        crawler = Crawler(InMemoryWebHost(pages), max_links_per_page=100)
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 101  # root + exactly the capped fan-out
        assert crawler.last_stats.links_rejected == 400


class TestSeedRetry:
    def plan(self):
        plan = FaultPlan()
        plan.add(
            "https://www.a.com/", FaultSpec(FaultKind.TRANSIENT, recover_after=1)
        )
        return plan

    def test_seed_down_then_up_needs_retry_policy(self):
        host = FaultInjectingWebHost(star_host(3), self.plan())
        with pytest.raises(CrawlError):
            Crawler(host).crawl_site("https://www.a.com/")

    def test_seed_recovers_on_second_attempt(self):
        host = FaultInjectingWebHost(star_host(3), self.plan())
        crawler = Crawler(host, retry_policy=RetryPolicy(max_attempts=2))
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 4
        stats = crawler.last_stats
        assert stats.retries >= 1
        assert stats.transient_recovered >= 1
        assert not stats.is_partial


class TestGracefulDegradation:
    def test_heavy_transient_plan_converges_to_fault_free(self):
        """Acceptance: under a >=30% transient fault plan, a retried
        crawl fetches exactly the fault-free page set."""
        clean = Crawler(star_host()).crawl_site("https://www.a.com/")
        plan = FaultPlan.seeded(
            star_host().urls(), seed=5, transient_rate=0.35, max_recover_after=2
        )
        host = FaultInjectingWebHost(star_host(), plan)
        crawler = Crawler(host, retry_policy=RetryPolicy(max_attempts=4))
        site = crawler.crawl_site("https://www.a.com/")
        assert page_urls(site) == page_urls(clean)
        assert crawler.last_stats.transient_recovered >= 1

    def test_permanent_failures_thin_not_abort(self):
        plan = FaultPlan()
        for i in (1, 4, 7):
            plan.add(f"https://www.a.com/p{i}", FaultSpec(FaultKind.PERMANENT))
        host = FaultInjectingWebHost(star_host(10), plan)
        crawler = Crawler(host, retry_policy=RetryPolicy(max_attempts=2))
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 8  # root + 7 healthy leaves
        stats = crawler.last_stats
        assert stats.permanent_failures == 3
        assert len(stats.failed_urls) == 3
        assert stats.is_partial
        assert stats.error_taxonomy()["permanent"] == 3

    def test_circuit_breaker_fails_fast(self):
        plan = FaultPlan()
        for i in range(10):
            plan.add(f"https://www.a.com/p{i}", FaultSpec(FaultKind.PERMANENT))
        host = FaultInjectingWebHost(star_host(10), plan)
        breaker = CircuitBreaker(failure_threshold=3, reset_after=1e9)
        crawler = Crawler(host, breaker=breaker)
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 1
        stats = crawler.last_stats
        assert stats.circuit_rejections == 7  # 3 failures trip, 7 rejected
        assert breaker.state("a.com") == "open"
        # Rejected fetches never reached the host.
        assert host.total_attempts() == 4

    def test_truncated_and_garbled_pages_still_crawl(self):
        plan = FaultPlan()
        plan.add(
            "https://www.a.com/p0",
            FaultSpec(FaultKind.TRUNCATE, keep_fraction=0.0),
        )
        plan.add("https://www.a.com/p1", FaultSpec(FaultKind.GARBLE))
        host = FaultInjectingWebHost(star_host(3), plan)
        site = Crawler(host).crawl_site("https://www.a.com/")
        assert site.n_pages == 4
        truncated = next(p for p in site.pages if p.url.endswith("/p0"))
        assert truncated.text == ""


class TestDeterministicSoak:
    def run_once(self):
        base = star_host()
        plan = FaultPlan.seeded(
            base.urls(),
            seed=9,
            transient_rate=0.3,
            permanent_rate=0.1,
            truncate_rate=0.1,
        )
        host = FaultInjectingWebHost(base, plan)
        crawler = Crawler(host, retry_policy=RetryPolicy(max_attempts=3, seed=2))
        site = crawler.crawl_site("https://www.a.com/")
        return site, crawler.last_stats, host.attempts

    def test_same_seed_and_plan_identical_stats(self):
        site1, stats1, attempts1 = self.run_once()
        site2, stats2, attempts2 = self.run_once()
        assert stats1 == stats2  # full dataclass equality, failed_urls included
        assert page_urls(site1) == page_urls(site2)
        assert attempts1 == attempts2


class TestDeadlineAndBudget:
    def test_slow_host_hits_deadline_gracefully(self):
        clock = VirtualClock()
        plan = FaultPlan()
        for i in range(20):
            plan.add(
                f"https://www.a.com/p{i}", FaultSpec(FaultKind.SLOW, delay=5.0)
            )
        host = FaultInjectingWebHost(star_host(), plan, clock=clock)
        crawler = Crawler(host, clock=clock, deadline=12.0)
        site = crawler.crawl_site("https://www.a.com/")
        assert crawler.last_stats.deadline_hit
        assert crawler.last_stats.is_partial
        assert 1 <= site.n_pages < 21

    def test_fetch_budget_interrupts(self):
        crawler = Crawler(star_host(), fetch_budget=5)
        site = crawler.crawl_site("https://www.a.com/")
        assert site.n_pages == 5
        assert crawler.last_stats.budget_exhausted
        assert crawler.last_stats.is_partial


class TestCheckpointResume:
    def test_resume_never_refetches_completed_pages(self, tmp_path):
        """Acceptance: an interrupted crawl resumes from its checkpoint
        and fetches only URLs the first pass did not complete."""
        path = tmp_path / "crawl.ckpt"
        host = FaultInjectingWebHost(star_host(), FaultPlan())
        first = Crawler(
            host, fetch_budget=6, checkpoint_path=path, checkpoint_every=2
        )
        partial = first.crawl_site("https://www.a.com/")
        assert first.last_stats.budget_exhausted
        assert path.exists()
        fetched_first = {page.url for page in partial.pages}

        resumed = Crawler(host, checkpoint_path=path)
        site = resumed.crawl_site("https://www.a.com/")
        assert resumed.last_stats.resumed
        assert page_urls(site) == page_urls(
            Crawler(star_host()).crawl_site("https://www.a.com/")
        )
        assert fetched_first <= {page.url for page in site.pages}
        # Every URL was fetched exactly once across both passes.
        assert set(host.attempts.values()) == {1}
        # A completed crawl removes its checkpoint.
        assert not path.exists()

    def test_checkpoint_for_other_site_rejected(self, tmp_path):
        path = tmp_path / "crawl.ckpt"
        interrupted = Crawler(
            star_host(), fetch_budget=3, checkpoint_path=path, checkpoint_every=1
        )
        interrupted.crawl_site("https://www.a.com/")
        assert path.exists()
        other = Crawler(star_host(domain="b.net"), checkpoint_path=path)
        with pytest.raises(CheckpointError):
            other.crawl_site("https://www.b.net/")


@pytest.fixture(scope="module")
def fitted_verifier(tiny_corpus):
    train = tiny_corpus.subset(np.arange(0, len(tiny_corpus), 2))
    return PharmacyVerifier(seed=0).fit(train)


class TestDegradedVerification:
    def faulted_host(self, snapshot, domain, seed=0):
        """The snapshot host with permanent faults on the target
        domain's inner pages (the seed stays up)."""
        seed_url = f"https://www.{domain}/"
        inner = [
            url
            for url in snapshot.host.urls()
            if domain in url and url != seed_url
        ]
        plan = FaultPlan()
        for url in inner:
            plan.add(url, FaultSpec(FaultKind.PERMANENT))
        return FaultInjectingWebHost(snapshot.host, plan)

    def test_partial_crawl_degrades_but_reports(
        self, fitted_verifier, tiny_snapshot_pair, tiny_corpus
    ):
        """Acceptance: the verifier on a partially acquired site returns
        a degraded report instead of raising."""
        snap1, _ = tiny_snapshot_pair
        domain = tiny_corpus.domains[1]
        host = self.faulted_host(snap1, domain)
        report = fitted_verifier.verify_url(
            host, f"https://www.{domain}/", retry_policy=RetryPolicy(max_attempts=2)
        )
        assert report.domain == domain
        assert report.degraded
        assert "partial_crawl" in report.degradation_reasons
        assert report.confidence < 1.0

    def test_degraded_reports_are_deterministic(
        self, fitted_verifier, tiny_snapshot_pair, tiny_corpus
    ):
        snap1, _ = tiny_snapshot_pair
        domain = tiny_corpus.domains[2]
        reports = [
            fitted_verifier.verify_url(
                self.faulted_host(snap1, domain),
                f"https://www.{domain}/",
                retry_policy=RetryPolicy(max_attempts=2, seed=1),
            )
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_healthy_site_is_not_degraded(self, fitted_verifier, tiny_corpus):
        report = fitted_verifier.verify_site(tiny_corpus.sites[3])
        assert not report.degraded
        assert report.confidence == pytest.approx(1.0)
        assert report.degradation_reasons == ()
