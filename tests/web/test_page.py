"""Tests for the WebPage model."""

import pytest

from repro.exceptions import InvalidURLError
from repro.web.page import WebPage


def make_page(**kwargs):
    defaults = dict(
        url="https://www.pharm.com/",
        text="hello",
        links=(
            "https://www.pharm.com/about",
            "https://www.pharm.com/products",
            "https://www.fda.gov/info",
            "https://twitter.com/pharm",
        ),
    )
    defaults.update(kwargs)
    return WebPage(**defaults)


class TestWebPage:
    def test_domain(self):
        assert make_page().domain == "pharm.com"

    def test_invalid_url_rejected_eagerly(self):
        with pytest.raises(InvalidURLError):
            WebPage(url="not a url", text="x")

    def test_internal_links(self):
        internal = make_page().internal_links()
        assert internal == (
            "https://www.pharm.com/about",
            "https://www.pharm.com/products",
        )

    def test_external_links(self):
        external = make_page().external_links()
        assert external == (
            "https://www.fda.gov/info",
            "https://twitter.com/pharm",
        )

    def test_subdomain_counts_as_internal(self):
        page = make_page(links=("https://shop.pharm.com/cart",))
        assert page.internal_links() == ("https://shop.pharm.com/cart",)
        assert page.external_links() == ()

    def test_unresolvable_links_ignored(self):
        page = make_page(links=("mailto:x@y.com", "javascript:void(0)", "tel:911"))
        assert page.internal_links() == ()
        assert page.external_links() == ()

    def test_bare_token_treated_as_relative_path(self):
        page = make_page(links=("not-a-url",))
        assert page.internal_links() == ("https://www.pharm.com/not-a-url",)

    def test_no_links(self):
        page = make_page(links=())
        assert page.internal_links() == ()
        assert page.external_links() == ()

    def test_frozen(self):
        page = make_page()
        with pytest.raises(AttributeError):
            page.text = "other"  # type: ignore[misc]

    def test_default_links_empty(self):
        page = WebPage(url="https://www.pharm.com/", text="x")
        assert page.links == ()


class TestRelativeLinks:
    def test_relative_links_resolved_as_internal(self):
        page = WebPage(
            url="https://www.pharm.com/shop/item",
            text="x",
            links=("/cart", "reviews", "../about"),
        )
        assert page.internal_links() == (
            "https://www.pharm.com/cart",
            "https://www.pharm.com/shop/reviews",
            "https://www.pharm.com/about",
        )

    def test_protocol_relative_external(self):
        page = WebPage(
            url="https://www.pharm.com/",
            text="x",
            links=("//cdn.net/script.js",),
        )
        assert page.external_links() == ("https://cdn.net/script.js",)

    def test_resolved_links_drops_garbage(self):
        page = WebPage(
            url="https://www.pharm.com/",
            text="x",
            links=("mailto:a@b.com", "javascript:void(0)", "/ok"),
        )
        assert page.resolved_links() == ("https://www.pharm.com/ok",)
