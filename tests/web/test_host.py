"""Tests for the in-memory web host."""

from repro.web.host import InMemoryWebHost, WebHost
from repro.web.page import WebPage


def page(url, text="x"):
    return WebPage(url=url, text=text)


class TestInMemoryWebHost:
    def test_add_and_fetch(self):
        host = InMemoryWebHost()
        host.add(page("https://www.a.com/"))
        fetched = host.fetch("https://www.a.com/")
        assert fetched is not None
        assert fetched.url == "https://www.a.com/"

    def test_fetch_missing_returns_none(self):
        assert InMemoryWebHost().fetch("https://www.a.com/") is None

    def test_fetch_malformed_returns_none(self):
        assert InMemoryWebHost().fetch("garbage") is None

    def test_trailing_slash_normalized(self):
        host = InMemoryWebHost([page("https://www.a.com/p")])
        assert host.fetch("https://www.a.com/p/") is not None

    def test_query_and_fragment_ignored_on_lookup(self):
        host = InMemoryWebHost([page("https://www.a.com/p")])
        assert host.fetch("https://www.a.com/p?x=1#frag") is not None

    def test_scheme_irrelevant_for_lookup(self):
        host = InMemoryWebHost([page("https://www.a.com/p")])
        assert host.fetch("http://www.a.com/p") is not None

    def test_later_add_wins(self):
        host = InMemoryWebHost()
        host.add(page("https://www.a.com/", "old"))
        host.add(page("https://www.a.com/", "new"))
        assert host.fetch("https://www.a.com/").text == "new"

    def test_len_and_contains(self):
        host = InMemoryWebHost([page("https://www.a.com/"), page("https://www.b.com/")])
        assert len(host) == 2
        assert "https://www.a.com/" in host
        assert "https://www.c.com/" not in host

    def test_urls_listing(self):
        host = InMemoryWebHost([page("https://www.a.com/")])
        assert host.urls() == ("https://www.a.com/",)

    def test_satisfies_webhost_protocol(self):
        assert isinstance(InMemoryWebHost(), WebHost)
