"""Tests for URL parsing and endpoint extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import InvalidURLError
from repro.web.url import ParsedURL, endpoint, parse_url, same_domain


class TestParseURL:
    def test_basic_http(self):
        parsed = parse_url("http://example.com/path")
        assert parsed.scheme == "http"
        assert parsed.host == "example.com"
        assert parsed.path == "/path"

    def test_https(self):
        assert parse_url("https://example.com/").scheme == "https"

    def test_host_lowercased(self):
        assert parse_url("http://Example.COM/x").host == "example.com"

    def test_no_path_defaults_to_slash(self):
        assert parse_url("http://example.com").path == "/"

    def test_query_stripped(self):
        assert parse_url("http://example.com/a?b=c").path == "/a"

    def test_fragment_stripped(self):
        assert parse_url("http://example.com/a#frag").path == "/a"

    def test_port_dropped(self):
        assert parse_url("http://example.com:8080/a").host == "example.com"

    def test_str_roundtrip(self):
        parsed = parse_url("https://www.example.com/a/b")
        assert str(parsed) == "https://www.example.com/a/b"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "example.com/path",  # no scheme
            "ftp://example.com/",  # unsupported scheme
            "http:///path",  # empty host
            "http://host..dots/",  # empty label
            "http://localhost/",  # no dot
        ],
    )
    def test_invalid_urls_raise(self, bad):
        with pytest.raises(InvalidURLError):
            parse_url(bad)

    def test_non_string_raises(self):
        with pytest.raises(InvalidURLError):
            parse_url(None)  # type: ignore[arg-type]


class TestEndpoint:
    def test_plain_domain(self):
        assert endpoint("http://example.com/") == "example.com"

    def test_www_stripped_to_sld(self):
        assert endpoint("http://www.fda.gov/consumers/page.htm") == "fda.gov"

    def test_deep_subdomain(self):
        assert endpoint("https://a.b.c.example.com/") == "example.com"

    def test_multi_part_suffix(self):
        assert endpoint("http://shop.example.co.uk/x") == "example.co.uk"

    def test_paper_examples(self):
        assert (
            endpoint("http://www.medicalnewstoday.com/articles/238663.php")
            == "medicalnewstoday.com"
        )
        assert (
            endpoint(
                "http://www.fda.gov/forconsumers/consumerupdates/ucm149202.htm"
            )
            == "fda.gov"
        )

    def test_bare_multi_part_suffix_raises(self):
        with pytest.raises(InvalidURLError):
            endpoint("http://co.uk/")

    def test_hyphenated_domain(self):
        assert (
            endpoint("https://www.securebilling-page.com/pay")
            == "securebilling-page.com"
        )


class TestSameDomain:
    def test_same(self):
        assert same_domain("http://a.x.com/1", "https://b.x.com/2")

    def test_different(self):
        assert not same_domain("http://x.com/", "http://y.com/")


class TestRegisteredDomainProperty:
    def test_parsed_url_exposes_registered_domain(self):
        assert (
            parse_url("https://news.example.com/x").registered_domain
            == "example.com"
        )

    def test_frozen(self):
        parsed = parse_url("http://example.com/")
        with pytest.raises(AttributeError):
            parsed.host = "other.com"  # type: ignore[misc]


_label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789"),
    min_size=1,
    max_size=8,
)


@given(sub=_label, dom=_label, tld=st.sampled_from(["com", "net", "org", "gov"]))
def test_endpoint_drops_any_subdomain(sub, dom, tld):
    """Property: endpoint(sub.dom.tld) == dom.tld for plain TLDs."""
    assert endpoint(f"http://{sub}.{dom}.{tld}/p") == f"{dom}.{tld}"


@given(dom=_label, tld=st.sampled_from(["com", "net", "org"]))
def test_endpoint_idempotent(dom, tld):
    """Property: applying endpoint to an endpoint-URL is a fixpoint."""
    first = endpoint(f"https://{dom}.{tld}/")
    assert endpoint(f"https://{first}/") == first


class TestResolveURL:
    def test_absolute_passthrough(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/x", "http://b.com/y")
            == "http://b.com/y"
        )

    def test_root_relative(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/deep/page", "/cart")
            == "https://www.a.com/cart"
        )

    def test_path_relative(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/shop/item", "reviews")
            == "https://www.a.com/shop/reviews"
        )

    def test_parent_traversal(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/a/b/c", "../../d")
            == "https://www.a.com/d"
        )

    def test_parent_traversal_beyond_root_clamped(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/a", "../../../x")
            == "https://www.a.com/x"
        )

    def test_protocol_relative(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/", "//cdn.net/lib.js")
            == "https://cdn.net/lib.js"
        )

    def test_fragment_only_resolves_to_page(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/page", "#top")
            == "https://www.a.com/page"
        )

    def test_query_stripped(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/x", "/search?q=1")
            == "https://www.a.com/search"
        )

    def test_trailing_slash_kept(self):
        from repro.web.url import resolve_url

        assert (
            resolve_url("https://www.a.com/x", "/dir/")
            == "https://www.a.com/dir/"
        )

    def test_mailto_rejected(self):
        from repro.web.url import resolve_url

        with pytest.raises(InvalidURLError):
            resolve_url("https://www.a.com/", "mailto:x@y.com")

    def test_empty_rejected(self):
        from repro.web.url import resolve_url

        with pytest.raises(InvalidURLError):
            resolve_url("https://www.a.com/", "   ")
