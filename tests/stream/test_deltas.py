"""Snapshot-delta planning and the mutable stream corpus."""

from __future__ import annotations

import pytest

from repro.data.deltas import (
    DELTAS_FILENAME,
    SnapshotDelta,
    StreamConfig,
    StreamCorpus,
    epoch_domain_names,
    load_deltas,
    plan_deltas,
    write_deltas,
)
from repro.data.sharding import ShardedCorpus, plan_domains, write_shards
from repro.exceptions import ValidationError
from repro.io import PersistenceError

from tests.stream.conftest import STREAM_CFG, STREAM_GEN


class TestPlanning:
    def test_plan_is_deterministic(self, stream_deltas):
        assert plan_deltas(STREAM_GEN, STREAM_CFG) == stream_deltas

    def test_epochs_are_sequential_and_timestamped(self, stream_deltas):
        assert [d.epoch for d in stream_deltas] == list(
            range(1, STREAM_CFG.n_ticks + 1)
        )
        for delta in stream_deltas:
            assert delta.timestamp_days == delta.epoch * STREAM_CFG.tick_days

    def test_legitimate_sites_never_die(self, stream_deltas):
        legit, _, _ = plan_domains(STREAM_GEN, 1)
        removed = {d for delta in stream_deltas for d in delta.removed}
        assert not removed & set(legit)

    def test_births_are_epoch_tagged(self, stream_deltas):
        for delta in stream_deltas:
            for domain in delta.added:
                assert f"-t{delta.epoch}x" in domain

    def test_drift_and_rewire_are_exclusive_per_tick(self, stream_deltas):
        for delta in stream_deltas:
            assert not set(delta.drifted) & set(delta.rewired)

    def test_epoch_domain_names_rejects_epoch_zero(self):
        with pytest.raises(ValidationError):
            epoch_domain_names(0, 3)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            StreamConfig(n_ticks=-1)
        with pytest.raises(ValidationError):
            StreamConfig(death_fraction=1.5)


class TestPersistence:
    def test_round_trip(self, tmp_path, stream_deltas):
        path = tmp_path / DELTAS_FILENAME
        write_deltas(path, stream_deltas, STREAM_CFG)
        loaded, config = load_deltas(path)
        assert loaded == stream_deltas
        assert config == STREAM_CFG

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_deltas(tmp_path / "nope.json")

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other", "version": 1}')
        with pytest.raises(PersistenceError):
            load_deltas(path)


class TestStreamCorpus:
    def test_apply_enforces_epoch_order(self, stream_corpus, stream_deltas):
        with pytest.raises(ValidationError):
            stream_corpus.apply(stream_deltas[1])
        stream_corpus.apply(stream_deltas[0])
        assert stream_corpus.epoch == 1
        with pytest.raises(ValidationError):
            stream_corpus.apply(stream_deltas[0])

    def test_apply_updates_membership(self, stream_corpus, stream_deltas):
        for delta in stream_deltas:
            before = set(stream_corpus.domains())
            applied = stream_corpus.apply(delta)
            after = set(stream_corpus.domains())
            assert after == (before - set(delta.removed)) | set(delta.added)
            assert applied.changed == delta.changed

    def test_removed_domains_404(self, stream_corpus, stream_deltas):
        removed = None
        for delta in stream_deltas:
            urls = {
                d: stream_corpus.seed_url(d)
                for d in delta.removed
                if d in stream_corpus
            }
            stream_corpus.apply(delta)
            for domain, url in urls.items():
                removed = domain
                assert stream_corpus.fetch(url) is None
        assert removed is not None, "fixture stream planned no takedowns"

    def test_changed_sites_bump_revision(self, stream_corpus, stream_deltas):
        delta = stream_deltas[0]
        revisions = {
            d: stream_corpus.revision_of(d)
            for d in delta.drifted + delta.rewired
        }
        stream_corpus.apply(delta)
        for domain, before in revisions.items():
            assert stream_corpus.revision_of(domain) == before + 1

    def test_fetch_serves_current_pages(self, stream_corpus):
        domain = stream_corpus.domains()[0]
        page = stream_corpus.fetch(stream_corpus.seed_url(domain))
        assert page is not None
        assert page.url.endswith("/")

    def test_replay_is_deterministic(self, stream_deltas):
        first = StreamCorpus.generate(STREAM_GEN)
        second = StreamCorpus.generate(STREAM_GEN)
        for delta in stream_deltas:
            first.apply(delta)
            second.apply(delta)
        assert first.domains() == second.domains()
        for a, b in zip(first.iter_sites(), second.iter_sites()):
            assert a == b


class TestShardInvariance:
    @pytest.mark.parametrize("n_shards,jobs", [(1, 1), (3, 2)])
    def test_from_sharded_matches_generate(self, tmp_path, n_shards, jobs):
        write_shards(STREAM_GEN, tmp_path / "shards", n_shards, jobs=jobs)
        sharded = StreamCorpus.from_sharded(ShardedCorpus(tmp_path / "shards"))
        direct = StreamCorpus.generate(STREAM_GEN)
        assert set(sharded.domains()) == set(direct.domains())
        for domain in direct.domains():
            assert sharded.site_for(domain) == direct.site_for(domain)
            assert sharded.record_for(domain) == direct.record_for(domain)

    def test_delta_replay_identical_across_shard_counts(
        self, tmp_path, stream_deltas
    ):
        write_shards(STREAM_GEN, tmp_path / "shards", 3, jobs=2)
        sharded = StreamCorpus.from_sharded(ShardedCorpus(tmp_path / "shards"))
        direct = StreamCorpus.generate(STREAM_GEN)
        for delta in stream_deltas:
            sharded.apply(delta)
            direct.apply(delta)
        assert set(sharded.domains()) == set(direct.domains())
        for domain in direct.domains():
            assert sharded.site_for(domain) == direct.site_for(domain)


def test_snapshot_delta_round_trips_as_dict():
    delta = SnapshotDelta(
        epoch=3,
        timestamp_days=21.0,
        added=("a.net",),
        removed=("b.net",),
        drifted=("c.net",),
        rewired=("d.net",),
    )
    assert SnapshotDelta.from_dict(delta.as_dict()) == delta
    assert delta.changed == ("a.net", "c.net", "d.net")
    assert delta.n_changes == 4
