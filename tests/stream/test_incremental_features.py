"""Property tests: incremental feature state equals a from-scratch fit.

The random-sequence properties are the heart of the stream layer's
contract: after any interleaving of add/remove/replace, the maintained
document frequencies are *bit-equal* to a fresh count of the surviving
membership, and the maintained class-graph means agree with the
independent :func:`~repro.stream.features.mean_class_graphs` oracle
within float reassociation error.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import MissingKeyError, ValidationError
from repro.stream.features import (
    IncrementalClassGraphs,
    IncrementalDocumentFrequencies,
    mean_class_graphs,
)
from repro.text.ngram_graph import NGramGraph
from repro.text.term_vector import TfidfVectorizer

_WORDS = [
    "viagra", "pharmacy", "prescription", "discount", "licensed",
    "shipping", "generic", "cialis", "verified", "accreditation",
    "dosage", "pills", "overnight", "refund", "pharmacist",
]


def _random_tokens(rng: np.random.Generator) -> list[str]:
    size = int(rng.integers(3, 10))
    return [_WORDS[i] for i in rng.integers(0, len(_WORDS), size)]


def _random_text(rng: np.random.Generator) -> str:
    return " ".join(_random_tokens(rng))


def _drive(rng: np.random.Generator, n_ops: int, state, make_payload, apply):
    """Random add/remove/replace walk; returns the surviving membership."""
    live: dict[str, object] = {}
    counter = 0
    for _ in range(n_ops):
        roll = rng.random()
        if live and roll < 0.25:
            domain = sorted(live)[int(rng.integers(0, len(live)))]
            apply(state, "remove", domain, None)
            del live[domain]
        elif live and roll < 0.5:
            domain = sorted(live)[int(rng.integers(0, len(live)))]
            payload = make_payload(rng)
            apply(state, "replace", domain, payload)
            live[domain] = payload
        else:
            counter += 1
            domain = f"site{counter}.net"
            payload = make_payload(rng)
            apply(state, "add", domain, payload)
            live[domain] = payload
    return live


class TestIncrementalDocumentFrequencies:
    def _apply(self, state, op, domain, payload):
        if op == "remove":
            state.remove(domain)
        elif op == "replace":
            state.replace(domain, payload)
        else:
            state.add(domain, payload)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_sequence_bit_equals_fresh_count(self, seed):
        rng = np.random.default_rng(seed)
        state = IncrementalDocumentFrequencies()
        live = _drive(rng, 60, state, _random_tokens, self._apply)
        fresh: Counter[str] = Counter()
        for tokens in live.values():
            fresh.update(frozenset(tokens))
        assert state.document_frequencies() == fresh
        assert state.n_docs == len(live)

    def test_fit_vectorizer_bit_equals_batch_fit(self):
        rng = np.random.default_rng(3)
        state = IncrementalDocumentFrequencies()
        live = _drive(rng, 40, state, _random_tokens, self._apply)
        docs = [live[d] for d in sorted(live)]
        batch = TfidfVectorizer(min_df=2).fit(docs)
        incremental = state.fit_vectorizer(min_df=2)
        assert incremental.vocabulary.terms() == batch.vocabulary.terms()
        assert np.array_equal(incremental.idf, batch.idf)

    def test_duplicate_add_raises(self):
        state = IncrementalDocumentFrequencies()
        state.add("a.net", ["x"])
        with pytest.raises(ValidationError):
            state.add("a.net", ["y"])

    def test_remove_unknown_raises(self):
        with pytest.raises(MissingKeyError):
            IncrementalDocumentFrequencies().remove("ghost.net")

    def test_fit_with_no_docs_raises(self):
        with pytest.raises(ValidationError):
            IncrementalDocumentFrequencies().fit_vectorizer()


class TestIncrementalClassGraphs:
    def _apply(self, state, op, domain, payload):
        if op == "remove":
            state.remove(domain)
            return
        label = len(domain) % 2
        graph = state.build_document_graph(payload)
        if op == "replace":
            state.replace(domain, label, graph)
        else:
            state.add(domain, label, graph)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_sequence_matches_mean_oracle(self, seed):
        rng = np.random.default_rng(seed)
        state = IncrementalClassGraphs()
        live = _drive(rng, 50, state, _random_text, self._apply)
        graphs = [NGramGraph.from_text(live[d]) for d in sorted(live)]
        labels = [len(d) % 2 for d in sorted(live)]
        expected = mean_class_graphs(graphs, labels)
        actual = state.class_graphs()
        assert set(actual) == set(expected)
        for label, expected_graph in expected.items():
            keys_a, weights_a = actual[label]._aligned(state._interner)
            keys_e, weights_e = expected_graph._aligned(state._interner)
            assert np.array_equal(keys_a, keys_e)
            assert np.max(np.abs(weights_a - weights_e), initial=0.0) < 1e-9

    def test_remove_returns_state_to_exact_prior(self):
        state = IncrementalClassGraphs()
        base = state.build_document_graph("alpha beta gamma delta")
        state.add("keep.net", 1, base)
        keys_before = state._classes[1].keys.copy()
        sums_before = state._classes[1].sums.copy()
        extra = state.build_document_graph("epsilon zeta eta theta")
        state.add("drop.net", 1, extra)
        state.remove("drop.net")
        assert np.array_equal(state._classes[1].keys, keys_before)
        assert np.array_equal(state._classes[1].sums, sums_before)

    def test_duplicate_add_raises(self):
        state = IncrementalClassGraphs()
        graph = state.build_document_graph("one two three four")
        state.add("a.net", 0, graph)
        with pytest.raises(ValidationError):
            state.add("a.net", 0, graph)

    def test_remove_unknown_raises(self):
        with pytest.raises(MissingKeyError):
            IncrementalClassGraphs().remove("ghost.net")

    def test_model_round_trip(self):
        state = IncrementalClassGraphs()
        state.add("a.net", 0, state.build_document_graph("spam spam offer"))
        state.add("b.net", 1, state.build_document_graph("pharmacy licensed"))
        model = state.model()
        assert set(model.class_graphs) == {0, 1}
        assert state.members_of(0) == 1 and state.members_of(1) == 1
        assert state.labels() == {"a.net": 0, "b.net": 1}
