"""End-to-end streaming equivalence: warm state vs the cold oracle.

One tiny corpus is streamed through every planned tick once (module
scope), then each maintained structure is pinned against a from-scratch
recompute of the final snapshot: document frequencies and the refit
vocabulary bit-equal, class-graph means within 1e-9, TrustRank within
1e-9 of a tight power-iteration run, and — after ``full_retrain`` — the
SVM weights bit-equal with zero verdict staleness.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.data.deltas import StreamCorpus, plan_deltas
from repro.network.construction import build_pharmacy_graph
from repro.network.trustrank import trustrank
from repro.perf.cache import FeatureCache
from repro.stream.crawl import DeltaCrawlStore
from repro.stream.drift import DriftDetector
from repro.stream.pipeline import StreamingVerifier

from tests.stream.conftest import STREAM_CFG, STREAM_GEN


def _quiet_detector() -> DriftDetector:
    """Thresholds no tiny stream can cross — retrains stay explicit."""
    return DriftDetector(max_feature_shift=100.0, max_flip_rate=1.0)


@pytest.fixture(scope="module")
def streamed():
    corpus = StreamCorpus.generate(STREAM_GEN)
    deltas = plan_deltas(STREAM_GEN, STREAM_CFG)
    verifier = StreamingVerifier(corpus, detector=_quiet_detector())
    verifier.bootstrap()
    reports = [verifier.apply_tick(delta) for delta in deltas]
    full = verifier.full_recompute()
    return SimpleNamespace(
        corpus=corpus, verifier=verifier, reports=reports, full=full
    )


class TestTickReports:
    def test_epochs_are_sequential(self, streamed):
        assert [r.epoch for r in streamed.reports] == list(
            range(1, STREAM_CFG.n_ticks + 1)
        )
        assert streamed.verifier.epoch == STREAM_CFG.n_ticks

    def test_site_counts_track_the_corpus(self, streamed):
        assert streamed.reports[-1].n_sites == len(streamed.corpus.domains())
        for report in streamed.reports:
            assert report.n_changed >= 0
            assert report.rank_sweeps >= 0
            assert report.seconds >= 0.0

    def test_quiet_detector_never_retrains(self, streamed):
        assert not any(r.retrained for r in streamed.reports)

    def test_verdicts_cover_exactly_the_live_domains(self, streamed):
        assert set(streamed.verifier.verdicts) == set(
            streamed.corpus.domains()
        )


class TestEquivalences:
    def test_document_frequencies_bit_equal_fresh_fit(self, streamed):
        refit = streamed.verifier.document_frequencies.fit_vectorizer(
            min_df=1
        )
        assert refit.vocabulary.terms() == streamed.full.vocabulary_terms
        assert np.array_equal(refit.idf, streamed.full.idf)

    def test_class_graph_means_within_reassociation_error(self, streamed):
        state = streamed.verifier.class_graphs
        actual = state.class_graphs()
        expected = streamed.full.class_graphs
        assert set(actual) == set(expected)
        for label in expected:
            keys_a, weights_a = actual[label]._aligned(state._interner)
            keys_e, weights_e = expected[label]._aligned(state._interner)
            assert np.array_equal(keys_a, keys_e)
            assert np.max(np.abs(weights_a - weights_e), initial=0.0) < 1e-9

    def test_trustrank_within_1e9_of_tight_oracle(self, streamed):
        store = DeltaCrawlStore(streamed.corpus)
        store.bootstrap()
        graph = build_pharmacy_graph(store.sites())
        expected = trustrank(
            graph,
            streamed.verifier._trusted_domains(),
            damping=0.85,
            max_iterations=1000,
            tolerance=1e-12,
        )
        actual = streamed.verifier.rank_state.scores()
        assert set(actual) == set(expected)
        for node, score in expected.items():
            assert abs(actual[node] - score) < 1e-9, node

    def test_staleness_is_a_bounded_rate(self, streamed):
        staleness = streamed.verifier.staleness_against(streamed.full)
        assert 0.0 <= staleness <= 1.0


class TestRetrain:
    # Runs last in the module: full_retrain mutates the shared verifier
    # into the cold-fit state the equivalence tests above must not see.
    def test_full_retrain_restores_exact_oracle_agreement(self, streamed):
        streamed.verifier.full_retrain()
        assert streamed.verifier.staleness_against(streamed.full) == 0.0
        assert np.array_equal(
            streamed.verifier.classifier._w, streamed.full.svm_weights
        )
        assert streamed.verifier.classifier._b == streamed.full.svm_bias
        assert (
            streamed.verifier.vectorizer.vocabulary.terms()
            == streamed.full.vocabulary_terms
        )


class TestFeatureCache:
    def test_epoch_keyed_cache_replays_identically(self, tmp_path):
        deltas = plan_deltas(STREAM_GEN, STREAM_CFG)[:3]
        cache = FeatureCache(tmp_path / "cache")

        def run():
            corpus = StreamCorpus.generate(STREAM_GEN)
            verifier = StreamingVerifier(
                corpus, detector=_quiet_detector(), cache=cache
            )
            verifier.bootstrap()
            for delta in deltas:
                verifier.apply_tick(delta)
            return verifier.verdicts

        first = run()
        assert cache.stats.stores > 0
        hits_before = cache.stats.hits
        second = run()
        # The replayed ticks hit the epoch-keyed entries and reproduce
        # the exact same verdicts.
        assert cache.stats.hits > hits_before
        assert second == first
