"""Delta-aware crawl store: changed-only re-crawls, checkpoint hygiene."""

from __future__ import annotations

import pytest

from repro.exceptions import MissingKeyError
from repro.stream.crawl import DeltaCrawlStore


def _applied(stream_corpus, stream_deltas, index=0):
    return stream_corpus.apply(stream_deltas[index])


class TestBootstrap:
    def test_bootstrap_crawls_every_live_domain(self, stream_corpus):
        store = DeltaCrawlStore(stream_corpus)
        crawled = store.bootstrap()
        assert crawled == stream_corpus.domains()
        assert store.n_sites == len(stream_corpus.domains())
        assert store.pages_fetched > 0

    def test_sites_follow_corpus_domain_order(self, stream_corpus):
        store = DeltaCrawlStore(stream_corpus)
        store.bootstrap()
        sites = store.sites()
        assert [s.domain for s in sites] == list(stream_corpus.domains())
        explicit = stream_corpus.domains()[:3]
        assert [s.domain for s in store.sites(explicit)] == list(explicit)

    def test_unknown_domain_raises(self, stream_corpus):
        store = DeltaCrawlStore(stream_corpus)
        with pytest.raises(MissingKeyError):
            store.site("never-crawled.net")


class TestApply:
    def test_apply_recrawls_exactly_the_changed_set(
        self, stream_corpus, stream_deltas
    ):
        store = DeltaCrawlStore(stream_corpus)
        store.bootstrap()
        before = {d: store.site(d) for d in stream_corpus.domains()}
        applied = _applied(stream_corpus, stream_deltas)
        recrawled = store.apply(applied)
        assert recrawled == applied.changed
        for domain in applied.changed:
            if domain in before:
                assert store.site(domain) is not before[domain]
        for domain in stream_corpus.domains():
            if domain not in applied.changed:
                # Unchanged sites are served from the store untouched.
                assert store.site(domain) is before[domain]

    def test_removed_domains_are_dropped(self, stream_corpus, stream_deltas):
        store = DeltaCrawlStore(stream_corpus)
        store.bootstrap()
        removed = None
        for delta in stream_deltas:
            applied = stream_corpus.apply(delta)
            store.apply(applied)
            for domain in applied.removed:
                removed = domain
                with pytest.raises(MissingKeyError):
                    store.site(domain)
        assert removed is not None, "fixture stream planned no takedowns"
        assert store.n_sites == len(stream_corpus.domains())

    def test_recrawl_reflects_the_new_revision(
        self, stream_corpus, stream_deltas
    ):
        store = DeltaCrawlStore(stream_corpus)
        store.bootstrap()
        drifted = None
        for delta in stream_deltas:
            before = {d: store.site(d) for d in delta.drifted}
            applied = stream_corpus.apply(delta)
            store.apply(applied)
            for domain, old in before.items():
                drifted = domain
                new = store.site(domain)
                old_text = " ".join(p.text for p in old.pages)
                new_text = " ".join(p.text for p in new.pages)
                assert old_text != new_text
        assert drifted is not None, "fixture stream planned no drifts"


class TestCheckpoints:
    def test_stale_checkpoints_of_changed_domains_are_discarded(
        self, tmp_path, stream_corpus, stream_deltas
    ):
        store = DeltaCrawlStore(stream_corpus, checkpoint_dir=tmp_path)
        store.bootstrap()
        delta = next(d for d in stream_deltas if d.drifted or d.rewired)
        for epoch in range(1, delta.epoch):
            store.apply(stream_corpus.apply(stream_deltas[epoch - 1]))
        changed = (delta.drifted + delta.rewired)[0]
        # A leftover checkpoint recorded against the previous revision:
        # garbage on purpose — it must be unlinked before the crawler
        # could ever try to resume from it.
        stale = tmp_path / f"{changed}.checkpoint.json"
        stale.write_text("{not json")
        store.apply(stream_corpus.apply(delta))
        assert not stale.exists()
        assert store.site(changed) is not None

    def test_removed_domain_checkpoints_are_discarded(
        self, tmp_path, stream_corpus, stream_deltas
    ):
        store = DeltaCrawlStore(stream_corpus, checkpoint_dir=tmp_path)
        store.bootstrap()
        delta = next(d for d in stream_deltas if d.removed)
        for epoch in range(1, delta.epoch):
            store.apply(stream_corpus.apply(stream_deltas[epoch - 1]))
        stale = tmp_path / f"{delta.removed[0]}.checkpoint.json"
        stale.write_text("{not json")
        store.apply(stream_corpus.apply(delta))
        assert not stale.exists()

    def test_completed_crawls_leave_no_checkpoints_behind(
        self, tmp_path, stream_corpus
    ):
        store = DeltaCrawlStore(stream_corpus, checkpoint_dir=tmp_path)
        store.bootstrap()
        assert list(tmp_path.glob("*.checkpoint.json")) == []

    def test_missing_checkpoint_dir_is_created(self, tmp_path, stream_corpus):
        target = tmp_path / "nested" / "checkpoints"
        store = DeltaCrawlStore(stream_corpus, checkpoint_dir=target)
        assert target.is_dir()
        store.bootstrap()
        assert store.n_sites == len(stream_corpus.domains())
