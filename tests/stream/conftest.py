"""Shared stream fixtures: one tiny corpus streamed once per session."""

from __future__ import annotations

import pytest

from repro.data.deltas import StreamConfig, StreamCorpus, plan_deltas
from repro.data.synthesis import GeneratorConfig

STREAM_GEN = GeneratorConfig(
    n_legitimate=10,
    n_illegitimate=30,
    n_affiliate_hubs=3,
    min_pages=3,
    max_pages=5,
    min_terms_per_page=40,
    max_terms_per_page=80,
    seed=11,
)

STREAM_CFG = StreamConfig(
    n_ticks=6,
    birth_fraction=0.05,
    death_fraction=0.06,
    drift_fraction=0.06,
    rewire_fraction=0.06,
)


@pytest.fixture(scope="session")
def stream_deltas():
    """The planned tiny delta sequence (pure function of the configs)."""
    return plan_deltas(STREAM_GEN, STREAM_CFG)


@pytest.fixture()
def stream_corpus():
    """A fresh epoch-0 stream corpus (mutable — function scoped)."""
    return StreamCorpus.generate(STREAM_GEN)
