"""DeltaRankState vs a fresh power-iteration TrustRank oracle.

Every property pins the push-based incremental scores against
:func:`repro.network.trustrank.trustrank` run cold on the current graph
with a tight budget (``max_iterations=1000, tolerance=1e-12`` — the
default 100-iteration cap stops short of 1e-9 agreement).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, ValidationError
from repro.network.graph import DirectedGraph
from repro.network.pagerank import personalized_pagerank
from repro.network.trustrank import trustrank
from repro.stream.rank import DeltaRankState

_DAMPING = 0.85
_SEEDS = ("trusted0.org", "trusted1.org")


def _oracle_graph(rows: dict[str, dict[str, float]], live: set[str]) -> DirectedGraph:
    graph = DirectedGraph()
    for node in sorted(live):
        graph.add_node(node)
    for src in sorted(rows):
        for dst in sorted(rows[src]):
            graph.add_edge(src, dst, weight=rows[src][dst])
    return graph


def _assert_matches_oracle(state, rows, live):
    expected = trustrank(
        _oracle_graph(rows, live),
        _SEEDS,
        damping=_DAMPING,
        max_iterations=1000,
        tolerance=1e-12,
    )
    actual = state.scores()
    assert set(actual) == set(expected)
    for node, score in expected.items():
        assert abs(actual[node] - score) < 1e-9, node
    assert state.residual_norm() < 1e-12


def _bootstrap(rng: np.random.Generator, n_pharmacies: int = 10):
    state = DeltaRankState(damping=_DAMPING, n_blocks=4)
    names = list(_SEEDS) + [f"pharm{i}.net" for i in range(n_pharmacies)]
    rows: dict[str, dict[str, float]] = {}
    live: set[str] = set()
    for name in names:
        targets = [t for t in names if t != name]
        picks = rng.choice(len(targets), size=3, replace=False)
        row = {targets[int(p)]: float(rng.integers(1, 4)) for p in picks}
        state.set_row(name, row)
        rows[name] = row
        live.add(name)
    state.set_trust_seeds(_SEEDS)
    state.push(1e-12)
    return state, rows, live


class TestOracleEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bootstrap_matches_cold_trustrank(self, seed):
        state, rows, live = _bootstrap(np.random.default_rng(seed))
        _assert_matches_oracle(state, rows, live)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_edit_sequence_tracks_oracle(self, seed):
        rng = np.random.default_rng(seed)
        state, rows, live = _bootstrap(rng)
        removable = sorted(live - set(_SEEDS))
        born = 0
        for _ in range(6):
            # Takedown: drop a non-seed source (it may stay as a
            # dangling endpoint while others still link to it).
            victim = removable.pop(int(rng.integers(0, len(removable))))
            state.remove_source(victim)
            live.discard(victim)
            rows.pop(victim, None)
            # Birth: a new pharmacy linking into the live graph.
            born += 1
            baby = f"baby{born}.net"
            pool = sorted(live)
            picks = rng.choice(len(pool), size=2, replace=False)
            row = {pool[int(p)]: 1.0 for p in picks}
            state.set_row(baby, row)
            rows[baby] = row
            live.add(baby)
            removable.append(baby)
            # Rewire: replace one live source's out-row.
            src = pool[int(rng.integers(0, len(pool)))]
            picks = rng.choice(len(pool), size=2, replace=False)
            row = {
                pool[int(p)]: float(rng.integers(1, 4))
                for p in picks
                if pool[int(p)] != src
            }
            state.set_row(src, row)
            rows[src] = row
            state.push(1e-12)
            _assert_matches_oracle(state, rows, live)

    def test_capacity_growth_past_initial_allocation(self):
        # A 300-node ring crosses the 256-slot initial capacity, so the
        # arrays and block offsets must regrow without losing state.
        n = 300
        state = DeltaRankState(damping=_DAMPING, n_blocks=4)
        names = [_SEEDS[0], _SEEDS[1]] + [f"ring{i}.net" for i in range(n - 2)]
        rows = {
            names[i]: {names[(i + 1) % n]: 1.0} for i in range(n)
        }
        for src, row in rows.items():
            state.set_row(src, row)
        state.set_trust_seeds(_SEEDS)
        state.push(1e-12)
        assert state.n_nodes == n
        _assert_matches_oracle(state, rows, set(names))

    def test_uniform_teleport_matches_plain_pagerank(self):
        rng = np.random.default_rng(5)
        state, rows, live = _bootstrap(rng)
        state.refresh_uniform_teleport()
        state.push(1e-12)
        expected = personalized_pagerank(
            _oracle_graph(rows, live),
            None,
            damping=_DAMPING,
            max_iterations=1000,
            tolerance=1e-12,
        )
        actual = state.scores()
        assert set(actual) == set(expected)
        for node, score in expected.items():
            assert abs(actual[node] - score) < 1e-9, node


class TestLifecycle:
    def test_unreferenced_takedown_is_tombstoned(self):
        state = DeltaRankState(damping=_DAMPING)
        state.set_row("a.net", {"b.net": 1.0})
        state.set_row("b.net", {"a.net": 1.0})
        state.set_row("lonely.net", {})
        state.set_trust_seeds(["a.net"])
        state.push(1e-12)
        assert "lonely.net" in state
        state.remove_source("lonely.net")
        state.push(1e-12)
        assert "lonely.net" not in state
        assert state.score_of("lonely.net") == 0.0
        assert "lonely.net" not in state.scores()

    def test_referenced_takedown_stays_dangling(self):
        state = DeltaRankState(damping=_DAMPING)
        state.set_row("hub.net", {"a.net": 1.0})
        state.set_row("a.net", {"hub.net": 1.0})
        state.set_trust_seeds(["a.net"])
        state.push(1e-12)
        state.remove_source("hub.net")
        state.push(1e-12)
        # a.net still links to the taken-down hub, so the node remains
        # (as a dangling endpoint) and keeps accumulating rank.
        assert "hub.net" in state
        assert state.score_of("hub.net") > 0.0

    def test_score_of_unknown_node_is_zero(self):
        assert DeltaRankState().score_of("ghost.net") == 0.0

    def test_push_on_empty_state_is_a_noop(self):
        assert DeltaRankState().push() == 0


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValidationError):
            DeltaRankState(damping=0.0)
        with pytest.raises(ValidationError):
            DeltaRankState(damping=1.0)
        with pytest.raises(ValidationError):
            DeltaRankState(n_blocks=0)
        with pytest.raises(ValidationError):
            DeltaRankState(tolerance=0.0)

    def test_negative_row_weight_rejected(self):
        state = DeltaRankState()
        with pytest.raises(ValidationError):
            state.set_row("a.net", {"b.net": -1.0})

    def test_non_finite_row_weight_rejected(self):
        state = DeltaRankState()
        with pytest.raises(ValidationError):
            state.set_row("a.net", {"b.net": float("nan")})

    def test_remove_unknown_source_rejected(self):
        with pytest.raises(ValidationError):
            DeltaRankState().remove_source("ghost.net")

    def test_trust_seeds_without_overlap_rejected(self):
        state = DeltaRankState()
        state.set_row("a.net", {"b.net": 1.0})
        with pytest.raises(GraphError):
            state.set_trust_seeds(["stranger.org"])

    def test_teleport_validation(self):
        state = DeltaRankState()
        state.set_row("a.net", {"b.net": 1.0})
        with pytest.raises(ValidationError):
            state.set_teleport({"a.net": -1.0})
        with pytest.raises(ValidationError):
            state.set_teleport({"a.net": 0.0})
        with pytest.raises(ValidationError):
            state.set_teleport({"stranger.org": 1.0})

    def test_push_tolerance_must_be_positive(self):
        state = DeltaRankState()
        state.set_row("a.net", {"b.net": 1.0})
        with pytest.raises(ValidationError):
            state.push(0.0)

    def test_exhausted_sweep_cap_trips_the_guard(self):
        state = DeltaRankState(max_sweeps=0)
        state.set_row("a.net", {"b.net": 1.0})
        state.set_teleport({"a.net": 1.0})
        with pytest.raises(GraphError):
            state.push(1e-12)
