"""Drift detector thresholds, interval ceiling, and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stream.drift import DriftDetector


def _detector(**kwargs) -> DriftDetector:
    defaults = dict(max_feature_shift=0.25, max_flip_rate=0.05)
    defaults.update(kwargs)
    return DriftDetector(**defaults)


class TestThresholds:
    def test_identical_means_report_zero_shift(self):
        detector = _detector()
        baseline = np.array([1.0, 2.0, 3.0])
        detector.set_baseline(baseline)
        report = detector.observe(1, baseline.copy(), n_flips=0, n_unchanged=10)
        assert report.feature_shift == 0.0
        assert report.flip_rate == 0.0
        assert not report.should_retrain
        assert report.reasons == ()

    def test_feature_shift_is_relative_to_baseline_norm(self):
        detector = _detector()
        detector.set_baseline(np.array([2.0, 0.0]))
        report = detector.observe(
            1, np.array([0.0, 2.0]), n_flips=0, n_unchanged=1
        )
        # ||[−2, 2]|| / ||[2, 0]|| = sqrt(8)/2 = sqrt(2)
        assert report.feature_shift == pytest.approx(np.sqrt(2.0))
        assert report.should_retrain
        assert report.reasons == ("feature_shift",)

    def test_zero_baseline_uses_absolute_shift(self):
        detector = _detector()
        detector.set_baseline(np.zeros(3))
        report = detector.observe(
            1, np.array([3.0, 0.0, 4.0]), n_flips=0, n_unchanged=1
        )
        assert report.feature_shift == pytest.approx(5.0)

    def test_flip_rate_threshold(self):
        detector = _detector()
        detector.set_baseline(np.ones(2))
        report = detector.observe(1, np.ones(2), n_flips=3, n_unchanged=10)
        assert report.flip_rate == pytest.approx(0.3)
        assert report.reasons == ("flip_rate",)

    def test_no_unchanged_sites_means_zero_flip_rate(self):
        detector = _detector()
        detector.set_baseline(np.ones(2))
        report = detector.observe(1, np.ones(2), n_flips=5, n_unchanged=0)
        assert report.flip_rate == 0.0
        assert not report.should_retrain

    def test_multiple_reasons_accumulate(self):
        detector = _detector(max_ticks_between_retrains=1)
        detector.set_baseline(np.array([1.0, 0.0]))
        report = detector.observe(
            1, np.array([0.0, 1.0]), n_flips=1, n_unchanged=2
        )
        assert report.should_retrain
        assert report.reasons == ("feature_shift", "flip_rate", "max_interval")


class TestInterval:
    def test_interval_ceiling_fires_without_drift(self):
        detector = _detector(max_ticks_between_retrains=2)
        detector.set_baseline(np.ones(3))
        first = detector.observe(1, np.ones(3), n_flips=0, n_unchanged=5)
        assert not first.should_retrain
        assert first.ticks_since_retrain == 1
        second = detector.observe(2, np.ones(3), n_flips=0, n_unchanged=5)
        assert second.should_retrain
        assert second.reasons == ("max_interval",)
        assert second.ticks_since_retrain == 2

    def test_set_baseline_resets_the_clock(self):
        detector = _detector(max_ticks_between_retrains=2)
        detector.set_baseline(np.ones(3))
        detector.observe(1, np.ones(3), n_flips=0, n_unchanged=5)
        detector.set_baseline(np.ones(3))
        report = detector.observe(2, np.ones(3), n_flips=0, n_unchanged=5)
        assert report.ticks_since_retrain == 1
        assert not report.should_retrain


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValidationError):
            DriftDetector(max_feature_shift=0.0)
        with pytest.raises(ValidationError):
            DriftDetector(max_flip_rate=0.0)
        with pytest.raises(ValidationError):
            DriftDetector(max_ticks_between_retrains=0)

    def test_observe_before_baseline_rejected(self):
        with pytest.raises(ValidationError):
            _detector().observe(1, np.ones(2), n_flips=0, n_unchanged=1)

    def test_dimension_mismatch_rejected(self):
        detector = _detector()
        detector.set_baseline(np.ones(3))
        with pytest.raises(ValidationError):
            detector.observe(1, np.ones(4), n_flips=0, n_unchanged=1)
