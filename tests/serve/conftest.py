"""Fixtures for the serving-layer tests.

The session-scoped verifier is fitted once on the shared tiny corpus;
HTTP tests bind ephemeral ports (``port=0``) so suites can run in
parallel.
"""

from __future__ import annotations

import pytest

from repro.core import PharmacyVerifier
from repro.web.resilience.clock import VirtualClock


class TickingClock(VirtualClock):
    """A virtual clock that advances a fixed amount per reading.

    Deadline checks happen between scoring chunks; ticking on every
    read makes budget exhaustion deterministic without real sleeping.
    """

    def __init__(self, tick: float, start: float = 0.0) -> None:
        super().__init__(start=start)
        self._tick = tick

    def monotonic(self) -> float:
        now = super().monotonic()
        self.advance(self._tick)
        return now


@pytest.fixture(scope="session")
def fitted_verifier(tiny_corpus):
    """One fitted verifier shared by every serving test."""
    return PharmacyVerifier().fit(tiny_corpus)


@pytest.fixture(scope="session")
def tiny_host(tiny_snapshot_pair):
    """The synthetic web host behind Dataset 1 (for crawl-on-miss)."""
    return tiny_snapshot_pair[0].host


@pytest.fixture()
def ticking_clock():
    return TickingClock(tick=0.05)
