"""Bulkhead admission control: bounds that hold under real threads.

The invariant pair pinned here: never more than ``max_concurrent``
holders at once, never more than ``max_queue`` waiters, and everyone
else is shed without blocking — under deterministic schedules and
under seeded multithreaded hammering.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.exceptions import ValidationError
from repro.serve import Bulkhead, Deadline
from repro.web.resilience.clock import VirtualClock


class TestDeadline:
    def test_after_and_remaining(self):
        clock = VirtualClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.5)
        assert deadline.expired()

    def test_budget_must_be_positive(self):
        with pytest.raises(ValidationError):
            Deadline.after(0.0, VirtualClock())
        with pytest.raises(ValidationError):
            Deadline.after(-1.0, VirtualClock())


class TestBulkheadDeterministic:
    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            Bulkhead(max_concurrent=0)
        with pytest.raises(ValidationError):
            Bulkhead(max_queue=-1)

    def test_admits_up_to_concurrency_bound(self):
        bulkhead = Bulkhead(max_concurrent=2, max_queue=0)
        assert bulkhead.try_acquire()
        assert bulkhead.try_acquire()
        assert not bulkhead.try_acquire()  # full, queue disabled
        assert bulkhead.in_flight == 2
        bulkhead.release()
        assert bulkhead.try_acquire()
        bulkhead.release()
        bulkhead.release()
        assert bulkhead.in_flight == 0

    def test_zero_timeout_sheds_immediately(self):
        bulkhead = Bulkhead(max_concurrent=1, max_queue=8)
        assert bulkhead.try_acquire()
        started = time.monotonic()
        assert not bulkhead.try_acquire(timeout=0.0)
        assert time.monotonic() - started < 0.5
        assert bulkhead.stats.shed_queue_full == 1
        bulkhead.release()

    def test_wait_timeout_sheds(self):
        bulkhead = Bulkhead(max_concurrent=1, max_queue=8)
        assert bulkhead.try_acquire()
        assert not bulkhead.try_acquire(timeout=0.05)
        assert bulkhead.stats.shed_timeout == 1
        bulkhead.release()

    def test_waiter_gets_slot_on_release(self):
        bulkhead = Bulkhead(max_concurrent=1, max_queue=1)
        assert bulkhead.try_acquire()
        outcome: list[bool] = []

        def waiter() -> None:
            outcome.append(bulkhead.try_acquire(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)  # let the waiter park
        bulkhead.release()
        thread.join(timeout=5.0)
        assert outcome == [True]
        bulkhead.release()

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValidationError):
            Bulkhead().try_acquire(timeout=-1.0)

    def test_unmatched_release_raises(self):
        with pytest.raises(ValidationError):
            Bulkhead().release()

    def test_stats_dict_shape(self):
        bulkhead = Bulkhead(max_concurrent=1, max_queue=0)
        bulkhead.try_acquire()
        bulkhead.try_acquire()
        bulkhead.release()
        stats = bulkhead.stats.as_dict()
        assert stats["admitted"] == 1
        assert stats["shed_queue_full"] == 1
        assert stats["shed_total"] == 1
        assert stats["max_in_flight"] == 1

    def test_drain_empty_is_immediate(self):
        assert Bulkhead().drain(timeout=0.0)

    def test_drain_times_out_with_holder(self):
        bulkhead = Bulkhead()
        bulkhead.try_acquire()
        assert not bulkhead.drain(timeout=0.05)
        bulkhead.release()
        assert bulkhead.drain(timeout=1.0)


class TestBulkheadUnderLoad:
    @pytest.mark.parametrize("seed", range(3))
    def test_concurrency_bound_holds_under_hammering(self, seed):
        """Seeded thread storm: the in-flight count observed from
        inside the critical section never exceeds the bound, waiters
        never exceed the queue bound, and the books balance."""
        rng = random.Random(seed)
        max_concurrent = rng.randint(1, 4)
        max_queue = rng.randint(0, 4)
        bulkhead = Bulkhead(max_concurrent=max_concurrent, max_queue=max_queue)
        holders_lock = threading.Lock()
        holders = 0
        peak = 0
        violations: list[str] = []
        attempts_per_worker = 25
        n_workers = 12
        worker_seeds = [rng.random() for _ in range(n_workers)]

        def worker(worker_seed: float) -> None:
            nonlocal holders, peak
            wrng = random.Random(worker_seed)
            for _ in range(attempts_per_worker):
                if bulkhead.try_acquire(timeout=wrng.random() * 0.01):
                    with holders_lock:
                        holders += 1
                        peak = max(peak, holders)
                        if holders > max_concurrent:
                            violations.append(
                                f"{holders} holders > bound {max_concurrent}"
                            )
                    time.sleep(wrng.random() * 0.002)
                    with holders_lock:
                        holders -= 1
                    bulkhead.release()

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in worker_seeds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not violations
        assert bulkhead.in_flight == 0
        stats = bulkhead.stats
        assert stats.max_in_flight <= max_concurrent
        assert stats.max_waiting <= max_queue
        assert stats.admitted + stats.shed_total == attempts_per_worker * n_workers
        assert stats.admitted > 0
