"""Sliding-window rate limiter: deterministic and adversarial tests.

The load-bearing property: at no instant do more than ``limit``
admissions fall inside any ``window``-long interval, for *any*
arrival schedule — including the reset-boundary bursts that break
fixed-bucket limiters.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ValidationError
from repro.serve import RateLimitDecision, SlidingWindowRateLimiter
from repro.web.resilience.clock import VirtualClock


class TestDecision:
    def test_allowed_headers(self):
        decision = RateLimitDecision(
            allowed=True, limit=10, remaining=7, reset_after=3.2, retry_after=0.0
        )
        headers = decision.headers()
        assert headers["X-RateLimit-Limit"] == "10"
        assert headers["X-RateLimit-Remaining"] == "7"
        assert headers["X-RateLimit-Reset"] == "3.200"
        assert "Retry-After" not in headers

    def test_denied_headers_round_retry_up(self):
        decision = RateLimitDecision(
            allowed=False, limit=10, remaining=0, reset_after=0.2, retry_after=0.2
        )
        assert decision.headers()["Retry-After"] == "1"

    def test_denied_retry_after_never_below_one(self):
        decision = RateLimitDecision(
            allowed=False, limit=1, remaining=0, reset_after=0.0, retry_after=0.0
        )
        assert decision.headers()["Retry-After"] == "1"


class TestValidation:
    def test_bad_limit(self):
        with pytest.raises(ValidationError):
            SlidingWindowRateLimiter().admit("p", limit=0, window=1.0)

    def test_bad_window(self):
        with pytest.raises(ValidationError):
            SlidingWindowRateLimiter().admit("p", limit=1, window=0.0)


class TestSlidingWindow:
    def test_admits_up_to_limit_then_denies(self):
        limiter = SlidingWindowRateLimiter(clock=VirtualClock())
        decisions = [limiter.admit("p", 3, 10.0) for _ in range(5)]
        assert [d.allowed for d in decisions] == [True, True, True, False, False]
        assert [d.remaining for d in decisions] == [2, 1, 0, 0, 0]

    def test_no_reset_boundary_burst(self):
        """The failure mode of fixed buckets: a full quota just before
        a boundary plus a full quota just after it."""
        clock = VirtualClock()
        limiter = SlidingWindowRateLimiter(clock=clock)
        clock.advance(0.9)
        assert all(limiter.admit("p", 3, 1.0).allowed for _ in range(3))
        clock.advance(0.15)  # t=1.05: a 1s fixed bucket would reset here
        assert not limiter.admit("p", 3, 1.0).allowed
        clock.advance(0.9)  # t=1.95: the 0.9 stamps have slid out
        assert limiter.admit("p", 3, 1.0).allowed

    def test_retry_after_is_honest(self):
        clock = VirtualClock()
        limiter = SlidingWindowRateLimiter(clock=clock)
        for _ in range(2):
            assert limiter.admit("p", 2, 5.0).allowed
        denied = limiter.admit("p", 2, 5.0)
        assert not denied.allowed
        clock.advance(denied.retry_after * 0.5)
        assert not limiter.admit("p", 2, 5.0).allowed
        clock.advance(denied.retry_after * 0.5 + 1e-9)
        assert limiter.admit("p", 2, 5.0).allowed

    def test_principals_are_independent(self):
        limiter = SlidingWindowRateLimiter(clock=VirtualClock())
        assert limiter.admit("a", 1, 60.0).allowed
        assert not limiter.admit("a", 1, 60.0).allowed
        assert limiter.admit("b", 1, 60.0).allowed

    def test_window_count_and_reset(self):
        clock = VirtualClock()
        limiter = SlidingWindowRateLimiter(clock=clock)
        for _ in range(3):
            limiter.admit("p", 5, 2.0)
        assert limiter.window_count("p", 2.0) == 3
        clock.advance(3.0)
        assert limiter.window_count("p", 2.0) == 0
        limiter.admit("p", 5, 2.0)
        limiter.reset("p")
        assert limiter.window_count("p", 2.0) == 0
        limiter.admit("q", 5, 2.0)
        limiter.reset()
        assert limiter.window_count("q", 2.0) == 0

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("limit,window", [(1, 0.5), (3, 1.0), (10, 2.5)])
    def test_never_exceeds_quota_in_any_window(self, seed, limit, window):
        """Adversarial schedules: bursts, steady trickle, long gaps.

        Replay a random arrival schedule and brute-force verify that
        every admission's trailing ``window`` holds at most ``limit``
        admissions (the half-open interval ``(t - window, t]``,
        matching the limiter's eviction rule).
        """
        rng = random.Random(seed)
        clock = VirtualClock()
        limiter = SlidingWindowRateLimiter(clock=clock)
        admitted: list[float] = []
        for _ in range(400):
            roll = rng.random()
            if roll < 0.5:
                gap = 0.0  # burst: many arrivals at one instant
            elif roll < 0.9:
                gap = rng.random() * window / 2
            else:
                gap = window * (1 + rng.random())  # drain the window
            clock.advance(gap)
            if limiter.admit("p", limit, window).allowed:
                admitted.append(clock.monotonic())
        assert admitted, "schedule admitted nothing; test is vacuous"
        for t in admitted:
            in_window = [s for s in admitted if t - window < s <= t]
            assert len(in_window) <= limit, (
                f"{len(in_window)} admissions inside ({t - window}, {t}] "
                f"with limit {limit}"
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_denial_never_starves_forever(self, seed):
        """After any schedule, waiting out a full window always clears
        the quota."""
        rng = random.Random(seed)
        clock = VirtualClock()
        limiter = SlidingWindowRateLimiter(clock=clock)
        for _ in range(50):
            clock.advance(rng.random() * 0.3)
            limiter.admit("p", 4, 2.0)
        clock.advance(2.0 + 1e-9)
        assert limiter.admit("p", 4, 2.0).allowed
