"""Socket-level tests of the HTTP edge: auth, limits, shedding, drain.

Real sockets on ephemeral ports, virtual time everywhere else: the
rate limiter and service share one ``VirtualClock``, so quota windows
never slide mid-test and latency math is deterministic.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import (
    DEFAULT_TIERS,
    Authenticator,
    Tier,
    build_server,
)
from repro.web.resilience.clock import VirtualClock

#: A tier small enough to exhaust in three requests.
TINY_TIER = Tier(
    name="tiny",
    rate_limit=2,
    window_seconds=60.0,
    max_batch=3,
    request_budget=2.0,
    batch_budget=5.0,
)

KEYS = {"test-internal-key": "internal", "test-tiny-key": "tiny"}


def request(
    port,
    method,
    path,
    body=None,
    key="test-internal-key",
    headers=None,
):
    """One HTTP round trip; returns (status, headers dict, json body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        all_headers = dict(headers or {})
        if key is not None:
            all_headers["X-API-Key"] = key
        payload = json.dumps(body) if body is not None else None
        if payload is not None:
            all_headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=all_headers)
        response = conn.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw and raw.strip().startswith(b"{") else raw
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


@pytest.fixture()
def server(fitted_verifier, tiny_corpus, tiny_host):
    instance = build_server(
        fitted_verifier,
        sites=tiny_corpus.sites,
        host=tiny_host,
        port=0,
        authenticator=Authenticator(
            keys=KEYS, tiers={**DEFAULT_TIERS, "tiny": TINY_TIER}
        ),
        jobs=4,
        max_queue=4,
        clock=VirtualClock(),
    )
    instance.start_background()
    yield instance
    instance.drain(timeout=10.0)


class TestRouting:
    def test_healthz(self, server):
        status, _, payload = request(server.port, "GET", "/healthz", key=None)
        assert status == 200
        assert payload["status"] == "ok"

    def test_unknown_route_404(self, server):
        status, _, payload = request(server.port, "GET", "/nope")
        assert status == 404
        assert "no such route" in payload["error"]

    def test_wrong_method_405(self, server):
        status, _, _ = request(server.port, "GET", "/v1/verify")
        assert status == 405

    def test_metrics_text_and_json(self, server):
        request(server.port, "GET", "/healthz", key=None)
        status, headers, body = request(server.port, "GET", "/metrics", key=None)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"http_requests_total" in body
        status, _, payload = request(
            server.port, "GET", "/metrics?format=json", key=None
        )
        assert status == 200
        assert "counters" in payload and "latency" in payload


class TestAuth:
    def test_unknown_key_401(self, server):
        status, _, payload = request(
            server.port, "POST", "/v1/verify",
            body={"domain": "x.com"}, key="wrong-key",
        )
        assert status == 401
        assert "API key" in payload["error"]

    def test_anonymous_allowed_by_default(self, server, tiny_corpus):
        status, _, payload = request(
            server.port, "POST", "/v1/verify",
            body={"domain": tiny_corpus.sites[0].domain}, key=None,
        )
        assert status == 200
        assert payload["domain"] == tiny_corpus.sites[0].domain


class TestVerifyRoutes:
    def test_verify_roundtrip(self, server, tiny_corpus):
        domain = tiny_corpus.sites[0].domain
        status, headers, payload = request(
            server.port, "POST", "/v1/verify", body={"domain": domain}
        )
        assert status == 200
        assert payload["verdict"] in ("legitimate", "illegitimate")
        assert "X-RateLimit-Limit" in headers
        assert "X-RateLimit-Remaining" in headers

    def test_batch_roundtrip_reports_budget(self, server, tiny_corpus):
        domains = [s.domain for s in tiny_corpus.sites[:4]]
        status, _, payload = request(
            server.port, "POST", "/v1/verify/batch", body={"domains": domains}
        )
        assert status == 200
        assert [r["domain"] for r in payload["results"]] == domains
        assert payload["budget_seconds"] == pytest.approx(
            DEFAULT_TIERS["internal"].batch_budget
        )

    def test_budget_header_caps_but_never_raises_budget(self, server, tiny_corpus):
        domain = tiny_corpus.sites[0].domain
        status, _, payload = request(
            server.port, "POST", "/v1/verify/batch",
            body={"domains": [domain]},
            headers={"X-Request-Budget": "0.5"},
        )
        assert status == 200
        assert payload["budget_seconds"] == pytest.approx(0.5)
        status, _, payload = request(
            server.port, "POST", "/v1/verify/batch",
            body={"domains": [domain]},
            headers={"X-Request-Budget": "9999"},
        )
        assert payload["budget_seconds"] == pytest.approx(
            DEFAULT_TIERS["internal"].batch_budget
        )

    def test_invalid_json_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/verify", body="{not json",
                headers={"X-API-Key": "test-internal-key"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_bad_domain_400(self, server):
        status, _, payload = request(
            server.port, "POST", "/v1/verify", body={"domain": "not a domain!"}
        )
        assert status == 400
        assert "registrable domain" in payload["error"]

    def test_batch_over_tier_limit_400(self, server):
        status, _, payload = request(
            server.port, "POST", "/v1/verify/batch",
            body={"domains": ["a.com", "b.com", "c.com", "d.com"]},
            key="test-tiny-key",
        )
        assert status == 400
        assert "max of 3" in payload["error"]

    def test_batch_domains_must_be_list(self, server):
        status, _, _ = request(
            server.port, "POST", "/v1/verify/batch", body={"domains": "a.com"}
        )
        assert status == 400

    def test_unknown_domain_degrades_not_500(self, server):
        status, _, payload = request(
            server.port, "POST", "/v1/verify",
            body={"domain": "unknown-pharmacy.example.com"},
        )
        assert status == 200
        assert payload["degraded"] is True
        assert "seed_unreachable" in payload["degradation_reasons"]


class TestRateLimit:
    def test_429_with_headers_after_quota(self, server, tiny_corpus):
        domain = tiny_corpus.sites[0].domain
        for _ in range(TINY_TIER.rate_limit):
            status, _, _ = request(
                server.port, "POST", "/v1/verify",
                body={"domain": domain}, key="test-tiny-key",
            )
            assert status == 200
        status, headers, payload = request(
            server.port, "POST", "/v1/verify",
            body={"domain": domain}, key="test-tiny-key",
        )
        assert status == 429
        assert headers["X-RateLimit-Remaining"] == "0"
        assert int(headers["Retry-After"]) >= 1
        assert "rate limit" in payload["error"]
        # Health stays reachable for the throttled client.
        assert request(server.port, "GET", "/healthz", key=None)[0] == 200

    def test_429_does_not_consume_other_principals(self, server, tiny_corpus):
        domain = tiny_corpus.sites[0].domain
        for _ in range(TINY_TIER.rate_limit + 1):
            request(
                server.port, "POST", "/v1/verify",
                body={"domain": domain}, key="test-tiny-key",
            )
        status, _, _ = request(
            server.port, "POST", "/v1/verify", body={"domain": domain}
        )
        assert status == 200


class TestOverload:
    def test_saturated_bulkhead_sheds_503(self, server, tiny_corpus):
        # Fill the bulkhead from outside so the next request sheds
        # without racing a real slow backend.
        claimed = 0
        while server.bulkhead.try_acquire():
            claimed += 1
        server.admission_timeout = 0.0
        try:
            status, headers, payload = request(
                server.port, "POST", "/v1/verify",
                body={"domain": tiny_corpus.sites[0].domain},
            )
        finally:
            for _ in range(claimed):
                server.bulkhead.release()
        assert status == 503
        assert headers["Retry-After"] == "1"
        assert "saturated" in payload["error"]
        assert server.metrics.counter_value("http_shed_total") == 1.0

    def test_metrics_count_requests_by_status(self, server, tiny_corpus):
        import time

        request(
            server.port, "POST", "/v1/verify",
            body={"domain": tiny_corpus.sites[0].domain},
        )
        # The count lands just after the response bytes; poll briefly.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if server.metrics.counter_value(
                "http_requests_total", route="/v1/verify", status="200"
            ) >= 1.0:
                break
            time.sleep(0.01)
        assert (
            server.metrics.counter_value(
                "http_requests_total", route="/v1/verify", status="200"
            )
            >= 1.0
        )


class TestDrain:
    def test_draining_rejects_then_drain_completes(
        self, fitted_verifier, tiny_corpus
    ):
        server = build_server(
            fitted_verifier,
            sites=tiny_corpus.sites,
            port=0,
            clock=VirtualClock(),
        )
        server.start_background()
        try:
            server.draining = True
            status, headers, payload = request(
                server.port, "POST", "/v1/verify",
                body={"domain": tiny_corpus.sites[0].domain}, key=None,
            )
            assert status == 503
            assert payload["error"] == "draining"
            assert headers["Retry-After"] == "1"
            # Health reports the drain instead of refusing.
            status, _, health = request(server.port, "GET", "/healthz", key=None)
            assert status == 200
            assert health["status"] == "draining"
        finally:
            assert server.drain(timeout=10.0) is True

    def test_drain_is_idempotent(self, fitted_verifier, tiny_corpus):
        server = build_server(
            fitted_verifier, sites=tiny_corpus.sites, port=0, clock=VirtualClock()
        )
        server.start_background()
        assert server.drain(timeout=10.0) is True
        assert server.drain(timeout=10.0) is True
