"""Tiered authentication: key resolution and config loading."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.serve import DEFAULT_TIERS, Authenticator, Tier


class TestTier:
    def test_defaults_are_ordered_stingiest_first(self):
        limits = [t.rate_limit for t in DEFAULT_TIERS.values()]
        assert limits == sorted(limits)
        assert "anonymous" in DEFAULT_TIERS

    @pytest.mark.parametrize(
        "field,value",
        [
            ("rate_limit", 0),
            ("window_seconds", 0.0),
            ("max_batch", 0),
            ("request_budget", 0.0),
            ("batch_budget", -1.0),
        ],
    )
    def test_validation(self, field, value):
        spec = dict(
            name="t", rate_limit=10, window_seconds=60.0, max_batch=5,
            request_budget=2.0, batch_budget=5.0,
        )
        spec[field] = value
        with pytest.raises(ValidationError):
            Tier(**spec)


class TestResolve:
    def test_known_key(self):
        auth = Authenticator(keys={"sk-live-abc": "partner"})
        result = auth.resolve("sk-live-abc")
        assert result is not None
        assert result.authenticated
        assert result.tier.name == "partner"
        assert result.principal.startswith("partner:")
        assert "sk-live-abc" not in result.principal  # never echo the key

    def test_unknown_key_rejected(self):
        auth = Authenticator(keys={"sk-live-abc": "partner"})
        assert auth.resolve("sk-live-wrong") is None

    def test_keyless_falls_back_to_anonymous(self):
        result = Authenticator().resolve(None, client_id="10.0.0.9")
        assert result is not None
        assert not result.authenticated
        assert result.tier.name == "anonymous"
        assert result.principal == "anonymous:10.0.0.9"

    def test_keyless_rejected_when_anonymous_disabled(self):
        auth = Authenticator(allow_anonymous=False)
        assert auth.resolve(None) is None
        assert not auth.allow_anonymous

    def test_key_to_unknown_tier_is_config_error(self):
        with pytest.raises(ConfigurationError):
            Authenticator(keys={"k": "gold"})

    def test_anonymous_tier_required_when_enabled(self):
        with pytest.raises(ConfigurationError):
            Authenticator(tiers={"partner": DEFAULT_TIERS["partner"]})

    def test_tier_lookup(self):
        auth = Authenticator()
        assert auth.tier("standard").name == "standard"
        with pytest.raises(ConfigurationError):
            auth.tier("gold")


class TestConfigLoading:
    def test_unknown_top_level_field(self):
        with pytest.raises(ConfigurationError):
            Authenticator.from_config({"nope": 1})

    def test_unknown_tier_field(self):
        with pytest.raises(ConfigurationError):
            Authenticator.from_config({"tiers": {"t": {"burst": 10}}})

    def test_tier_must_be_object(self):
        with pytest.raises(ConfigurationError):
            Authenticator.from_config({"tiers": {"t": 5}})

    def test_invalid_tier_values(self):
        with pytest.raises(ConfigurationError):
            Authenticator.from_config({"tiers": {"t": {"rate_limit": 0}}})

    def test_keys_must_be_mapping(self):
        with pytest.raises(ConfigurationError):
            Authenticator.from_config({"keys": ["k"]})

    def test_partial_override_keeps_default_fields(self):
        auth = Authenticator.from_config(
            {"tiers": {"standard": {"rate_limit": 999}}}
        )
        tier = auth.tier("standard")
        assert tier.rate_limit == 999
        assert tier.max_batch == DEFAULT_TIERS["standard"].max_batch

    def test_new_tier_with_keys_and_anonymous_off(self):
        auth = Authenticator.from_config(
            {
                "tiers": {"gold": {"rate_limit": 5000}},
                "keys": {"k1": "gold"},
                "allow_anonymous": False,
            }
        )
        result = auth.resolve("k1")
        assert result is not None and result.tier.name == "gold"
        assert auth.resolve(None) is None

    def test_from_file_roundtrip(self, tmp_path):
        path = tmp_path / "tiers.json"
        path.write_text(json.dumps({"keys": {"k": "internal"}}))
        auth = Authenticator.from_file(path)
        resolved = auth.resolve("k")
        assert resolved is not None and resolved.tier.name == "internal"

    def test_from_file_missing(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Authenticator.from_file(tmp_path / "absent.json")

    def test_from_file_invalid_json(self, tmp_path):
        path = tmp_path / "tiers.json"
        path.write_text("{")
        with pytest.raises(ConfigurationError):
            Authenticator.from_file(path)

    def test_from_file_non_object(self, tmp_path):
        path = tmp_path / "tiers.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            Authenticator.from_file(path)
