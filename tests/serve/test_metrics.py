"""Metrics registry: counters, latency quantiles, exposition."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.serve import MetricsRegistry


class TestCounters:
    def test_increment_and_read(self):
        registry = MetricsRegistry()
        registry.increment("requests_total")
        registry.increment("requests_total", 2.0)
        assert registry.counter_value("requests_total") == pytest.approx(3.0)

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.increment("http_requests_total", route="/v1/verify", status="200")
        registry.increment("http_requests_total", route="/v1/verify", status="429")
        assert registry.counter_value(
            "http_requests_total", route="/v1/verify", status="200"
        ) == pytest.approx(1.0)
        assert registry.counter_value("http_requests_total") == 0.0

    def test_counters_only_go_up(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().increment("x", -1.0)


class TestLatency:
    def test_quantiles_from_known_distribution(self):
        registry = MetricsRegistry()
        for ms in range(1, 101):  # 0.001 .. 0.100
            registry.observe_latency("/v1/verify", ms / 1000.0)
        stats = registry.snapshot()["latency"]["/v1/verify"]
        assert stats["count"] == 100
        assert stats["sum_seconds"] == pytest.approx(5.050)
        assert stats["p50_seconds"] == pytest.approx(0.0505, abs=1e-3)
        assert stats["p95_seconds"] == pytest.approx(0.095, abs=2e-3)
        assert stats["p99_seconds"] == pytest.approx(0.099, abs=2e-3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().observe_latency("/x", -0.1)

    def test_count_survives_reservoir_eviction(self):
        from repro.serve.metrics import RESERVOIR_SIZE

        registry = MetricsRegistry()
        registry._latency["/x"] = __import__("collections").deque(maxlen=8)
        for _ in range(20):
            registry.observe_latency("/x", 0.001)
        stats = registry.snapshot()["latency"]["/x"]
        assert stats["count"] == 20  # exact even though reservoir holds 8
        assert RESERVOIR_SIZE >= 8


class TestExposition:
    def test_render_text_format(self):
        registry = MetricsRegistry()
        registry.increment("http_requests_total", route="/healthz", status="200")
        registry.observe_latency("/healthz", 0.002)
        text = registry.render_text()
        assert 'http_requests_total{route="/healthz",status="200"} 1' in text
        assert 'request_latency_seconds_count{route="/healthz"} 1' in text
        assert 'quantile="0.99"' in text

    def test_flush_writes_snapshot_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.increment("verdicts_total", 5.0)
        path = tmp_path / "metrics.json"
        registry.flush(str(path))
        payload = json.loads(path.read_text())
        assert payload["counters"][0]["name"] == "verdicts_total"
        assert payload["counters"][0]["value"] == 5.0
