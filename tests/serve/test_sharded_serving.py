"""Serving against a sharded corpus: lazy, one shard open per lookup."""

from __future__ import annotations

import pytest

from repro.core.verifier import PharmacyVerifier
from repro.data.loaders import make_dataset
from repro.data.sharding import ShardedCorpus, shard_of, write_shards
from repro.data.synthesis import GeneratorConfig
from repro.exceptions import MissingKeyError
from repro.serve import SiteIndex, VerificationService, build_server

CONFIG = GeneratorConfig(
    n_legitimate=8,
    n_illegitimate=56,
    n_affiliate_hubs=3,
    min_pages=2,
    max_pages=4,
    min_terms_per_page=20,
    max_terms_per_page=40,
    seed=7,
)


@pytest.fixture(scope="module")
def verifier():
    return PharmacyVerifier(max_terms=300).fit(make_dataset(CONFIG))


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-shards")
    write_shards(CONFIG, root, 8)
    return root


class TestSiteIndexProtocol:
    def test_sharded_corpus_satisfies_protocol(self, corpus_dir):
        assert isinstance(ShardedCorpus(corpus_dir), SiteIndex)

    def test_dict_satisfies_protocol(self):
        assert isinstance({}, SiteIndex)

    def test_sequences_do_not(self):
        assert not isinstance([], SiteIndex)
        assert not isinstance((), SiteIndex)


class TestLazyServing:
    def test_lookup_opens_one_shard(self, verifier, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        service = VerificationService(verifier, sites=corpus)
        assert corpus.shard_opens == 0  # init never parses site data
        domain = corpus.domains()[0]
        report = service.verify_domain(domain)
        assert report["domain"] == domain
        assert corpus.shard_opens == 1

    def test_known_domains_cover_corpus(self, verifier, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        service = VerificationService(verifier, sites=corpus)
        assert len(service.known_domains) == len(corpus)
        assert service.known_domains == tuple(sorted(corpus.domains()))

    def test_unknown_domain_still_raises(self, verifier, corpus_dir):
        service = VerificationService(
            verifier, sites=ShardedCorpus(corpus_dir)
        )
        with pytest.raises(MissingKeyError):
            service.verify_domain("unknown-pharmacy.example")

    def test_health_counts_sharded_sites(self, verifier, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        service = VerificationService(verifier, sites=corpus)
        assert service.health()["known_domains"] == len(corpus)

    def test_verdicts_match_inmemory_index(self, verifier, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        lazy = VerificationService(verifier, sites=corpus)
        eager = VerificationService(
            verifier, sites=list(corpus.iter_sites())
        )
        for domain in corpus.domains()[:5]:
            assert lazy.verify_domain(domain) == eager.verify_domain(domain)

    def test_build_server_accepts_index(self, verifier, corpus_dir):
        corpus = ShardedCorpus(corpus_dir)
        server = build_server(verifier, sites=corpus, port=0)
        try:
            health = server.service.health()
            assert health["known_domains"] == len(corpus)
        finally:
            server.server_close()


class TestVerifySitesView:
    def test_verify_sites_accepts_lazy_view(self, verifier, corpus_dir):
        corpus = ShardedCorpus(corpus_dir, max_open_shards=1)
        view = corpus.sites_view()
        reports = verifier.verify_sites(view[:6])
        assert len(reports) == 6
        assert [r.domain for r in reports] == [
            s.domain for s in view[:6]
        ]

    def test_view_slice_opens_only_touched_shards(self, corpus_dir):
        corpus = ShardedCorpus(corpus_dir, max_open_shards=1)
        view = corpus.sites_view()
        first = view[0]
        assert corpus.shard_opens == 1
        assert shard_of(first.domain, corpus.n_shards) == 0
