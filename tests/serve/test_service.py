"""VerificationService: deadlines, breakers, caching, review feed."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    MissingKeyError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.perf import FeatureCache
from repro.serve import ServiceConfig, VerificationService
from repro.web.resilience.clock import VirtualClock


class PoisonedVerifier:
    """A backend whose scoring path always blows up."""

    is_fitted = True

    def verify_sites(self, *args, **kwargs):
        raise RuntimeError("model weights corrupted")


@pytest.fixture()
def service(fitted_verifier, tiny_corpus, tiny_host):
    return VerificationService(
        fitted_verifier,
        sites=tiny_corpus.sites,
        host=tiny_host,
        clock=VirtualClock(),
    )


class TestValidation:
    def test_needs_fitted_verifier(self):
        from repro.core import PharmacyVerifier

        with pytest.raises(ValidationError):
            VerificationService(PharmacyVerifier())

    def test_empty_batch(self, service):
        with pytest.raises(ValidationError):
            service.verify_batch([])

    @pytest.mark.parametrize(
        "bad",
        [
            123,
            "",
            "no-dots",
            "has space.com",
            "a/b.com",
            "http://x.com",
            "x.com/path",
            "-leading.com",
            "a." * 200 + "com",
        ],
    )
    def test_bad_domains(self, service, bad):
        with pytest.raises(ValidationError):
            service.verify_domain(bad)

    def test_domain_is_normalized(self, service, tiny_corpus):
        domain = tiny_corpus.sites[0].domain
        payload = service.verify_domain(f"  {domain.upper()}  ")
        assert payload["domain"] == domain


class TestVerify:
    def test_known_domain_payload_shape(self, service, tiny_corpus):
        site = tiny_corpus.sites[0]
        payload = service.verify_domain(site.domain)
        assert payload["domain"] == site.domain
        assert payload["verdict"] in ("legitimate", "illegitimate")
        assert payload["predicted_label"] in (0, 1)
        assert 0.0 <= payload["legitimacy_probability"] <= 1.0
        assert payload["cached"] is False
        assert isinstance(payload["degradation_reasons"], list)

    def test_batch_preserves_order(self, service, tiny_corpus):
        domains = [s.domain for s in tiny_corpus.sites[:6]]
        payloads = service.verify_batch(domains)
        assert [p["domain"] for p in payloads] == domains

    def test_unknown_domain_without_host_404s(self, fitted_verifier, tiny_corpus):
        service = VerificationService(
            fitted_verifier, sites=tiny_corpus.sites, clock=VirtualClock()
        )
        with pytest.raises(MissingKeyError):
            service.verify_domain("not-in-index.example.com")

    def test_crawl_on_miss_serves_unindexed_domain(
        self, fitted_verifier, tiny_corpus, tiny_host
    ):
        service = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites[:10],
            host=tiny_host,
            clock=VirtualClock(),
        )
        missing = tiny_corpus.sites[20].domain
        payload = service.verify_domain(missing)
        assert payload["domain"] == missing
        assert "seed_unreachable" not in payload["degradation_reasons"]

    def test_dead_seed_degrades_instead_of_raising(self, service):
        payload = service.verify_domain("no-such-pharmacy.example.com")
        assert payload["degraded"] is True
        assert "seed_unreachable" in payload["degradation_reasons"]
        assert (
            service.metrics.counter_value("service_seed_unreachable_total") == 1.0
        )


class TestDeadline:
    def test_exhausted_budget_degrades_tail_not_response(
        self, fitted_verifier, tiny_corpus, tiny_host, ticking_clock
    ):
        service = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites,
            host=tiny_host,
            clock=ticking_clock,
            config=ServiceConfig(deadline_chunk=1),
        )
        domains = [s.domain for s in tiny_corpus.sites[:8]]
        payloads = service.verify_batch(domains, budget=0.2)
        assert [p["domain"] for p in payloads] == domains  # always complete
        rushed = [
            p for p in payloads if "deadline_exceeded" in p["degradation_reasons"]
        ]
        assert rushed, "ticking clock never exhausted the budget"
        for payload in rushed:
            assert payload["degraded"] is True
            assert payload["confidence"] < 1.0

    def test_expired_budget_skips_crawl(
        self, fitted_verifier, tiny_corpus, tiny_host
    ):
        clock = VirtualClock()
        service = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites[:5],
            host=tiny_host,
            clock=clock,
        )

        class ExpiringClock:
            """Already past any deadline once the crawl would start."""

            def monotonic(self) -> float:
                value = clock.monotonic()
                clock.advance(10.0)
                return value

            def sleep(self, seconds: float) -> None:
                clock.advance(seconds)

        service._clock = ExpiringClock()  # expire between admit and crawl
        missing = tiny_corpus.sites[30].domain
        payload = service.verify_domain(missing, budget=1.0)
        assert "not_crawled" in payload["degradation_reasons"]
        assert payload["degraded"] is True

    def test_no_budget_means_no_degradation(self, service, tiny_corpus):
        payloads = service.verify_batch(
            [s.domain for s in tiny_corpus.sites[:3]], budget=None
        )
        assert all(
            "deadline_exceeded" not in p["degradation_reasons"] for p in payloads
        )


class TestBreaker:
    def test_poisoned_backend_opens_circuit(self, tiny_corpus):
        clock = VirtualClock()
        service = VerificationService(
            PoisonedVerifier(),
            sites=tiny_corpus.sites,
            clock=clock,
            config=ServiceConfig(
                breaker_failure_threshold=2, breaker_reset_after=30.0
            ),
        )
        domain = tiny_corpus.sites[0].domain
        for _ in range(2):
            with pytest.raises(ServiceUnavailableError) as err:
                service.verify_domain(domain)
            assert err.value.backend == "verify"
        assert service.backend_states()["verify"] == "open"
        # Open circuit: rejected before the backend is even called.
        with pytest.raises(ServiceUnavailableError) as err:
            service.verify_domain(domain)
        assert "circuit open" in str(err.value)
        # The review route rides a separate circuit and keeps serving.
        assert service.review_queue()["total_degraded"] == 0
        assert service.backend_states()["review"] == "closed"
        assert service.health()["status"] == "degraded"

    def test_circuit_recovers_after_cooldown(self, tiny_corpus, fitted_verifier):
        clock = VirtualClock()
        poisoned = PoisonedVerifier()
        service = VerificationService(
            poisoned,
            sites=tiny_corpus.sites,
            clock=clock,
            config=ServiceConfig(
                breaker_failure_threshold=1, breaker_reset_after=5.0
            ),
        )
        domain = tiny_corpus.sites[0].domain
        with pytest.raises(ServiceUnavailableError):
            service.verify_domain(domain)
        assert service.backend_states()["verify"] == "open"
        clock.advance(5.0)
        service._verifier = fitted_verifier  # backend healed
        payload = service.verify_domain(domain)
        assert payload["domain"] == domain
        assert service.backend_states()["verify"] == "closed"

    def test_validation_errors_do_not_trip_breaker(self, service):
        for _ in range(10):
            with pytest.raises(ValidationError):
                service.verify_domain("not a domain")
        assert service.backend_states()["verify"] == "closed"


class TestReviewQueue:
    def test_orders_least_confident_first(self, service):
        # Dead seeds produce degraded verdicts that need review.
        for i in range(4):
            service.verify_domain(f"dead-{i}.example.com")
        queue = service.review_queue()
        assert queue["total_degraded"] == 4
        confidences = [e["confidence"] for e in queue["entries"]]
        assert confidences == sorted(confidences)
        assert queue["priority_domains"] == [
            e["domain"] for e in queue["entries"]
        ]

    def test_limit(self, service):
        for i in range(3):
            service.verify_domain(f"dead-{i}.example.com")
        assert len(service.review_queue(limit=2)["entries"]) == 2
        with pytest.raises(ValidationError):
            service.review_queue(limit=0)

    def test_capacity_evicts_most_confident(
        self, fitted_verifier, tiny_corpus, tiny_host
    ):
        service = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites,
            host=tiny_host,
            clock=VirtualClock(),
            config=ServiceConfig(review_capacity=2),
        )
        for i in range(4):
            service.verify_domain(f"dead-{i}.example.com")
        queue = service.review_queue()
        assert queue["total_degraded"] == 2


class TestCache:
    def test_clean_verdicts_cache_and_replay(
        self, fitted_verifier, tiny_corpus, tmp_path
    ):
        service = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites,
            clock=VirtualClock(),
            cache=FeatureCache(tmp_path / "verdicts"),
        )
        domain = tiny_corpus.sites[0].domain
        first = service.verify_domain(domain)
        second = service.verify_domain(domain)
        if first["degraded"]:
            pytest.skip("first verdict degraded; nothing should be cached")
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["verdict"] == first["verdict"]
        assert service.metrics.counter_value("service_cache_hits_total") == 1.0

    def test_degraded_verdicts_never_poison_the_cache(
        self, fitted_verifier, tiny_corpus, tiny_host, tmp_path
    ):
        service = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites,
            host=tiny_host,
            clock=VirtualClock(),
            cache=FeatureCache(tmp_path / "verdicts"),
        )
        for _ in range(2):
            payload = service.verify_domain("dead-seed.example.com")
            assert payload["degraded"] is True
            assert payload["cached"] is False

    def test_model_version_partitions_cache(
        self, fitted_verifier, tiny_corpus, tmp_path
    ):
        cache = FeatureCache(tmp_path / "verdicts")
        domain = tiny_corpus.sites[0].domain
        v1 = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites,
            clock=VirtualClock(),
            cache=cache,
            config=ServiceConfig(model_version="v1"),
        )
        v2 = VerificationService(
            fitted_verifier,
            sites=tiny_corpus.sites,
            clock=VirtualClock(),
            cache=cache,
            config=ServiceConfig(model_version="v2"),
        )
        v1.verify_domain(domain)
        assert v2.verify_domain(domain)["cached"] is False


class TestHealth:
    def test_payload(self, service, tiny_corpus):
        health = service.health()
        assert health["status"] == "ok"
        assert health["known_domains"] == len(tiny_corpus.sites)
        assert health["crawl_on_miss"] is True
        assert health["backends"] == {"verify": "closed", "review": "closed"}
