"""Tests for the Character N-Gram baseline vectorizer."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.text.char_ngrams import CharNGramVectorizer


TEXTS = [
    "cheap viagra pills",
    "cheap cialis pills",
    "licensed pharmacy",
]


class TestCharNGramVectorizer:
    def test_shapes(self):
        X = CharNGramVectorizer(n=3).fit_transform(TEXTS)
        assert X.shape[0] == 3
        assert X.shape[1] > 0

    def test_shared_ngrams_give_nonzero_similarity(self):
        X = CharNGramVectorizer(n=3).fit_transform(TEXTS)
        dense = X.toarray()
        sim_01 = dense[0] @ dense[1]  # both "cheap ... pills"
        sim_02 = dense[0] @ dense[2]
        assert sim_01 > sim_02

    def test_rows_l2_normalized(self):
        X = CharNGramVectorizer(n=3).fit_transform(TEXTS)
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        assert np.allclose(norms, 1.0)

    def test_normalize_off(self):
        X = CharNGramVectorizer(n=3, normalize=False).fit_transform(TEXTS)
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        assert not np.allclose(norms, 1.0)

    def test_oov_ngrams_dropped(self):
        vec = CharNGramVectorizer(n=3).fit(TEXTS)
        X = vec.transform(["zzzzzz"])
        assert X.nnz == 0

    def test_min_df(self):
        vec_all = CharNGramVectorizer(n=3, min_df=1).fit(TEXTS)
        vec_common = CharNGramVectorizer(n=3, min_df=2).fit(TEXTS)
        assert len(vec_common._index) < len(vec_all._index)

    def test_max_features(self):
        vec = CharNGramVectorizer(n=3, max_features=5).fit(TEXTS)
        assert len(vec._index) == 5

    def test_short_text_single_gram(self):
        vec = CharNGramVectorizer(n=4).fit(["ab", "abcd"])
        X = vec.transform(["ab"])
        assert X.shape[1] >= 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CharNGramVectorizer().transform(["x"])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            CharNGramVectorizer().fit([])

    def test_param_validation(self):
        with pytest.raises(ValueError):
            CharNGramVectorizer(n=0)
        with pytest.raises(ValueError):
            CharNGramVectorizer(min_df=0)
        with pytest.raises(ValueError):
            CharNGramVectorizer(max_features=0)

    def test_deterministic_columns(self):
        a = CharNGramVectorizer(n=3).fit(TEXTS)._index
        b = CharNGramVectorizer(n=3).fit(TEXTS)._index
        assert a == b
