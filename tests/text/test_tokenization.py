"""Tests for the tokenizer."""

from hypothesis import given, strategies as st

from repro.text.tokenization import iter_tokens, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_punctuation_split(self):
        assert tokenize("a,b.c!d") == ["a", "b", "c", "d"]

    def test_keeps_internal_hyphen(self):
        assert tokenize("FDA-Approved drugs") == ["fda-approved", "drugs"]

    def test_keeps_internal_apostrophe(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_numbers_kept(self):
        assert tokenize("take 20 mg") == ["take", "20", "mg"]

    def test_empty(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t ") == []

    def test_leading_trailing_hyphen_stripped(self):
        assert tokenize("-start end-") == ["start", "end"]

    def test_iter_matches_list(self):
        text = "Buy cheap-pills now, no prescription!"
        assert list(iter_tokens(text)) == tokenize(text)


@given(st.text(max_size=200))
def test_tokens_always_lowercase_and_nonempty(text):
    for token in tokenize(text):
        assert token
        assert token == token.lower()


@given(st.text(max_size=200))
def test_tokenize_idempotent_on_joined_output(text):
    """Re-tokenizing the joined token stream is a fixpoint."""
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens
