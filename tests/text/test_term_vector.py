"""Tests for the Term Vector (TF-IDF) model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import NotFittedError, ValidationError
from repro.text.term_vector import TfidfVectorizer, Vocabulary


class TestVocabulary:
    def test_add_assigns_sequential_indices(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # idempotent

    def test_index_of_unknown_is_none(self):
        assert Vocabulary().index_of("x") is None

    def test_terms_in_column_order(self):
        vocab = Vocabulary(["b", "a", "c"])
        assert vocab.terms() == ("b", "a", "c")

    def test_terms_position_matches_index_of(self):
        # Regression: terms() used to re-sort on every call; the fast
        # path relies on insertion order *being* column order, so pin
        # that invariant on a deliberately non-alphabetical vocabulary.
        words = ["zebra", "mango", "apple", "quince", "fig"]
        vocab = Vocabulary(words)
        terms = vocab.terms()
        assert list(terms) == words
        for term in words:
            idx = vocab.index_of(term)
            assert idx is not None
            assert terms[idx] == term
        vocab.add("banana")  # late adds append, never reshuffle
        assert vocab.terms() == (*words, "banana")

    def test_contains_and_len(self):
        vocab = Vocabulary(["a"])
        assert "a" in vocab
        assert "b" not in vocab
        assert len(vocab) == 1


class TestTfidfVectorizer:
    DOCS = [
        ["apple", "banana", "apple"],
        ["banana", "cherry"],
        ["apple", "cherry", "cherry"],
    ]

    def test_shapes(self):
        X = TfidfVectorizer().fit_transform(self.DOCS)
        assert X.shape == (3, 3)

    def test_idf_formula(self):
        vec = TfidfVectorizer().fit(self.DOCS)
        vocab = vec.vocabulary
        # apple appears in 2 of 3 docs.
        idx = vocab.index_of("apple")
        expected = np.log((1 + 3) / (1 + 2)) + 1.0
        assert vec.idf[idx] == pytest.approx(expected)

    def test_rows_l2_normalized(self):
        X = TfidfVectorizer().fit_transform(self.DOCS)
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        assert np.allclose(norms, 1.0)

    def test_normalize_off(self):
        X = TfidfVectorizer(normalize=False).fit_transform([["a", "a"], ["b"]])
        # tf counts preserved (scaled by idf).
        assert X[0].toarray().max() > X[1].toarray().max()

    def test_oov_terms_dropped(self):
        vec = TfidfVectorizer().fit(self.DOCS)
        X = vec.transform([["durian", "elderberry"]])
        assert X.nnz == 0

    def test_min_df_filters_rare_terms(self):
        vec = TfidfVectorizer(min_df=2).fit(self.DOCS + [["zzz"]])
        assert "zzz" not in vec.vocabulary

    def test_max_features_keeps_most_frequent(self):
        vec = TfidfVectorizer(max_features=2).fit(self.DOCS)
        kept = set(vec.vocabulary.terms())
        assert len(kept) == 2
        # apple and cherry each appear in 2 docs; banana also in 2 —
        # ties broken alphabetically, so the kept set is deterministic.
        vec2 = TfidfVectorizer(max_features=2).fit(self.DOCS)
        assert kept == set(vec2.vocabulary.terms())

    def test_sublinear_tf(self):
        plain = TfidfVectorizer(normalize=False).fit_transform([["a", "a", "a", "b"]])
        sub = TfidfVectorizer(normalize=False, sublinear_tf=True).fit_transform(
            [["a", "a", "a", "b"]]
        )
        assert sub.toarray()[0, 0] < plain.toarray()[0, 0]

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform([["a"]])

    def test_fit_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            TfidfVectorizer().fit([])

    def test_empty_document_gives_zero_row(self):
        vec = TfidfVectorizer().fit(self.DOCS)
        X = vec.transform([[]])
        assert X.nnz == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)
        with pytest.raises(ValueError):
            TfidfVectorizer(max_features=0)

    def test_deterministic_column_order(self):
        a = TfidfVectorizer().fit(self.DOCS).vocabulary.terms()
        b = TfidfVectorizer().fit(self.DOCS).vocabulary.terms()
        assert a == b == tuple(sorted(a))

    def test_batched_transform_matches_reference_loop(self):
        # The batched CSR assembly must be bit-identical (same data,
        # indices, indptr) to the per-document dict loop it replaced.
        from repro.perf.reference import reference_tfidf_transform

        vectorizer = TfidfVectorizer().fit(self.DOCS)
        docs = self.DOCS + [["cherry", "unseen", "apple", "apple"], []]
        fast = vectorizer.transform(docs)
        slow = reference_tfidf_transform(vectorizer, docs)
        assert fast.shape == slow.shape
        np.testing.assert_array_equal(fast.indptr, slow.indptr)
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_array_equal(fast.data, slow.data)


@given(
    docs=st.lists(
        st.lists(st.sampled_from("abcdef"), min_size=0, max_size=12),
        min_size=1,
        max_size=8,
    )
)
def test_tfidf_rows_have_unit_or_zero_norm(docs):
    """Property: every row norm is 1 (non-empty doc) or 0 (empty doc)."""
    X = TfidfVectorizer().fit_transform(docs)
    norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
    for doc, norm in zip(docs, norms):
        if doc:
            assert norm == pytest.approx(1.0)
        else:
            assert norm == pytest.approx(0.0)


@given(
    docs=st.lists(
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=12),
        min_size=1,
        max_size=8,
    )
)
def test_tfidf_values_nonnegative(docs):
    X = TfidfVectorizer().fit_transform(docs)
    assert (X.toarray() >= 0).all()


class TestStreamingFit:
    """fit_document_frequencies == fit — the out-of-core fitting path."""

    DOCS = [
        ["alpha", "beta", "beta", "gamma"],
        ["alpha", "delta"],
        ["beta", "gamma", "gamma", "epsilon"],
        ["zeta", "alpha", "beta"],
    ]

    @staticmethod
    def _streamed(vectorizer, chunks):
        from collections import Counter

        doc_freq: Counter[str] = Counter()
        n_docs = 0
        for chunk in chunks:
            for doc in chunk:
                doc_freq.update(set(doc))
                n_docs += 1
        return vectorizer.fit_document_frequencies(doc_freq, n_docs)

    def test_matches_fit_exactly(self):
        whole = TfidfVectorizer().fit(self.DOCS)
        chunked = self._streamed(
            TfidfVectorizer(), [self.DOCS[:2], self.DOCS[2:]]
        )
        assert whole.vocabulary.terms() == chunked.vocabulary.terms()
        np.testing.assert_array_equal(whole.idf, chunked.idf)

    def test_matches_with_min_df_and_max_features(self):
        kwargs = dict(min_df=2, max_features=3)
        whole = TfidfVectorizer(**kwargs).fit(self.DOCS)
        chunked = self._streamed(
            TfidfVectorizer(**kwargs), [[d] for d in self.DOCS]
        )
        assert whole.vocabulary.terms() == chunked.vocabulary.terms()
        np.testing.assert_array_equal(whole.idf, chunked.idf)

    def test_transforms_identically(self):
        whole = TfidfVectorizer().fit(self.DOCS)
        chunked = self._streamed(TfidfVectorizer(), [self.DOCS])
        a = whole.transform(self.DOCS)
        b = chunked.transform(self.DOCS)
        np.testing.assert_array_equal(a.toarray(), b.toarray())

    def test_rejects_bad_doc_count(self):
        from collections import Counter

        with pytest.raises(ValidationError):
            TfidfVectorizer().fit_document_frequencies(Counter(), 0)
