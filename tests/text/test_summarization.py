"""Tests for summarization (merge + term subsampling)."""

import pytest

from repro.text.summarization import Summarizer, TERM_SUBSET_SIZES
from repro.web.page import WebPage
from repro.web.site import Website


def make_site(texts, domain="pharm.com"):
    pages = tuple(
        WebPage(
            url=f"https://www.{domain}/" if i == 0 else f"https://www.{domain}/p{i}",
            text=text,
        )
        for i, text in enumerate(texts)
    )
    return Website(domain=domain, pages=pages)


class TestSummarizer:
    def test_merges_all_pages(self):
        site = make_site(["alpha bravo", "charlie delta"])
        doc = Summarizer().summarize_site(site)
        assert set(doc.tokens) == {"alpha", "bravo", "charlie", "delta"}

    def test_stop_words_removed(self):
        site = make_site(["the alpha and bravo"])
        doc = Summarizer().summarize_site(site)
        assert "the" not in doc.tokens
        assert "and" not in doc.tokens

    def test_subsample_size(self):
        site = make_site(["word%d " % i for i in range(50)])
        doc = Summarizer(max_terms=10).summarize_site(site)
        assert len(doc) == 10
        assert doc.n_source_terms == 50

    def test_no_subsample_when_short(self):
        site = make_site(["one two three"])
        doc = Summarizer(max_terms=100).summarize_site(site)
        assert len(doc) == 3

    def test_subsample_preserves_order(self):
        tokens = [f"w{i:03d}" for i in range(100)]
        site = make_site([" ".join(tokens)])
        doc = Summarizer(max_terms=20).summarize_site(site)
        positions = [tokens.index(t) for t in doc.tokens]
        assert positions == sorted(positions)

    def test_deterministic_per_domain(self):
        site = make_site([" ".join(f"w{i}" for i in range(100))])
        doc_a = Summarizer(max_terms=10, seed=1).summarize_site(site)
        doc_b = Summarizer(max_terms=10, seed=1).summarize_site(site)
        assert doc_a.tokens == doc_b.tokens

    def test_different_seeds_differ(self):
        site = make_site([" ".join(f"w{i}" for i in range(200))])
        doc_a = Summarizer(max_terms=10, seed=1).summarize_site(site)
        doc_b = Summarizer(max_terms=10, seed=2).summarize_site(site)
        assert doc_a.tokens != doc_b.tokens

    def test_different_domains_get_different_subsamples(self):
        text = " ".join(f"w{i}" for i in range(200))
        doc_a = Summarizer(max_terms=10).summarize_text("a.com", text)
        doc_b = Summarizer(max_terms=10).summarize_text("b.com", text)
        assert doc_a.tokens != doc_b.tokens

    def test_text_property_joins_tokens(self):
        doc = Summarizer().summarize_text("a.com", "alpha bravo")
        assert doc.text == "alpha bravo"

    def test_invalid_max_terms(self):
        with pytest.raises(ValueError):
            Summarizer(max_terms=0)

    def test_paper_subset_sizes(self):
        assert TERM_SUBSET_SIZES == (100, 250, 1000, 2000, None)
