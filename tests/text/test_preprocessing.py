"""Tests for preprocessing and stop-word lists."""

import pytest

from repro.text.preprocessing import TextPreprocessor
from repro.text.stopwords import (
    EXTENDED_ENGLISH_STOP_WORDS,
    LUCENE_ENGLISH_STOP_WORDS,
    default_stop_words,
)


class TestStopWordLists:
    def test_lucene_list_has_33_words(self):
        assert len(LUCENE_ENGLISH_STOP_WORDS) == 33

    def test_extended_is_superset(self):
        assert LUCENE_ENGLISH_STOP_WORDS <= EXTENDED_ENGLISH_STOP_WORDS

    def test_default_is_lucene(self):
        assert default_stop_words() == LUCENE_ENGLISH_STOP_WORDS

    def test_known_members(self):
        for word in ("the", "a", "and", "no", "not"):
            assert word in LUCENE_ENGLISH_STOP_WORDS


class TestTextPreprocessor:
    def test_removes_stop_words(self):
        pre = TextPreprocessor()
        assert pre.preprocess("the pharmacy is open") == ["pharmacy", "open"]

    def test_no_stemming(self):
        """The paper explicitly avoids stemming (trademarks survive)."""
        pre = TextPreprocessor()
        assert pre.preprocess("running medications") == [
            "running",
            "medications",
        ]

    def test_custom_stop_words(self):
        pre = TextPreprocessor(stop_words={"pharmacy"})
        assert pre.preprocess("the pharmacy") == ["the"]

    def test_empty_stop_words_disables_removal(self):
        pre = TextPreprocessor(stop_words=())
        assert pre.preprocess("the end") == ["the", "end"]

    def test_stop_words_case_insensitive(self):
        pre = TextPreprocessor(stop_words={"The"})
        assert pre.preprocess("THE end") == ["end"]

    def test_min_token_length(self):
        pre = TextPreprocessor(stop_words=(), min_token_length=3)
        assert pre.preprocess("a an the word") == ["the", "word"]

    def test_min_token_length_validation(self):
        with pytest.raises(ValueError):
            TextPreprocessor(min_token_length=0)

    def test_preprocess_to_text(self):
        pre = TextPreprocessor()
        assert pre.preprocess_to_text("the cheap pills") == "cheap pills"

    def test_no_prescription_survives(self):
        """'no' is a Lucene stop word but 'prescription' must survive —
        the strongest illegitimate marker in the paper."""
        pre = TextPreprocessor()
        assert "prescription" in pre.preprocess("no prescription needed")
