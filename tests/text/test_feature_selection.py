"""Tests for supervised term selection (IG / chi-squared)."""

import pytest

from repro.text.feature_selection import (
    chi2_scores,
    filter_documents,
    information_gain_scores,
    select_terms,
)

# A perfectly class-indicative term ("viagra"), a perfectly
# anti-indicative term ("seal"), and a neutral one ("pills").
DOCS = [
    ["seal", "pills", "care"],
    ["seal", "pills", "health"],
    ["seal", "care", "health"],
    ["viagra", "pills", "cheap"],
    ["viagra", "cheap", "bonus"],
    ["viagra", "pills", "bonus"],
]
Y = [1, 1, 1, 0, 0, 0]


class TestInformationGain:
    def test_indicative_terms_score_highest(self):
        scores = information_gain_scores(DOCS, Y)
        assert scores["viagra"] == pytest.approx(1.0)  # full bit
        assert scores["seal"] == pytest.approx(1.0)
        assert scores["pills"] < 0.2

    def test_absent_everywhere_not_listed(self):
        scores = information_gain_scores(DOCS, Y)
        assert "zzz" not in scores

    def test_scores_nonnegative(self):
        scores = information_gain_scores(DOCS, Y)
        assert all(v >= 0.0 for v in scores.values())

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            information_gain_scores(DOCS, Y[:-1])

    def test_empty_corpus(self):
        assert information_gain_scores([], []) == {}


class TestChi2:
    def test_indicative_terms_score_highest(self):
        scores = chi2_scores(DOCS, Y)
        assert scores["viagra"] == max(scores.values())
        assert scores["seal"] == max(scores.values())
        assert scores["pills"] < scores["viagra"]

    def test_uninformative_term_near_zero(self):
        docs = [["x", "common"], ["common"], ["x", "common"], ["common"]]
        scores = chi2_scores(docs, [1, 1, 0, 0])
        assert scores["common"] == pytest.approx(0.0)


class TestSelectTerms:
    def test_top_k_selected(self):
        keep = select_terms(DOCS, Y, k=2)
        assert keep == {"seal", "viagra"}

    def test_chi2_method(self):
        keep = select_terms(DOCS, Y, k=2, method="chi2")
        assert keep == {"seal", "viagra"}

    def test_k_larger_than_vocab(self):
        keep = select_terms(DOCS, Y, k=100)
        assert "pills" in keep

    def test_validation(self):
        with pytest.raises(ValueError):
            select_terms(DOCS, Y, k=0)
        with pytest.raises(ValueError):
            select_terms(DOCS, Y, k=2, method="mutualinfo")

    def test_filter_documents_projects(self):
        keep = select_terms(DOCS, Y, k=2)
        filtered = filter_documents(DOCS, keep)
        assert filtered[0] == ["seal"]
        assert filtered[3] == ["viagra"]

    def test_selection_improves_over_random_at_tiny_budget(self):
        """Informed selection with k=1 keeps a class-perfect term."""
        keep = select_terms(DOCS, Y, k=1)
        term = next(iter(keep))
        assert term in {"seal", "viagra"}
