"""Tests for character N-Gram Graphs and the class-graph featurizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotFittedError
from repro.text.ngram_graph import ClassGraphModel, NGramGraph


class TestGraphConstruction:
    def test_ngrams_of_short_text(self):
        graph = NGramGraph.from_text("abc", n=4, window=4)
        # Text shorter than n yields a single vertex, hence no edges.
        assert graph.n_edges == 0

    def test_simple_edges(self):
        # "abcde" with n=2, window=1: grams ab, bc, cd, de; edges between
        # consecutive grams only.
        graph = NGramGraph.from_text("abcde", n=2, window=1)
        assert graph.n_edges == 3
        assert graph.edge_weight("ab", "bc") == 1.0
        assert graph.edge_weight("ab", "cd") == 0.0

    def test_window_widens_neighbourhood(self):
        wide = NGramGraph.from_text("abcde", n=2, window=3)
        assert wide.edge_weight("ab", "de") == 1.0

    def test_repeated_cooccurrence_accumulates_weight(self):
        # "ababab" with n=2 w=1: grams ab,ba,ab,ba,ab; edge {ab,ba} seen 4x.
        graph = NGramGraph.from_text("ababab", n=2, window=1)
        assert graph.edge_weight("ab", "ba") == 4.0

    def test_edge_key_symmetric(self):
        graph = NGramGraph.from_text("abcde", n=2, window=1)
        assert graph.edge_weight("bc", "ab") == graph.edge_weight("ab", "bc")

    def test_empty_text(self):
        graph = NGramGraph.from_text("", n=4, window=4)
        assert graph.n_edges == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NGramGraph(n=0)
        with pytest.raises(ValueError):
            NGramGraph(window=0)


class TestSimilarities:
    def test_identical_graphs(self):
        a = NGramGraph.from_text("pharmacy online store", n=4, window=4)
        b = NGramGraph.from_text("pharmacy online store", n=4, window=4)
        sims = a.similarities(b)
        assert sims.cs == pytest.approx(1.0)
        assert sims.ss == pytest.approx(1.0)
        assert sims.vs == pytest.approx(1.0)
        assert sims.nvs == pytest.approx(1.0)

    def test_disjoint_graphs(self):
        a = NGramGraph.from_text("aaaaaa", n=2, window=1)
        b = NGramGraph.from_text("bbbbbb", n=2, window=1)
        sims = a.similarities(b)
        assert sims.cs == 0.0
        assert sims.vs == 0.0

    def test_empty_graph_all_zero(self):
        a = NGramGraph.from_text("", n=4)
        b = NGramGraph.from_text("pharmacy", n=4)
        assert a.similarities(b).as_tuple() == (0.0, 0.0, 0.0, 0.0)

    def test_size_similarity_formula(self):
        a = NGramGraph.from_text("abcde", n=2, window=1)  # 3 edges
        b = NGramGraph.from_text("abcdefg", n=2, window=1)  # 5 edges
        assert a.size_similarity(b) == pytest.approx(3 / 5)
        assert b.size_similarity(a) == pytest.approx(3 / 5)  # symmetric

    def test_containment_formula_hand_computed(self):
        a = NGramGraph.from_text("abcd", n=2, window=1)  # edges ab-bc, bc-cd
        b = NGramGraph.from_text("abcx", n=2, window=1)  # edges ab-bc, bc-cx
        # shared edges: {ab,bc}; min size = 2.
        assert a.containment_similarity(b) == pytest.approx(1 / 2)

    def test_fused_similarities_match_individual_methods(self):
        a = NGramGraph.from_text("cheap viagra pills", n=3, window=3)
        b = NGramGraph.from_text("cheap cialis pills", n=3, window=3)
        sims = a.similarities(b)
        assert sims.cs == pytest.approx(a.containment_similarity(b))
        assert sims.ss == pytest.approx(a.size_similarity(b))
        assert sims.vs == pytest.approx(a.value_similarity(b))
        assert sims.nvs == pytest.approx(a.normalized_value_similarity(b))

    def test_nvs_is_vs_over_ss(self):
        a = NGramGraph.from_text("pharmacy online", n=4, window=4)
        b = NGramGraph.from_text("pharmacy store and more", n=4, window=4)
        sims = a.similarities(b)
        assert sims.nvs == pytest.approx(sims.vs / sims.ss)


class TestMerge:
    def test_merge_identical_is_stable(self):
        a = NGramGraph.from_text("pharmacy", n=4, window=4)
        b = NGramGraph.from_text("pharmacy", n=4, window=4)
        before = dict(a.edges())
        a.merge(b, learning_rate=0.5)
        assert dict(a.edges()) == pytest.approx(before)

    def test_merge_new_edges_adopted(self):
        a = NGramGraph.from_text("abcde", n=2, window=1)
        b = NGramGraph.from_text("vwxyz", n=2, window=1)
        n_before = a.n_edges
        a.merge(b, learning_rate=0.5)
        assert a.n_edges == n_before + b.n_edges

    def test_merged_running_average(self):
        """merged() with lr=1/i equals the arithmetic mean of weights."""
        texts = ["ababab", "ababab", "abab"]
        graphs = [NGramGraph.from_text(t, n=2, window=1) for t in texts]
        merged = NGramGraph.merged(graphs, n=2, window=1)
        # edge {ab, ba} weights: 4, 4, 2 -> mean 10/3.
        assert merged.edge_weight("ab", "ba") == pytest.approx(10 / 3)

    def test_merge_incompatible_params_raises(self):
        a = NGramGraph(n=3, window=3)
        b = NGramGraph(n=4, window=4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_bad_learning_rate(self):
        a = NGramGraph(n=4)
        with pytest.raises(ValueError):
            a.merge(NGramGraph(n=4), learning_rate=0.0)


class TestClassGraphModel:
    TEXTS = [
        "licensed pharmacy prescription required",
        "verified pharmacy health consultation",
        "cheap viagra no prescription pills",
        "discount cialis bonus pills cheap",
    ]
    LABELS = [1, 1, 0, 0]

    def test_feature_shape(self):
        model = ClassGraphModel(seed=0)
        feats = model.fit_transform(self.TEXTS, self.LABELS)
        assert feats.shape == (4, 8)

    def test_feature_names(self):
        model = ClassGraphModel(seed=0).fit(self.TEXTS, self.LABELS)
        names = model.feature_names()
        assert names[:4] == ("cs_class0", "ss_class0", "vs_class0", "nvs_class0")
        assert len(names) == 8

    def test_classes_sorted(self):
        model = ClassGraphModel(seed=0).fit(self.TEXTS, self.LABELS)
        assert model.classes == (0, 1)

    def test_own_class_similarity_higher(self):
        model = ClassGraphModel(class_sample_fraction=1.0, seed=0)
        feats = model.fit_transform(self.TEXTS, self.LABELS)
        # Column 0 is CS against class 0 (illegit), column 4 CS class 1.
        for i, label in enumerate(self.LABELS):
            own_cs = feats[i, 4] if label == 1 else feats[i, 0]
            other_cs = feats[i, 0] if label == 1 else feats[i, 4]
            assert own_cs > other_cs

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ClassGraphModel().transform(["x"])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ClassGraphModel().fit(["a"], [1, 0])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            ClassGraphModel().fit([], [])

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            ClassGraphModel(class_sample_fraction=0.0)

    def test_graph_api_equivalent_to_text_api(self):
        text_model = ClassGraphModel(seed=3).fit(self.TEXTS, self.LABELS)
        graphs = [NGramGraph.from_text(t, n=4, window=4) for t in self.TEXTS]
        graph_model = ClassGraphModel(seed=3).fit_graphs(graphs, self.LABELS)
        a = text_model.transform(self.TEXTS)
        b = graph_model.transform_graphs(graphs)
        assert np.allclose(a, b)

    def test_document_similarities_keyed_by_class(self):
        model = ClassGraphModel(seed=0).fit(self.TEXTS, self.LABELS)
        sims = model.document_similarities("cheap pills no prescription")
        assert set(sims) == {0, 1}


@st.composite
def _texts(draw):
    alphabet = st.sampled_from("abcdxyz ")
    return draw(st.text(alphabet=alphabet, min_size=6, max_size=60))


@given(a=_texts(), b=_texts())
@settings(max_examples=40)
def test_similarities_bounded(a, b):
    """Property: CS, SS, VS in [0, 1]; NVS >= 0."""
    ga = NGramGraph.from_text(a, n=3, window=3)
    gb = NGramGraph.from_text(b, n=3, window=3)
    sims = ga.similarities(gb)
    assert 0.0 <= sims.cs <= 1.0
    assert 0.0 <= sims.ss <= 1.0
    assert 0.0 <= sims.vs <= 1.0
    assert sims.nvs >= 0.0


@given(a=_texts(), b=_texts())
@settings(max_examples=40)
def test_size_similarity_symmetric(a, b):
    ga = NGramGraph.from_text(a, n=3, window=3)
    gb = NGramGraph.from_text(b, n=3, window=3)
    assert ga.size_similarity(gb) == pytest.approx(gb.size_similarity(ga))


@given(t=_texts())
@settings(max_examples=40)
def test_self_similarity_is_one(t):
    g = NGramGraph.from_text(t, n=3, window=3)
    if g.n_edges:
        sims = g.similarities(g)
        assert sims.as_tuple() == pytest.approx((1.0, 1.0, 1.0, 1.0))
