"""Tests for the cross-validation evaluation harness."""

import numpy as np
import pytest

from repro.core.evaluation import (
    AggregatedReport,
    cross_validate_indexed,
    cross_validate_pipeline,
    train_test_evaluate,
)
from repro.ml.metrics import BinaryClassificationReport


def report(acc):
    return BinaryClassificationReport(
        accuracy=acc,
        legitimate_precision=acc,
        legitimate_recall=acc,
        illegitimate_precision=acc,
        illegitimate_recall=acc,
        auc_roc=acc,
    )


class FakePipeline:
    """Predicts by thresholding the scalar 'documents' it receives."""

    def fit(self, documents, y):
        return self

    def predict(self, documents):
        return (np.asarray(documents) > 0.5).astype(int)

    def decision_scores(self, documents):
        return np.asarray(documents, dtype=float)


class TestAggregatedReport:
    def test_measure_mean_and_ci(self):
        agg = AggregatedReport(fold_reports=(report(0.8), report(0.9), report(1.0)))
        summary = agg.measure("accuracy")
        assert summary.mean == pytest.approx(0.9)
        assert summary.ci_half_width > 0

    def test_named_properties(self):
        agg = AggregatedReport(fold_reports=(report(0.7),))
        assert agg.auc_roc.mean == pytest.approx(0.7)
        assert agg.legitimate_recall.mean == pytest.approx(0.7)

    def test_as_dict(self):
        agg = AggregatedReport(fold_reports=(report(0.6),))
        d = agg.as_dict()
        assert len(d) == 6
        assert all(v == pytest.approx(0.6) for v in d.values())

    def test_format_protocol(self):
        agg = AggregatedReport(fold_reports=(report(0.875),))
        assert f"{agg.accuracy:.2f}" == "0.88"


class TestCrossValidatePipeline:
    def test_perfect_pipeline_scores_one(self):
        # Documents are scores: legit docs = 0.9, illegit = 0.1.
        documents = [0.9] * 6 + [0.1] * 18
        y = [1] * 6 + [0] * 18
        agg = cross_validate_pipeline(FakePipeline, documents, y, n_folds=3)
        assert agg.accuracy.mean == pytest.approx(1.0)
        assert agg.auc_roc.mean == pytest.approx(1.0)
        assert len(agg.fold_reports) == 3


class TestCrossValidateIndexed:
    def test_fold_callback_receives_indices(self):
        y = np.array([1] * 6 + [0] * 18)
        calls = []

        def fit_predict(train_idx, test_idx):
            calls.append((len(train_idx), len(test_idx)))
            return y[test_idx], y[test_idx].astype(float)

        agg = cross_validate_indexed(fit_predict, y, n_folds=3)
        assert len(calls) == 3
        assert all(tr + te == 24 for tr, te in calls)
        assert agg.accuracy.mean == pytest.approx(1.0)


class TestTrainTestEvaluate:
    def test_cross_dataset(self):
        train_docs = [0.9] * 4 + [0.1] * 8
        y_train = [1] * 4 + [0] * 8
        test_docs = [0.8] * 2 + [0.2] * 4
        y_test = [1] * 2 + [0] * 4
        result = train_test_evaluate(
            FakePipeline, train_docs, y_train, test_docs, y_test
        )
        assert result.accuracy == pytest.approx(1.0)
