"""Tests for the cumulative ranking model (Problem 2)."""

import math

import pytest

from repro.core.ranking import analyze_outliers, rank_pharmacies


class TestRankPharmacies:
    def test_rank_is_sum_of_components(self):
        result = rank_pharmacies(
            domains=["a.com", "b.com"],
            text_ranks=[0.9, 0.1],
            network_ranks=[0.05, 0.01],
        )
        by_domain = {e.domain: e for e in result.entries}
        assert by_domain["a.com"].rank_score == pytest.approx(0.95)
        assert by_domain["b.com"].rank_score == pytest.approx(0.11)

    def test_decreasing_order(self):
        result = rank_pharmacies(
            domains=["low.com", "high.com", "mid.com"],
            text_ranks=[0.1, 0.9, 0.5],
            network_ranks=[0.0, 0.0, 0.0],
        )
        assert result.domains == ("high.com", "mid.com", "low.com")

    def test_tie_broken_by_domain(self):
        result = rank_pharmacies(
            domains=["z.com", "a.com"],
            text_ranks=[0.5, 0.5],
            network_ranks=[0.0, 0.0],
        )
        assert result.domains == ("a.com", "z.com")

    def test_pairord_with_labels(self):
        result = rank_pharmacies(
            domains=["a.com", "b.com", "c.com"],
            text_ranks=[0.9, 0.5, 0.1],
            network_ranks=[0.0, 0.0, 0.0],
            oracle_labels=[1, 0, 0],
        )
        assert result.pairord == pytest.approx(1.0)

    def test_pairord_nan_without_labels(self):
        result = rank_pharmacies(
            domains=["a.com", "b.com"],
            text_ranks=[0.9, 0.1],
            network_ranks=[0.0, 0.0],
        )
        assert math.isnan(result.pairord)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            rank_pharmacies(["a.com"], [0.5, 0.6], [0.0])

    def test_oracle_labels_carried_on_entries(self):
        result = rank_pharmacies(
            domains=["a.com", "b.com"],
            text_ranks=[0.9, 0.1],
            network_ranks=[0.0, 0.0],
            oracle_labels=[1, 0],
        )
        assert result.entries[0].oracle_label == 1
        assert result.entries[1].oracle_label == 0


class TestAnalyzeOutliers:
    def make_result(self):
        # One illegitimate ranked high (0.8), one legitimate ranked low.
        return rank_pharmacies(
            domains=["goodtop.com", "sneaky.net", "mid.net", "weakgood.com"],
            text_ranks=[0.9, 0.8, 0.3, 0.2],
            network_ranks=[0.0, 0.0, 0.0, 0.0],
            oracle_labels=[1, 0, 0, 1],
        )

    def test_illegitimate_outliers_are_highest_ranked_bad(self):
        report = analyze_outliers(self.make_result(), top_k=1)
        assert report.illegitimate_outliers[0].domain == "sneaky.net"

    def test_legitimate_outliers_are_lowest_ranked_good(self):
        report = analyze_outliers(self.make_result(), top_k=1)
        assert report.legitimate_outliers[0].domain == "weakgood.com"

    def test_top_k_respected(self):
        report = analyze_outliers(self.make_result(), top_k=5)
        assert len(report.illegitimate_outliers) == 2
        assert len(report.legitimate_outliers) == 2

    def test_requires_labels(self):
        result = rank_pharmacies(
            domains=["a.com"], text_ranks=[0.5], network_ranks=[0.0]
        )
        with pytest.raises(ValueError):
            analyze_outliers(result)


class TestRankingOnTinyCorpus:
    def test_generator_outliers_surface_in_analysis(self, tiny_corpus, tiny_documents):
        """Illegitimate sites flagged is_outlier by the generator should
        rank above typical illegitimate sites (they imitate legit text)."""
        import numpy as np

        from repro.core.text_pipeline import TfidfTextPipeline
        from repro.ml.naive_bayes import MultinomialNB

        y = tiny_corpus.labels
        pipeline = TfidfTextPipeline(MultinomialNB()).fit(tiny_documents, y)
        text_ranks = pipeline.text_rank(tiny_documents)
        result = rank_pharmacies(
            domains=list(tiny_corpus.domains),
            text_ranks=text_ranks,
            network_ranks=np.zeros(len(y)),
            oracle_labels=y,
        )
        illegit_scores = {
            e.domain: e.rank_score for e in result.entries if e.oracle_label == 0
        }
        outlier_domains = [
            r.domain for r in tiny_corpus.records if r.is_outlier and r.label == 0
        ]
        typical = [
            d for d in illegit_scores if d not in outlier_domains
        ]
        if outlier_domains:
            mean_outlier = np.mean([illegit_scores[d] for d in outlier_domains])
            mean_typical = np.mean([illegit_scores[d] for d in typical])
            assert mean_outlier >= mean_typical
