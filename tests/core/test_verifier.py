"""Tests for the end-to-end PharmacyVerifier."""

import numpy as np
import pytest

from repro.core.verifier import MIN_CONFIDENCE, PharmacyVerifier
from repro.exceptions import NotFittedError, ValidationError
from repro.web.crawler import CrawlStats
from repro.web.site import Website


@pytest.fixture(scope="module")
def fitted_verifier(tiny_corpus):
    # Train on even rows; odd rows are "unseen".
    train = tiny_corpus.subset(np.arange(0, len(tiny_corpus), 2))
    return PharmacyVerifier(seed=0).fit(train), tiny_corpus


class TestPharmacyVerifier:
    def test_unfitted_raises(self, tiny_corpus):
        with pytest.raises(NotFittedError):
            PharmacyVerifier().verify_site(tiny_corpus.sites[0])

    def test_is_fitted_flag(self, fitted_verifier):
        verifier, _ = fitted_verifier
        assert verifier.is_fitted

    def test_report_fields(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        report = verifier.verify_site(corpus.sites[1])
        assert report.domain == corpus.sites[1].domain
        assert report.predicted_label in (0, 1)
        assert 0.0 <= report.legitimacy_probability <= 1.0
        assert report.rank_score == pytest.approx(
            report.text_rank + report.network_rank
        )

    def test_unseen_accuracy(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        test_idx = np.arange(1, len(corpus), 2)
        sites = [corpus.sites[i] for i in test_idx]
        reports = verifier.verify_sites(sites)
        predictions = np.array([r.predicted_label for r in reports])
        assert (predictions == corpus.labels[test_idx]).mean() > 0.9

    def test_is_legitimate_property(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        report = verifier.verify_site(corpus.sites[0])
        assert report.is_legitimate == (report.predicted_label == 1)

    def test_rank_sites(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        test_idx = np.arange(1, len(corpus), 2)
        sites = [corpus.sites[i] for i in test_idx]
        result = verifier.rank_sites(sites, corpus.labels[test_idx])
        assert result.pairord > 0.9
        scores = [e.rank_score for e in result.entries]
        assert scores == sorted(scores, reverse=True)

    def test_verify_url_crawls_then_verifies(
        self, fitted_verifier, tiny_snapshot_pair
    ):
        verifier, corpus = fitted_verifier
        snap1, _ = tiny_snapshot_pair
        domain = corpus.domains[1]
        report = verifier.verify_url(snap1.host, f"https://www.{domain}/")
        assert report.domain == domain

    def test_network_rank_nonnegative(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        for report in verifier.verify_sites(list(corpus.sites[:5])):
            assert report.network_rank >= 0.0


def partial_stats(domain):
    return CrawlStats(
        domain=domain,
        pages_fetched=1,
        pages_skipped=0,
        fetch_failures=0,
        permanent_failures=3,
        failed_urls=(f"https://www.{domain}/gone",),
    )


class TestGracefulDegradation:
    def test_partial_crawl_marks_degraded(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        site = corpus.sites[1]
        report = verifier.verify_site(site, crawl_stats=partial_stats(site.domain))
        assert report.degraded
        assert report.degradation_reasons == ("partial_crawl",)
        assert report.confidence == pytest.approx(0.7)

    def test_textless_site_gets_network_only_verdict(self, fitted_verifier):
        verifier, _ = fitted_verifier
        empty = Website(domain="ghost-pharmacy.com", pages=())
        report = verifier.verify_site(empty)
        assert report.degraded
        assert "no_text" in report.degradation_reasons
        assert report.legitimacy_probability == pytest.approx(0.5)
        assert report.text_rank == 0.0
        assert report.confidence >= MIN_CONFIDENCE

    def test_batch_with_degraded_members_never_raises(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        sites = [
            corpus.sites[0],
            Website(domain="ghost-pharmacy.com", pages=()),
            corpus.sites[1],
        ]
        stats = [None, None, partial_stats(corpus.sites[1].domain)]
        reports = verifier.verify_sites(sites, crawl_stats=stats)
        assert len(reports) == 3
        assert not reports[0].degraded
        assert reports[1].degraded and reports[2].degraded

    def test_confidence_floors_at_minimum(self, fitted_verifier):
        verifier, _ = fitted_verifier
        empty = Website(domain="ghost-pharmacy.com", pages=())
        report = verifier.verify_site(
            empty, crawl_stats=partial_stats("ghost-pharmacy.com")
        )
        # partial_crawl + no_text + no_network_signal stack up, but the
        # report keeps a usable confidence.
        assert len(report.degradation_reasons) == 3
        assert report.confidence == pytest.approx(MIN_CONFIDENCE)

    def test_misaligned_stats_rejected(self, fitted_verifier):
        verifier, corpus = fitted_verifier
        with pytest.raises(ValidationError):
            verifier.verify_sites(list(corpus.sites[:2]), crawl_stats=[None])


class TestThresholdTuning:
    def test_tuned_threshold_enforces_precision(self, tiny_corpus):
        from repro.ml.metrics import precision

        train = tiny_corpus.subset(np.arange(0, len(tiny_corpus), 2))
        holdout_idx = np.arange(1, len(tiny_corpus), 2)
        holdout_sites = [tiny_corpus.sites[i] for i in holdout_idx]
        holdout_labels = tiny_corpus.labels[holdout_idx]

        verifier = PharmacyVerifier(seed=0).fit(train)
        threshold = verifier.tune_threshold(
            holdout_sites, holdout_labels, min_precision=1.0
        )
        assert threshold is not None
        assert verifier.decision_threshold == threshold
        reports = verifier.verify_sites(holdout_sites)
        predictions = np.array([r.predicted_label for r in reports])
        # On the tuning set itself the floor must hold exactly.
        assert precision(holdout_labels, predictions, 1) == 1.0

    def test_tune_before_fit_raises(self, tiny_corpus):
        with pytest.raises(NotFittedError):
            PharmacyVerifier().tune_threshold(
                list(tiny_corpus.sites[:4]), tiny_corpus.labels[:4]
            )

    def test_untuned_verifier_has_no_threshold(self, fitted_verifier):
        verifier, _ = fitted_verifier
        assert verifier.decision_threshold is None
