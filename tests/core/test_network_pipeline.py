"""Tests for the TrustRank network classification pipeline."""

import numpy as np
import pytest

from repro.core.network_pipeline import NetworkClassificationPipeline
from repro.exceptions import NotFittedError
from repro.ml.metrics import accuracy


class TestNetworkPipeline:
    def test_fit_predict_shapes(self, tiny_corpus):
        y = tiny_corpus.labels
        train = np.arange(0, len(y), 2)
        test = np.arange(1, len(y), 2)
        pipeline = NetworkClassificationPipeline(tiny_corpus).fit(train)
        preds = pipeline.predict(test)
        assert preds.shape == test.shape
        assert set(preds) <= {0, 1}

    def test_better_than_chance(self, tiny_corpus):
        y = tiny_corpus.labels
        train = np.arange(0, len(y), 2)
        test = np.arange(1, len(y), 2)
        pipeline = NetworkClassificationPipeline(tiny_corpus).fit(train)
        assert accuracy(y[test], pipeline.predict(test)) > 0.85

    def test_decision_scores_order_classes(self, tiny_corpus):
        y = tiny_corpus.labels
        train = np.arange(0, len(y), 2)
        test = np.arange(1, len(y), 2)
        pipeline = NetworkClassificationPipeline(tiny_corpus).fit(train)
        scores = pipeline.decision_scores(test)
        assert scores[y[test] == 1].mean() > scores[y[test] == 0].mean()

    def test_network_rank_uses_trust_values(self, tiny_corpus):
        y = tiny_corpus.labels
        train = np.arange(0, len(y), 2)
        pipeline = NetworkClassificationPipeline(tiny_corpus).fit(train)
        ranks = pipeline.network_rank(np.arange(len(y)))
        assert np.all(ranks >= 0)
        # Seed legit pharmacies hold teleport mass -> highest ranks.
        seed_legit = [i for i in train if y[i] == 1]
        assert ranks[seed_legit].mean() > ranks.mean()

    def test_unfitted_raises(self, tiny_corpus):
        with pytest.raises(NotFittedError):
            NetworkClassificationPipeline(tiny_corpus).predict([0])

    def test_feature_matrix_exposed(self, tiny_corpus):
        y = tiny_corpus.labels
        pipeline = NetworkClassificationPipeline(tiny_corpus)
        pipeline.fit(np.arange(len(y)))
        matrix = pipeline.feature_matrix
        assert matrix.features.shape[0] == len(y)
        assert "outlink_trust" in matrix.feature_names

    def test_anti_trustrank_option(self, tiny_corpus):
        y = tiny_corpus.labels
        train = np.arange(0, len(y), 2)
        pipeline = NetworkClassificationPipeline(
            tiny_corpus, include_anti_trustrank=True
        ).fit(train)
        assert "outlink_distrust" in pipeline.feature_matrix.feature_names
        preds = pipeline.predict(np.arange(1, len(y), 2))
        assert preds.shape[0] == len(y) // 2
