"""Tests for presets and experiment configuration."""

import pytest

from repro.core.config import PRESETS, ExperimentConfig, preset
from repro.exceptions import ConfigurationError


class TestPresets:
    def test_all_presets_present(self):
        assert set(PRESETS) == {"tiny", "small", "medium", "paper", "large"}

    def test_paper_preset_matches_table1(self):
        gen = preset("paper").generator
        assert gen.n_legitimate == 167
        assert gen.n_illegitimate == 1292

    def test_all_presets_keep_class_ratio(self):
        for name, scale in PRESETS.items():
            gen = scale.generator
            ratio = gen.n_legitimate / (gen.n_legitimate + gen.n_illegitimate)
            assert ratio == pytest.approx(0.12, abs=0.01), name

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            preset("huge")


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.n_folds == 3
        assert config.term_subsets == (100, 250, 1000, 2000, None)

    def test_generator_property(self):
        config = ExperimentConfig(scale="tiny")
        assert config.generator is preset("tiny").generator

    def test_invalid_folds(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_folds=1)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale="galactic")

    def test_hashable_for_caching(self):
        a = ExperimentConfig(scale="tiny")
        b = ExperimentConfig(scale="tiny")
        assert hash(a) == hash(b)
        assert a == b
