"""Tests for the reviewer-assistance simulation."""

import numpy as np
import pytest

from repro.core.ranking import rank_pharmacies
from repro.core.review_queue import (
    ReviewQueue,
    degraded_domains,
    effort_to_find_fraction,
    simulate_review,
)
from repro.core.verifier import VerificationReport


def report(domain, degraded=False, confidence=1.0):
    return VerificationReport(
        domain=domain,
        predicted_label=1,
        legitimacy_probability=0.5,
        text_rank=0.0,
        network_rank=0.0,
        rank_score=0.0,
        degraded=degraded,
        confidence=confidence,
    )


def labelled_ranking(n_legit=3, n_illegit=9):
    domains = [f"l{i}.com" for i in range(n_legit)] + [
        f"b{i}.net" for i in range(n_illegit)
    ]
    # Perfect separation: legit scores 0.9+, illegit 0.1-.
    text = [0.9 + 0.01 * i for i in range(n_legit)] + [
        0.1 - 0.005 * i for i in range(n_illegit)
    ]
    labels = [1] * n_legit + [0] * n_illegit
    return rank_pharmacies(domains, text, [0.0] * len(domains), labels)


class TestReviewQueue:
    def test_most_suspicious_first(self):
        queue = ReviewQueue(labelled_ranking())
        first = queue.next_batch(1)[0]
        assert first.oracle_label == 0  # lowest rank = most suspicious

    def test_batches_consume_queue(self):
        queue = ReviewQueue(labelled_ranking())
        assert len(queue) == 12
        queue.next_batch(5)
        assert queue.remaining == 7
        queue.next_batch(100)
        assert queue.remaining == 0

    def test_requires_labels(self):
        ranking = rank_pharmacies(["a.com"], [0.5], [0.0])
        with pytest.raises(ValueError):
            ReviewQueue(ranking)

    def test_batch_size_validation(self):
        queue = ReviewQueue(labelled_ranking())
        with pytest.raises(ValueError):
            queue.next_batch(0)


class TestDegradedDomains:
    def test_least_confident_first(self):
        reports = [
            report("solid.com"),
            report("shaky.net", degraded=True, confidence=0.7),
            report("blind.org", degraded=True, confidence=0.1),
        ]
        assert degraded_domains(reports) == ("blind.org", "shaky.net")

    def test_no_degraded_reports(self):
        assert degraded_domains([report("solid.com")]) == ()


class TestPriorityDomains:
    def test_degraded_domains_jump_the_queue(self):
        ranking = labelled_ranking(3, 9)
        # Bump a legitimate (least suspicious, normally last) domain.
        queue = ReviewQueue(ranking, priority_domains=("l0.com",))
        assert queue.next_batch(1)[0].domain == "l0.com"

    def test_order_preserved_within_groups(self):
        ranking = labelled_ranking(3, 9)
        plain = [e.domain for e in ReviewQueue(ranking).next_batch(12)]
        bumped = ReviewQueue(ranking, priority_domains=("l0.com", "b3.net"))
        got = [e.domain for e in bumped.next_batch(12)]
        head, tail = got[:2], got[2:]
        assert set(head) == {"l0.com", "b3.net"}
        # The bumped pair keeps most-suspicious-first order...
        assert head == [d for d in plain if d in {"l0.com", "b3.net"}]
        # ...and so does everyone else.
        assert tail == [d for d in plain if d not in {"l0.com", "b3.net"}]

    def test_unknown_priority_domain_is_harmless(self):
        queue = ReviewQueue(labelled_ranking(), priority_domains=("nope.xyz",))
        assert len(queue) == 12


class TestSimulateReview:
    def test_log_covers_whole_queue(self):
        log = simulate_review(labelled_ranking(), daily_budget=5)
        assert sum(entry.reviewed for entry in log) == 12
        assert log[-1].recall_of_illegitimate == pytest.approx(1.0)

    def test_perfect_ranking_frontloads_illegitimate(self):
        log = simulate_review(labelled_ranking(3, 9), daily_budget=9)
        # Day 1 reviews exactly the 9 illegitimate sites.
        assert log[0].illegitimate_found_today == 9
        assert log[0].recall_of_illegitimate == pytest.approx(1.0)

    def test_days_counted(self):
        log = simulate_review(labelled_ranking(), daily_budget=4)
        assert [entry.day for entry in log] == [1, 2, 3]


class TestEffortToFindFraction:
    def test_perfect_ranking_is_ideal_for_legit(self):
        ranks = [0.9, 0.8, 0.1, 0.05, 0.01]
        labels = [1, 1, 0, 0, 0]
        # 90% of 2 legit -> 2 sites; both at the top.
        assert effort_to_find_fraction(ranks, labels, 0.9, target_label=1) == 2

    def test_perfect_ranking_is_ideal_for_illegit(self):
        ranks = [0.9, 0.8, 0.1, 0.05, 0.01]
        labels = [1, 1, 0, 0, 0]
        assert effort_to_find_fraction(ranks, labels, 1.0, target_label=0) == 3

    def test_inverted_ranking_is_worst_case(self):
        ranks = [0.1, 0.2, 0.8, 0.9]
        labels = [1, 1, 0, 0]
        assert effort_to_find_fraction(ranks, labels, 1.0, target_label=1) == 4

    def test_no_targets_returns_zero(self):
        assert effort_to_find_fraction([0.5], [0], 0.9, target_label=1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            effort_to_find_fraction([0.5], [1], 0.0)
        with pytest.raises(ValueError):
            effort_to_find_fraction([0.5, 0.6], [1], 0.9)

    def test_better_ranking_never_needs_more_reviews(self):
        rng = np.random.default_rng(0)
        labels = np.array([1] * 5 + [0] * 45)
        perfect = np.where(labels == 1, 1.0, 0.0) + rng.random(50) * 0.01
        noisy = perfect + rng.normal(0, 0.5, 50)
        effort_perfect = effort_to_find_fraction(perfect, labels, 0.9)
        effort_noisy = effort_to_find_fraction(noisy, labels, 0.9)
        assert effort_perfect <= effort_noisy
