"""Tests for the ensemble and combined-feature pipelines."""

import numpy as np
import pytest

from repro.core.ensemble_pipeline import (
    CombinedFeaturePipeline,
    EnsembleClassificationPipeline,
)
from repro.exceptions import NotFittedError
from repro.ml.metrics import accuracy, auc_roc


@pytest.fixture(scope="module")
def split(tiny_corpus):
    y = tiny_corpus.labels
    train = np.arange(0, len(y), 2)
    test = np.arange(1, len(y), 2)
    return train, test


class TestEnsemblePipeline:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_corpus, tiny_documents, split):
        train, _ = split
        pipeline = EnsembleClassificationPipeline(
            tiny_corpus, tiny_documents, seed=0, include_ngg_member=False
        )
        return pipeline.fit(train)

    def test_predicts_well(self, fitted, tiny_corpus, split):
        _, test = split
        y = tiny_corpus.labels
        assert accuracy(y[test], fitted.predict(test)) > 0.9

    def test_auc_high(self, fitted, tiny_corpus, split):
        _, test = split
        y = tiny_corpus.labels
        assert auc_roc(y[test], fitted.decision_scores(test)) > 0.95

    def test_bag_contains_library_members(self, fitted):
        names = set(fitted.selection.bag_counts)
        assert names <= {"nbm-text", "svm-text", "j48-text", "mlp-ngg", "nb-network"}
        assert names

    def test_unfitted_raises(self, tiny_corpus, tiny_documents):
        pipeline = EnsembleClassificationPipeline(tiny_corpus, tiny_documents)
        with pytest.raises(NotFittedError):
            pipeline.predict([0])

    def test_length_mismatch_rejected(self, tiny_corpus, tiny_documents):
        with pytest.raises(ValueError):
            EnsembleClassificationPipeline(tiny_corpus, tiny_documents[:-1])


class TestCombinedFeaturePipeline:
    def test_fit_predict(self, tiny_corpus, tiny_documents, split):
        train, test = split
        y = tiny_corpus.labels
        pipeline = CombinedFeaturePipeline(
            tiny_corpus, tiny_documents, max_text_features=150, seed=0
        ).fit(train)
        assert accuracy(y[test], pipeline.predict(test)) > 0.85

    def test_unfitted_raises(self, tiny_corpus, tiny_documents):
        with pytest.raises(NotFittedError):
            CombinedFeaturePipeline(tiny_corpus, tiny_documents).predict([0])
