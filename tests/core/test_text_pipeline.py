"""Tests for the TF-IDF and N-Gram-Graph text pipelines."""

import numpy as np
import pytest

from repro.core.text_pipeline import NGramGraphTextPipeline, TfidfTextPipeline
from repro.exceptions import NotFittedError
from repro.ml.naive_bayes import MultinomialNB
from repro.ml.sampling import RandomUnderSampler
from repro.ml.svm import LinearSVC
from repro.text.summarization import SummaryDocument


def doc(domain, text):
    tokens = tuple(text.split())
    return SummaryDocument(domain=domain, tokens=tokens, n_source_terms=len(tokens))


@pytest.fixture()
def toy_docs():
    legit = [
        doc(f"l{i}.com", "licensed pharmacy verified prescription consultation health")
        for i in range(6)
    ]
    illegit = [
        doc(f"b{i}.net", "cheap viagra cialis pills discount bonus prescription")
        for i in range(12)
    ]
    return legit + illegit, np.array([1] * 6 + [0] * 12)


class TestTfidfTextPipeline:
    def test_fit_predict(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(MultinomialNB()).fit(docs, y)
        assert (pipeline.predict(docs) == y).all()

    def test_decision_scores_separate(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(MultinomialNB()).fit(docs, y)
        scores = pipeline.decision_scores(docs)
        assert scores[y == 1].min() > scores[y == 0].max()

    def test_text_rank_probabilistic_default(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(MultinomialNB()).fit(docs, y)
        ranks = pipeline.text_rank(docs)
        assert np.all((0 <= ranks) & (ranks <= 1))
        # Membership probabilities, not hard labels.
        assert not set(np.unique(ranks)) <= {0.0, 1.0}

    def test_text_rank_svm_is_hard_labels(self, toy_docs):
        """Per Section 5: non-probabilistic classifiers contribute 0/1."""
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(LinearSVC(n_epochs=10)).fit(docs, y)
        ranks = pipeline.text_rank(docs)
        assert set(np.unique(ranks)) <= {0.0, 1.0}

    def test_probabilistic_rank_override(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(
            LinearSVC(n_epochs=10), probabilistic_rank=True
        ).fit(docs, y)
        ranks = pipeline.text_rank(docs)
        assert not set(np.unique(ranks)) <= {0.0, 1.0}

    def test_sampler_applied(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(
            MultinomialNB(), sampler=RandomUnderSampler(seed=0)
        ).fit(docs, y)
        assert (pipeline.predict(docs) == y).mean() > 0.9

    def test_unfitted_raises(self, toy_docs):
        docs, _ = toy_docs
        with pytest.raises(NotFittedError):
            TfidfTextPipeline(MultinomialNB()).predict(docs)

    def test_classifier_prototype_not_mutated(self, toy_docs):
        docs, y = toy_docs
        prototype = MultinomialNB()
        TfidfTextPipeline(prototype).fit(docs, y)
        with pytest.raises(NotFittedError):
            prototype.predict(np.ones((1, 2)))


class TestNGramGraphTextPipeline:
    def test_fit_predict(self, toy_docs):
        docs, y = toy_docs
        from repro.ml.naive_bayes import GaussianNB

        pipeline = NGramGraphTextPipeline(GaussianNB(), seed=0).fit(docs, y)
        assert (pipeline.predict(docs) == y).mean() > 0.9

    def test_text_rank_is_equation3(self, toy_docs):
        docs, y = toy_docs
        from repro.ml.naive_bayes import GaussianNB

        pipeline = NGramGraphTextPipeline(
            GaussianNB(), class_sample_fraction=1.0, seed=0
        ).fit(docs, y)
        ranks = pipeline.text_rank(docs)
        # Equation 3 is a sum of 8 terms, 4 in [0,1] and 4 of (1 - s).
        assert np.all(ranks >= 0)
        assert np.all(ranks <= 8)
        # Legit docs should outrank illegit ones.
        assert ranks[y == 1].mean() > ranks[y == 0].mean()

    def test_unfitted_raises(self, toy_docs):
        docs, _ = toy_docs
        from repro.ml.naive_bayes import GaussianNB

        with pytest.raises(NotFittedError):
            NGramGraphTextPipeline(GaussianNB()).predict(docs)

    def test_class_graph_model_exposed(self, toy_docs):
        docs, y = toy_docs
        from repro.ml.naive_bayes import GaussianNB

        pipeline = NGramGraphTextPipeline(GaussianNB(), seed=0).fit(docs, y)
        assert set(pipeline.class_graph_model.classes) == {0, 1}


class TestCalibratedTfidfPipeline:
    def test_calibrated_svm_gives_continuous_probabilities(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(
            LinearSVC(n_epochs=10), calibrate=True, seed=0
        ).fit(docs, y)
        proba = pipeline.predict_proba(docs)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert not set(np.unique(np.round(proba[:, 1], 6))) <= {0.0, 1.0}

    def test_calibrated_text_rank_is_probabilistic(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(
            LinearSVC(n_epochs=10), calibrate=True, seed=0
        ).fit(docs, y)
        ranks = pipeline.text_rank(docs)
        assert np.all((ranks >= 0) & (ranks <= 1))
        assert not set(np.unique(ranks)) <= {0.0, 1.0}

    def test_calibrated_predictions_still_accurate(self, toy_docs):
        docs, y = toy_docs
        pipeline = TfidfTextPipeline(
            LinearSVC(n_epochs=10), calibrate=True, seed=0
        ).fit(docs, y)
        assert (pipeline.predict(docs) == y).mean() > 0.9
