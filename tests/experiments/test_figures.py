"""Tests for the figure regenerations."""

from repro.experiments.figures import (
    figure2_pipeline_trace,
    figure3_trustrank_demo,
)


class TestFigure2:
    def test_trace_classifies_unseen_correctly(self):
        trace = figure2_pipeline_trace()
        predictions = dict(trace.predictions)
        assert predictions["unseen-legit"] == 1
        assert predictions["unseen-illegit"] == 0

    def test_trace_has_both_class_graphs(self):
        trace = figure2_pipeline_trace()
        assert set(trace.class_graph_sizes) == {0, 1}
        assert all(size > 0 for size in trace.class_graph_sizes.values())

    def test_render_mentions_steps(self):
        text = figure2_pipeline_trace().render()
        assert "class graph" in text
        assert "predict" in text


class TestFigure3:
    def test_bad_nodes_near_zero(self):
        table = figure3_trustrank_demo()
        for row in table.rows:
            node, kind, _, propagated = row
            if kind == "bad":
                assert propagated < 1e-6, node

    def test_good_nodes_positive(self):
        table = figure3_trustrank_demo()
        for row in table.rows:
            _, kind, _, propagated = row
            if kind == "good":
                assert propagated > 0.01

    def test_seed_initial_trust_one(self):
        table = figure3_trustrank_demo()
        initial = {row[0]: row[2] for row in table.rows}
        assert initial["g1"] == 1.0
        assert initial["g2"] == 1.0
        assert initial["b1"] == 0.0
