"""Tests for table rendering."""

import pytest

from repro.experiments.results import TableResult, format_value, term_subset_header


def sample_table():
    return TableResult(
        table_id="tableX",
        title="Sample",
        columns=("Classifier", "100", "All"),
        rows=(("NBM", 0.974, 0.951), ("SVM", 0.968, 0.992)),
        notes=("a note",),
    )


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.975) == "0.97"
        assert format_value(0.975, precision=3) == "0.975"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("NBM") == "NBM"

    def test_bool(self):
        assert format_value(True) == "True"


class TestTableResult:
    def test_cell_lookup(self):
        table = sample_table()
        assert table.cell("NBM", "100") == 0.974

    def test_cell_missing_row(self):
        with pytest.raises(KeyError):
            sample_table().cell("J48", "100")

    def test_cell_missing_column(self):
        with pytest.raises(ValueError):
            sample_table().cell("NBM", "250")

    def test_column_values(self):
        assert sample_table().column_values("All") == [0.951, 0.992]

    def test_render_contains_everything(self):
        text = sample_table().render()
        assert "TABLEX" in text
        assert "NBM" in text
        assert "0.97" in text
        assert "note: a note" in text

    def test_render_alignment(self):
        lines = sample_table().render().splitlines()
        header, sep = lines[1], lines[2]
        assert len(header) == len(sep)


class TestTermSubsetHeader:
    def test_none_becomes_all(self):
        assert term_subset_header((100, None)) == ("100", "All")
