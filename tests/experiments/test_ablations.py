"""Tests for the ablation experiments (tiny scale, shared cache)."""

import pytest

from repro.core.config import ExperimentConfig
from repro.experiments import ablations

CONFIG = ExperimentConfig(scale="tiny", term_subsets=(100, 1000))


class TestSamplingAblation:
    def test_grid_shape(self):
        table = ablations.sampling_ablation(CONFIG)
        assert table.columns == ("Classifier", "NO", "SUB", "SMOTE")
        assert len(table.rows) == 3

    def test_all_aucs_valid(self):
        table = ablations.sampling_ablation(CONFIG)
        for row in table.rows:
            assert all(0.0 <= v <= 1.0 for v in row[1:])


class TestTrustrankAblation:
    def test_rows_per_damping_and_seed(self):
        table = ablations.trustrank_ablation(CONFIG, dampings=(0.7, 0.85))
        assert len(table.rows) == 4  # 2 dampings x 2 seed variants


class TestNggParameterAblation:
    def test_ranks_swept(self):
        table = ablations.ngg_parameter_ablation(CONFIG, ranks=(3, 4))
        assert [row[0] for row in table.rows] == ["n=3", "n=4"]


class TestRankingCombinerAblation:
    def test_three_combiners(self):
        table = ablations.ranking_combiner_ablation(CONFIG)
        assert len(table.rows) == 3
        values = dict(table.rows)
        assert all(0.0 <= v <= 1.0 for v in values.values())

    def test_cumulative_not_worse_than_network_only(self):
        values = dict(ablations.ranking_combiner_ablation(CONFIG).rows)
        assert (
            values["textRank + networkRank (paper)"]
            >= values["networkRank only"] - 0.05
        )


class TestRepresentationAblation:
    def test_three_representations(self):
        table = ablations.representation_ablation(CONFIG)
        assert len(table.rows) == 3
        assert all(row[1] > 0.8 for row in table.rows)


class TestTrustAlgorithmAblation:
    def test_both_algorithms_work(self):
        table = ablations.trust_algorithm_ablation(CONFIG)
        values = {row[0]: row[1] for row in table.rows}
        assert set(values) == {"TrustRank (paper)", "EigenTrust [18]"}
        assert all(v > 0.7 for v in values.values())


class TestLabelNoiseAblation:
    def test_degrades_gracefully(self):
        table = ablations.label_noise_ablation(
            CONFIG, noise_rates=(0.0, 0.3)
        )
        for row in table.rows:
            clean, noisy = row[1], row[2]
            assert clean >= noisy - 0.05  # noise never helps (much)
            assert clean > 0.9


class TestReviewEffortExperiment:
    def test_system_between_ideal_and_random(self):
        table = ablations.review_effort_experiment(CONFIG)
        values = {row[0]: row[1] for row in table.rows}
        assert (
            values["ideal (oracle queue)"]
            <= values["system ranking (paper model)"]
            <= values["random queue (unassisted)"] + 1e-9
        )


class TestAuxiliarySitesAblation:
    def test_two_graph_variants(self):
        table = ablations.auxiliary_sites_ablation(CONFIG)
        assert len(table.rows) == 2
        assert all(0.0 <= row[1] <= 1.0 for row in table.rows)


class TestReportGeneration:
    def test_markdown_report_contains_sections(self):
        from repro.experiments.report import generate_report

        report = generate_report(CONFIG, include_ablations=False)
        assert "# Reproduction report" in report
        assert "### table1" in report
        assert "### figure3" in report
        assert "|---" in report  # markdown tables present


class TestTermSelectionAblation:
    def test_budget_sweep_shape(self):
        table = ablations.term_selection_ablation(CONFIG, budgets=(10, 50))
        assert len(table.rows) == 2
        for row in table.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0

    def test_policies_converge_at_generous_budget(self):
        table = ablations.term_selection_ablation(CONFIG, budgets=(50,))
        row = table.rows[0]
        assert abs(row[1] - row[2]) < 0.1


class TestSeedStability:
    def test_spread_row_appended(self):
        table = ablations.seed_stability_experiment(CONFIG, seeds=(7, 11))
        assert len(table.rows) == 3
        assert table.rows[-1][0] == "spread (max-min)"

    def test_per_seed_values_in_range(self):
        table = ablations.seed_stability_experiment(CONFIG, seeds=(7, 11))
        for row in table.rows[:-1]:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0
            assert 0.0 <= row[3] <= 1.0


class TestGrayZoneExperiment:
    def test_gray_scores_between_classes(self):
        table = ablations.gray_zone_experiment(CONFIG, n_gray=4)
        scores = {row[0]: row[1] for row in table.rows}
        assert (
            scores["illegitimate (unseen)"]
            < scores["potentially legitimate (gray)"]
            < scores["legitimate (unseen)"]
        )
