"""Tests for the table-regeneration harness (tiny scale).

These are integration tests of the experiment harness: they assert the
*shape* of the paper's findings, not absolute values.  One tiny-scale
config is shared so the cached sweeps run once per session.
"""

import pytest

from repro.core.config import ExperimentConfig
from repro.experiments import tables
from repro.experiments.runner import EXPERIMENT_IDS, run_experiment

CONFIG = ExperimentConfig(scale="tiny", term_subsets=(100, 1000))


class TestTable1:
    def test_counts(self):
        table = tables.table1(CONFIG)
        assert table.cell("# Examples", "Dataset 1") == 100
        assert table.cell("# Legitimate Examples", "Dataset 2") == 12

    def test_notes_confirm_dataset_semantics(self):
        notes = " ".join(tables.table1(CONFIG).notes)
        assert "disjoint: True" in notes
        assert "identical: True" in notes


class TestTfidfTables:
    def test_accuracy_above_imbalance_baseline(self):
        table = tables.table3(CONFIG)
        for value in table.column_values("1000"):
            assert value > 0.88

    def test_nbm_and_svm_beat_j48(self):
        """The paper's headline ordering: J48 is the weakest."""
        table = tables.table6(CONFIG)
        j48 = table.cell("J48", "1000")
        assert table.cell("NBM", "1000") >= j48
        assert table.cell("SVM", "1000") >= j48

    def test_recall_precision_tables_share_sweep_cache(self):
        t4 = tables.table4(CONFIG)
        t5 = tables.table5(CONFIG)
        assert len(t4.rows) == 6  # 3 classifiers x {recall, precision}
        assert len(t5.rows) == 6

    def test_illegit_precision_high_everywhere(self):
        """Paper: 'illegitimate precision is generally high, all above
        93%' — a direct consequence of the class imbalance."""
        table = tables.table5(CONFIG)
        precision_rows = [row for row in table.rows if row[0] == "Precision"]
        for row in precision_rows:
            for value in row[3:]:
                assert value > 0.9


class TestNetworkTables:
    def test_table11_legit_column_dominated_by_trusted_domains(self):
        table = tables.table11(CONFIG)
        legit_column = table.column_values("pointed by legitimate")
        assert "fda.gov" in legit_column
        assert {"facebook.com", "twitter.com"} & set(legit_column)

    def test_table11_illegit_column_contains_affiliates(self):
        table = tables.table11(CONFIG)
        illegit_column = set(table.column_values("pointed by illegitimate"))
        assert {"wikipedia.org", "wordpress.org"} & illegit_column

    def test_table12_accuracy_reasonable(self):
        table = tables.table12(CONFIG)
        assert table.cell("NB", "Overall Accuracy") > 0.85

    def test_table13_legit_recall_is_weak_spot(self):
        """Paper Table 13: network legit recall (0.73) is clearly below
        illegit recall (0.99)."""
        table = tables.table13(CONFIG)
        assert table.cell("NB", "legitimate recall") < table.cell(
            "NB", "illegitimate recall"
        )


class TestRankingTable:
    def test_pairord_near_one(self):
        table = tables.table15(CONFIG)
        for value in table.column_values("pairord"):
            assert value > 0.9


class TestTimeTables:
    def test_auc_stable_over_time(self):
        """Paper: 'the AUC ROC value remains almost the same'."""
        table = tables.table16(CONFIG)
        for row in table.rows:
            if row[0] != "NBM":
                continue
            values = row[2:]
            assert max(values) - min(values) < 0.1

    def test_old_new_precision_not_above_old_old(self):
        """Paper: Old-New legitimate precision shows a reduction."""
        table = tables.table17(CONFIG)
        nbm = {c: table.cell("NBM", c) for c in table.columns[2:]}
        old_old = [v for c, v in nbm.items() if c.startswith("Old-Old")]
        old_new = [v for c, v in nbm.items() if c.startswith("Old-New")]
        assert min(old_new) <= max(old_old) + 0.05


class TestRunner:
    def test_all_ids_registered(self):
        assert "table3" in EXPERIMENT_IDS
        assert "figure3" in EXPERIMENT_IDS

    def test_run_experiment_renders(self):
        text = run_experiment("table1", CONFIG)
        assert "Dataset 1" in text

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99", CONFIG)

    def test_cache_hits_are_fast(self):
        import time

        tables.table3(CONFIG)  # warm
        start = time.time()
        tables.table3(CONFIG)
        assert time.time() - start < 0.1
