"""Tests for the sweep scheduler (``repro.experiments.sweep``).

The load-bearing property is compute-sharing equivalence: fitting each
(subset, fold)'s feature matrices once and sharing them across the
roster (``shared=True``) must produce tables identical to refitting
per config (``shared=False``), at any worker count, with or without
the disk cache.
"""

import random

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.sweep import SweepEntry, run_tfidf_sweep
from repro.ml.naive_bayes import MultinomialNB
from repro.ml.sampling import SMOTE
from repro.ml.svm import LinearSVC
from repro.perf.cache import FeatureCache

VOCAB = [f"w{i}" for i in range(30)]


def make_corpus(seed=0, n_docs=36):
    rng = random.Random(seed)
    labels = np.array([i % 2 for i in range(n_docs)])
    tokens = [
        [rng.choice(VOCAB) for _ in range(rng.randint(20, 50))]
        + (["pharma", "cheap"] * 3 if label else ["licensed", "verified"] * 3)
        for i, label in enumerate(labels)
    ]
    return labels, {100: tokens, 20: [doc[:20] for doc in tokens]}


ROSTER = (
    SweepEntry("NBM", "NO", MultinomialNB()),
    SweepEntry("SVM", "NO", LinearSVC(seed=0)),
    SweepEntry("NBM-SMOTE", "SMOTE", MultinomialNB(), SMOTE(seed=0)),
)


class TestRunTfidfSweep:
    def test_result_grid_shape(self):
        labels, by_subset = make_corpus()
        out = run_tfidf_sweep(ROSTER, labels, by_subset, n_folds=3)
        assert set(out) == {
            (entry.name, subset) for entry in ROSTER for subset in by_subset
        }
        for report in out.values():
            assert len(report.fold_reports) == 3
            assert 0.0 <= report.measure("auc_roc").mean <= 1.0

    def test_shared_equals_per_config_refit(self):
        labels, by_subset = make_corpus()
        shared = run_tfidf_sweep(ROSTER, labels, by_subset, shared=True)
        refit = run_tfidf_sweep(ROSTER, labels, by_subset, shared=False)
        assert shared == refit

    def test_parallel_equals_serial(self):
        labels, by_subset = make_corpus(seed=1)
        serial = run_tfidf_sweep(ROSTER, labels, by_subset, jobs=1)
        fanned = run_tfidf_sweep(ROSTER, labels, by_subset, jobs=2)
        assert serial == fanned

    def test_empty_roster_raises(self):
        labels, by_subset = make_corpus()
        with pytest.raises(ValidationError):
            run_tfidf_sweep((), labels, by_subset)

    def test_duplicate_names_raise(self):
        labels, by_subset = make_corpus()
        roster = (ROSTER[0], SweepEntry("NBM", "SUB", MultinomialNB()))
        with pytest.raises(ValidationError):
            run_tfidf_sweep(roster, labels, by_subset)

    def test_cache_requires_fingerprint(self, tmp_path):
        labels, by_subset = make_corpus()
        cache = FeatureCache(tmp_path)
        with pytest.raises(ValidationError):
            run_tfidf_sweep(ROSTER, labels, by_subset, cache=cache)

    def test_cache_round_trip(self, tmp_path):
        labels, by_subset = make_corpus(seed=2)
        cache = FeatureCache(tmp_path)
        fresh = run_tfidf_sweep(
            ROSTER, labels, by_subset, cache=cache, cache_fingerprint="fp-1"
        )
        cached = run_tfidf_sweep(
            ROSTER, labels, by_subset, cache=cache, cache_fingerprint="fp-1"
        )
        assert fresh == cached


class TestSweepEntry:
    def test_describe_is_json_able(self):
        import json

        entry = SweepEntry("J48", "SMOTE", MultinomialNB(), SMOTE(seed=0))
        blob = json.dumps(entry.describe(), sort_keys=True)
        assert "J48" in blob and "SMOTE" in blob

    def test_describe_distinguishes_params(self):
        a = SweepEntry("SVM", "NO", LinearSVC(seed=0))
        b = SweepEntry("SVM", "NO", LinearSVC(seed=1))
        assert a.describe() != b.describe()

    def test_prototype_not_mutated_by_sweep(self):
        labels, by_subset = make_corpus()
        entry = SweepEntry("NBM", "NO", MultinomialNB())
        params_before = entry.classifier.get_params()
        run_tfidf_sweep((entry,), labels, by_subset, n_folds=2)
        assert entry.classifier.get_params() == params_before


class TestRunnerFlag:
    def test_per_config_refit_flag_disables_sharing(self, monkeypatch, capsys):
        # The CLI flag flips the config knob; results stay identical
        # (pinned above by test_shared_equals_per_config_refit).
        from repro.experiments import runner

        captured = {}

        def fake_run(experiment_id, config):
            captured[experiment_id] = config
            return ""

        monkeypatch.setattr(runner, "run_experiment", fake_run)
        runner.main(["--scale", "tiny", "--per-config-refit", "table3"])
        assert captured["table3"].shared_sweeps is False
        runner.main(["--scale", "tiny", "table3"])
        assert captured["table3"].shared_sweeps is True
        capsys.readouterr()
