"""Public-API surface tests."""

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points(self):
        assert callable(repro.make_dataset)
        assert callable(repro.make_dataset_pair)
        assert callable(repro.rank_pharmacies)
        assert callable(repro.trustrank)

    def test_serving_surface(self):
        assert callable(repro.build_server)
        assert callable(repro.VerificationService)
        assert callable(repro.SlidingWindowRateLimiter)
        assert callable(repro.Bulkhead)
        assert callable(repro.Authenticator)

        from repro.serve import (
            DEFAULT_TIERS,
            Deadline,
            MetricsRegistry,
            ServiceConfig,
            Tier,
            VerificationHTTPServer,
        )

        assert "anonymous" in DEFAULT_TIERS
        assert all(isinstance(t, Tier) for t in DEFAULT_TIERS.values())
        for exported in (Deadline, MetricsRegistry, ServiceConfig,
                         VerificationHTTPServer):
            assert callable(exported)

    def test_error_hierarchy(self):
        from repro.exceptions import (
            ConfigurationError,
            CrawlError,
            DataGenerationError,
            GraphError,
            InvalidURLError,
            NotFittedError,
            ReproError,
            ServiceUnavailableError,
        )

        for exc in (
            ConfigurationError,
            CrawlError,
            DataGenerationError,
            GraphError,
            InvalidURLError,
            NotFittedError,
            ServiceUnavailableError,
        ):
            assert issubclass(exc, ReproError)

        unavailable = ServiceUnavailableError("verify", "poisoned", retry_after=7.0)
        assert unavailable.backend == "verify"
        assert unavailable.retry_after == pytest.approx(7.0)
