"""Public-API surface tests."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points(self):
        assert callable(repro.make_dataset)
        assert callable(repro.make_dataset_pair)
        assert callable(repro.rank_pharmacies)
        assert callable(repro.trustrank)

    def test_error_hierarchy(self):
        from repro.exceptions import (
            ConfigurationError,
            CrawlError,
            DataGenerationError,
            GraphError,
            InvalidURLError,
            NotFittedError,
            ReproError,
        )

        for exc in (
            ConfigurationError,
            CrawlError,
            DataGenerationError,
            GraphError,
            InvalidURLError,
            NotFittedError,
        ):
            assert issubclass(exc, ReproError)
