"""Reviewer triage: ranking + outlier analysis (the paper's use case).

The paper motivates the system as an assistant for human reviewers at a
verification company: instead of reviewing thousands of pharmacies in
arbitrary order, reviewers get a legitimacy-ranked list and a shortlist
of *outliers* — the illegitimate pharmacies that fooled the system and
the legitimate ones it under-ranks (Section 6.4).

This example reproduces that workflow, including the pairwise
orderedness quality measure and a comparison with the generator's
ground truth about which sites were deliberately atypical.

Run:  python examples/reviewer_triage.py
"""

from __future__ import annotations

import numpy as np

from repro import GeneratorConfig, PharmacyVerifier, analyze_outliers, make_dataset
from repro.core import simulate_review


def main() -> None:
    corpus = make_dataset(
        GeneratorConfig(
            n_legitimate=24,
            n_illegitimate=176,
            n_potentially_legitimate=6,
            seed=13,
        )
    )
    train_idx = np.arange(0, len(corpus), 2)
    test_idx = np.arange(1, len(corpus), 2)

    verifier = PharmacyVerifier(max_terms=1000, seed=0).fit(
        corpus.subset(train_idx)
    )

    sites = [corpus.sites[i] for i in test_idx]
    labels = corpus.labels[test_idx]
    ranking = verifier.rank_sites(sites, oracle_labels=labels)

    print(f"Ranked {len(ranking.entries)} pharmacies.")
    print(f"Pairwise orderedness: {ranking.pairord:.4f}\n")

    print("Top of the list (most legitimate):")
    for entry in ranking.entries[:5]:
        truth = "legit" if entry.oracle_label == 1 else "ILLEGIT"
        print(f"  {entry.rank_score:7.3f}  [{truth:7}]  {entry.domain}")
    print("Bottom of the list (least legitimate):")
    for entry in ranking.entries[-5:]:
        truth = "legit" if entry.oracle_label == 1 else "ILLEGIT"
        print(f"  {entry.rank_score:7.3f}  [{truth:7}]  {entry.domain}")

    outliers = analyze_outliers(ranking, top_k=3)
    print("\nIllegitimate outliers (highest-ranked bad sites — the ones")
    print("that fooled the system; the paper found these avoid affiliate")
    print("networks):")
    for entry in outliers.illegitimate_outliers:
        record = corpus.record_for(entry.domain)
        tags = []
        if record.is_outlier:
            tags.append("generator-designed mimic")
        if not record.is_affiliate_member and not record.is_affiliate_hub:
            tags.append("no affiliate network")
        print(f"  {entry.rank_score:7.3f}  {entry.domain}  ({', '.join(tags) or '-'})")

    print("\nLegitimate outliers (lowest-ranked good sites — the paper")
    print("found these are the pharmacies offering *new* prescriptions):")
    for entry in outliers.legitimate_outliers:
        record = corpus.record_for(entry.domain)
        tag = "scam-adjacent storefront" if record.is_outlier else "-"
        print(f"  {entry.rank_score:7.3f}  {entry.domain}  ({tag})")

    # "Potentially legitimate" pharmacies (Section 6.1): outside the
    # labelled working set, scored for the reviewers' gray queue.
    if corpus.gray_sites:
        gray_reports = verifier.verify_sites(list(corpus.gray_sites))
        print("\nGray queue — 'potentially legitimate' pharmacies (scored")
        print("between the two classes, for manual policy review):")
        for report in sorted(gray_reports, key=lambda r: -r.rank_score):
            print(f"  {report.rank_score:7.3f}  {report.domain}")

    # Budgeted review simulation: how fast does the ranked queue burn
    # through the illegitimate population?
    log = simulate_review(ranking, daily_budget=20)
    print("\nBudgeted review simulation (20 reviews/day, ranked queue):")
    for entry in log[:4]:
        print(
            f"  day {entry.day}: reviewed {entry.reviewed:3d}, "
            f"illegitimate found so far {entry.illegitimate_found_total:3d} "
            f"({entry.recall_of_illegitimate:.0%})"
        )


if __name__ == "__main__":
    main()
