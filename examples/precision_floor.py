"""Operating the verifier under a precision floor (deployment recipe).

A verification company that auto-publishes a whitelist cannot afford
false "legitimate" calls.  This example shows the operational loop the
library supports beyond the paper:

1. train the verifier on the labelled working set;
2. tune the decision threshold on a holdout so legitimate precision
   stays above a floor (here 95%), trading recall for safety;
3. persist the tuned model with ``repro.io`` and reload it, as a
   deployment would;
4. verify fresh pharmacies and report the precision/recall actually
   achieved at the tuned operating point.

Run:  python examples/precision_floor.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    GeneratorConfig,
    PharmacyVerifier,
    load_model,
    make_dataset_pair,
    save_model,
)
from repro.ml import precision, recall


def main() -> None:
    dataset1, dataset2 = make_dataset_pair(
        GeneratorConfig(n_legitimate=24, n_illegitimate=176, seed=29)
    )

    # Split the first crawl: train / threshold-tuning holdout.
    train_idx = np.arange(0, len(dataset1), 2)
    holdout_idx = np.arange(1, len(dataset1), 2)
    verifier = PharmacyVerifier(max_terms=1000, seed=0).fit(
        dataset1.subset(train_idx)
    )

    holdout_sites = [dataset1.sites[i] for i in holdout_idx]
    holdout_labels = dataset1.labels[holdout_idx]
    threshold = verifier.tune_threshold(
        holdout_sites, holdout_labels, min_precision=0.95
    )
    print(f"tuned decision threshold: {threshold:.4f} "
          f"(legitimate precision floor 95%)")

    # Persist + reload, as a deployment would between train and serve.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "verifier.pkl"
        save_model(verifier, path)
        served = load_model(path)
        print(f"model round-tripped through {path.name}; "
              f"threshold preserved: {served.decision_threshold:.4f}")

        # Serve both the tuning-period holdout and the six-months-later
        # crawl (fresh, drifted illegitimate sites).
        same_period = served.verify_sites(holdout_sites)
        drifted = served.verify_sites(list(dataset2.sites))

    def report(name, reports, truth):
        predictions = np.array([r.predicted_label for r in reports])
        print(
            f"\n{name}:"
            f"\n  legitimate precision: {precision(truth, predictions, 1):.3f}"
            f"\n  legitimate recall:    {recall(truth, predictions, 1):.3f}"
            f"\n  whitelisted sites:    {int(predictions.sum())} of {len(truth)}"
        )
        return precision(truth, predictions, 1)

    p_same = report("same-period holdout", same_period, holdout_labels)
    p_drift = report(
        "six months later (drifted illegitimate population)",
        drifted,
        dataset2.labels,
    )
    print(
        "\nThe floor holds in-period but erodes on the drifted crawl"
        f" ({p_same:.2f} -> {p_drift:.2f}) — exactly the paper's"
        "\nSection 6.5 finding: thresholds and models need periodic"
        "\nretraining as the illegitimate population turns over."
    )


if __name__ == "__main__":
    main()
