"""Model drift over time: the Section 6.5 scenario as a monitoring loop.

Trains on the first crawl (Dataset 1), then simulates a six-month gap by
evaluating the stale model on the second crawl (Dataset 2), whose
illegitimate population turned over completely and drifted its
vocabulary.  Shows exactly what the paper reports: AUC stays flat while
legitimate precision degrades — the signal that retraining is due.

Run:  python examples/model_drift.py
"""

from __future__ import annotations

from repro import GeneratorConfig, make_dataset_pair
from repro.core.evaluation import cross_validate_pipeline, train_test_evaluate
from repro.core.text_pipeline import TfidfTextPipeline
from repro.ml import MultinomialNB
from repro.text import Summarizer


def main() -> None:
    print("Generating both crawls (six months apart) ...")
    dataset1, dataset2 = make_dataset_pair(
        GeneratorConfig(n_legitimate=24, n_illegitimate=176, seed=21)
    )
    summarizer = Summarizer(max_terms=1000, seed=0)
    docs1 = [summarizer.summarize_site(s) for s in dataset1.sites]
    docs2 = [summarizer.summarize_site(s) for s in dataset2.sites]

    def pipeline():
        return TfidfTextPipeline(MultinomialNB())

    print("Old-Old: 3-fold CV on Dataset 1 (fresh model, old data)")
    old_old = cross_validate_pipeline(pipeline, docs1, dataset1.labels)
    print("New-New: 3-fold CV on Dataset 2 (fresh model, new data)")
    new_new = cross_validate_pipeline(pipeline, docs2, dataset2.labels)
    print("Old-New: train on Dataset 1, test on Dataset 2 (stale model)\n")
    old_new = train_test_evaluate(
        pipeline, docs1, dataset1.labels, docs2, dataset2.labels
    )

    rows = [
        ("Old-Old", old_old.auc_roc.mean, old_old.legitimate_precision.mean),
        ("New-New", new_new.auc_roc.mean, new_new.legitimate_precision.mean),
        ("Old-New", old_new.auc_roc, old_new.legitimate_precision),
    ]
    print(f"{'regime':8}  {'AUC ROC':>8}  {'legit precision':>16}")
    print("-" * 38)
    for name, auc, legit_precision in rows:
        print(f"{name:8}  {auc:8.3f}  {legit_precision:16.3f}")

    drop = rows[0][2] - rows[2][2]
    print(
        f"\nLegitimate precision drop Old-Old -> Old-New: {drop:+.3f}"
        "\n(the paper's conclusion: models are robust over time, but"
        "\nperiodic retraining is needed to keep legitimate precision)"
    )


if __name__ == "__main__":
    main()
