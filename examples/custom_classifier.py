"""Extending the library: plug a custom classifier into the pipelines.

The pipelines accept any object implementing the
:class:`repro.ml.base.BaseClassifier` contract, so domain teams can swap
in their own models without touching the rest of the system.  This
example implements a tiny *k*-nearest-neighbour classifier from scratch,
plugs it into both text pipelines, and compares it against the paper's
roster with the standard 3-fold protocol.

Run:  python examples/custom_classifier.py
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import GeneratorConfig, make_dataset
from repro.core.evaluation import cross_validate_pipeline
from repro.core.text_pipeline import NGramGraphTextPipeline, TfidfTextPipeline
from repro.ml import MultinomialNB
from repro.ml.base import BaseClassifier, check_X_y, ensure_dense
from repro.text import Summarizer


class KNNClassifier(BaseClassifier):
    """Cosine-distance k-NN with probability = neighbour vote share."""

    def __init__(self, k: int = 7) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: Any, y: Any) -> "KNNClassifier":
        X = ensure_dense(X)
        X, y = check_X_y(X, y, allow_sparse=False)
        encoded = self._store_classes(y)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._X = X / norms
        self._y = encoded
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._X is None or self._y is None:
            from repro.exceptions import NotFittedError

            raise NotFittedError("KNNClassifier has not been fitted")
        X = ensure_dense(X)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        sims = (X / norms) @ self._X.T
        k = min(self._k, self._X.shape[0])
        n_classes = len(self._fitted_classes())
        out = np.zeros((X.shape[0], n_classes))
        for i in range(X.shape[0]):
            nearest = np.argpartition(-sims[i], k - 1)[:k]
            votes = np.bincount(self._y[nearest], minlength=n_classes)
            out[i] = (votes + 0.5) / (votes.sum() + 0.5 * n_classes)
        return out


def main() -> None:
    corpus = make_dataset(
        GeneratorConfig(n_legitimate=18, n_illegitimate=132, seed=3)
    )
    summarizer = Summarizer(max_terms=500, seed=0)
    docs = [summarizer.summarize_site(s) for s in corpus.sites]
    y = corpus.labels

    contenders = [
        ("NBM / TF-IDF (paper)", lambda: TfidfTextPipeline(MultinomialNB())),
        ("kNN / TF-IDF (custom)", lambda: TfidfTextPipeline(KNNClassifier(k=7))),
        (
            "kNN / N-Gram Graphs (custom)",
            lambda: NGramGraphTextPipeline(KNNClassifier(k=7), seed=0),
        ),
    ]

    print(f"{'model':32}  {'accuracy':>8}  {'AUC ROC':>8}  {'legit recall':>12}")
    print("-" * 68)
    for name, factory in contenders:
        agg = cross_validate_pipeline(factory, docs, y, n_folds=3)
        print(
            f"{name:32}  {agg.accuracy.mean:8.3f}  {agg.auc_roc.mean:8.3f}"
            f"  {agg.legitimate_recall.mean:12.3f}"
        )
    print(
        "\nAny object with fit/predict_proba (see repro.ml.base."
        "BaseClassifier)\ndrops into the same pipelines, samplers, and "
        "evaluation harness."
    )


if __name__ == "__main__":
    main()
