"""Figure 1 substitute: two storefronts you cannot tell apart by eye.

The paper's Figure 1 shows screenshots of two real pharmacy front pages
and challenges the reader to spot the illegitimate one (it is the first
one).  Screenshots cannot be reproduced from data; this example renders
the synthetic equivalent — the front-page text of one legitimate and one
illegitimate pharmacy chosen so casual inspection is inconclusive — and
then shows what the classifier sees that a human skims over: the
aggregate term statistics.

Run:  python examples/storefronts.py
"""

from __future__ import annotations

from collections import Counter

from repro import GeneratorConfig, make_dataset
from repro.data.lexicon import (
    LIFESTYLE_DRUGS,
    NO_PRESCRIPTION_MARKETING,
    STORE_PRESENCE,
    VERIFICATION_SEALS,
)


def preview(text: str, width: int = 72, lines: int = 5) -> str:
    words = text.split()
    out, line = [], ""
    for word in words:
        if len(line) + len(word) + 1 > width:
            out.append(line)
            line = word
            if len(out) == lines:
                break
        else:
            line = f"{line} {word}".strip()
    return "\n".join(out)


def signal_profile(site) -> dict[str, int]:
    tokens = site.merged_text().split()
    counts = Counter(tokens)
    pools = {
        "lifestyle drugs (viagra, cialis, ...)": LIFESTYLE_DRUGS,
        "'no prescription' marketing": NO_PRESCRIPTION_MARKETING,
        "store presence (contact, address, ...)": STORE_PRESENCE,
        "verification seals (vipps, nabp, ...)": VERIFICATION_SEALS,
    }
    return {
        name: sum(counts[w] for w in pool) for name, pool in pools.items()
    }


def main() -> None:
    corpus = make_dataset(
        GeneratorConfig(n_legitimate=12, n_illegitimate=88, seed=7)
    )
    # Pick an illegitimate *outlier* (a deliberate mimic) so the
    # storefronts genuinely look alike, as in the paper's Figure 1.
    legit = next(
        s for s, r in zip(corpus.sites, corpus.records)
        if r.label == 1 and not r.is_outlier
    )
    mimics = [
        s for s, r in zip(corpus.sites, corpus.records)
        if r.label == 0 and r.is_outlier
    ]
    illegit = mimics[0] if mimics else corpus.sites[-1]

    print("=" * 72)
    print("ONLINE PHARMACY 1 — front page")
    print("=" * 72)
    print(preview(illegit.front_page().text))
    print()
    print("=" * 72)
    print("ONLINE PHARMACY 2 — front page")
    print("=" * 72)
    print(preview(legit.front_page().text))

    print(
        "\nCan you tell which one is illegitimate?  (As in the paper's"
        "\nFigure 1, pharmacy 1 is the illegitimate one.)\n"
    )

    print("What the classifier aggregates over ALL crawled pages:")
    for name, site in (("pharmacy 1", illegit), ("pharmacy 2", legit)):
        profile = signal_profile(site)
        print(f"\n  {name} ({site.n_pages} pages, {site.domain})")
        for signal, count in profile.items():
            print(f"    {signal:42} {count:4d}")
        print(f"    {'outbound link endpoints':42} {', '.join(site.outbound_endpoints()[:4])}")


if __name__ == "__main__":
    main()
