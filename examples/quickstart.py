"""Quickstart: train the verifier and classify unseen pharmacies.

Runs the whole system end to end in under a minute:

1. generate a synthetic pharmacy web (the proprietary-crawl substitute,
   see DESIGN.md) and crawl it;
2. split it into a labelled working set and "unseen" pharmacies;
3. train :class:`repro.PharmacyVerifier` (TF-IDF text classifier +
   TrustRank network scores);
4. verify the unseen sites and print a triage report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GeneratorConfig, PharmacyVerifier, make_dataset


def main() -> None:
    print("Generating and crawling the synthetic pharmacy web ...")
    corpus = make_dataset(
        GeneratorConfig(n_legitimate=24, n_illegitimate=176, seed=7)
    )
    summary = corpus.summary()
    print(
        f"  {summary.n_examples} pharmacies crawled "
        f"({summary.n_legitimate} legitimate / "
        f"{summary.n_illegitimate} illegitimate)"
    )

    # Odd rows are the "unseen" pharmacies a reviewer would triage.
    train_idx = np.arange(0, len(corpus), 2)
    test_idx = np.arange(1, len(corpus), 2)
    train = corpus.subset(train_idx)

    print("Training the verifier on the labelled working set ...")
    verifier = PharmacyVerifier(max_terms=1000, seed=0).fit(train)

    print("Verifying unseen pharmacies ...\n")
    sites = [corpus.sites[i] for i in test_idx]
    reports = verifier.verify_sites(sites)

    header = f"{'domain':38}  {'verdict':12}  {'P(legit)':>8}  {'rank':>7}"
    print(header)
    print("-" * len(header))
    for report in sorted(reports, key=lambda r: -r.rank_score)[:12]:
        verdict = "LEGITIMATE" if report.is_legitimate else "illegitimate"
        print(
            f"{report.domain:38}  {verdict:12}  "
            f"{report.legitimacy_probability:8.3f}  {report.rank_score:7.3f}"
        )
    print("... (top 12 by rank score shown)")

    truth = corpus.labels[test_idx]
    predictions = np.array([r.predicted_label for r in reports])
    accuracy = float((predictions == truth).mean())
    print(f"\nAccuracy against the oracle on unseen pharmacies: {accuracy:.3f}")


if __name__ == "__main__":
    main()
