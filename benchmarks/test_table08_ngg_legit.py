"""Table 8: N-Gram-Graph legitimate recall and precision."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table08_ngg_legit(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table8(bench_config))
    emit("table08", table.render())
    recall_rows = {row[1]: row for row in table.rows if row[0] == "Recall"}
    # Paper shape: MLP has the best legitimate recall of the roster.
    mlp = recall_rows["MLP"][-1]
    assert mlp >= recall_rows["NB"][-1] - 0.02
