"""Ablation: Term Vector vs Character N-Grams vs N-Gram Graphs ([13])."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import representation_ablation


def test_ablation_representation(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: representation_ablation(bench_config))
    emit("ablation_representation", table.render(precision=3))
    values = dict(zip(table.column_values("Representation"),
                      table.column_values("AUC ROC")))
    # All three representations are viable on this task (paper: the two
    # it evaluates "perform very close to one another").
    assert all(v > 0.9 for v in values.values())
