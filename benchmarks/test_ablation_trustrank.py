"""Ablation: TrustRank damping factor and seed composition."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import trustrank_ablation


def test_ablation_trustrank(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: trustrank_ablation(bench_config))
    emit("ablation_trustrank", table.render(precision=3))
    values = table.column_values("AUC ROC")
    # Network signal stays usable across the damping sweep.
    assert all(v > 0.8 for v in values)
    # The richer distrust seed (future-work extension) should not hurt
    # at the paper's damping.
    by_key = {(row[0], row[1]): row[2] for row in table.rows}
    assert (
        by_key[("damping=0.85", "trust+distrust")]
        >= by_key[("damping=0.85", "trust-only")] - 0.05
    )
