"""Table 1: dataset construction (generate + crawl both snapshots)."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table01_datasets(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table1(bench_config))
    emit("table01", table.render())
    ratio = table.cell("Legitimate fraction", "Dataset 1")
    assert 0.10 <= ratio <= 0.14  # the paper's 12% class ratio
    assert "disjoint: True" in " ".join(table.notes)
