"""Ablation: NO vs SUB vs SMOTE per TF-IDF classifier."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import sampling_ablation


def test_ablation_sampling(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: sampling_ablation(bench_config))
    emit("ablation_sampling", table.render())
    rows = {row[0]: row for row in table.rows}
    # Paper observation: "the choice of the sampling technique makes
    # almost no difference for NBM and SVM."
    for name in ("NBM", "SVM"):
        values = rows[name][1:]
        assert max(values) - min(values) < 0.12
    # "for J48 ... SMOTE is the sampling technique that offered the
    # best results" — SMOTE is at least competitive with NO for J48.
    j48 = dict(zip(table.columns[1:], rows["J48"][1:]))
    assert j48["SMOTE"] >= j48["NO"] - 0.08
