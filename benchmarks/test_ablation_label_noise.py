"""Ablation: training-label-noise robustness (paper refs [14], [24])."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import label_noise_ablation


def test_ablation_label_noise(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: label_noise_ablation(bench_config))
    emit("ablation_label_noise", table.render(precision=3))
    for row in table.rows:
        clean, *_, noisiest = row[1:]
        # Ranking quality survives clean labels and degrades gracefully
        # (never below chance) at 30% mislabeling.
        assert clean > 0.95
        assert noisiest > 0.5
