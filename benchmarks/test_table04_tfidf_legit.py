"""Table 4: TF-IDF legitimate recall and precision."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table04_tfidf_legit(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table4(bench_config))
    emit("table04", table.render())
    # Paper shape: more terms -> better legitimate recall for NBM/SVM.
    recall_rows = {row[1]: row for row in table.rows if row[0] == "Recall"}
    for name in ("NBM", "SVM"):
        row = recall_rows[name]
        assert row[-1] >= row[3] - 0.05  # All >= 100-term subsample
