"""Table 6: TF-IDF AUC-ROC sweep."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table06_tfidf_auc(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table6(bench_config))
    emit("table06", table.render())
    # Paper shape: NBM is the AUC winner (~0.99); J48 is the weakest.
    for column in table.columns[2:]:
        nbm = table.cell("NBM", column)
        j48 = table.cell("J48", column)
        assert nbm >= j48
    assert table.cell("NBM", "All") > 0.95
