"""Fault-injection soak: high-failure-rate crawls must converge.

Run in CI as its own job (see ``.github/workflows/ci.yml``): the whole
synthetic snapshot is crawled through a seeded
:class:`~repro.web.resilience.FaultInjectingWebHost` at a 40% transient
failure rate, and the retried acquisition must produce *exactly* the
fault-free corpus — same domains, same page sets — twice in a row with
identical failure accounting.  A third pass adds permanently dead seeds
and checks quarantine keeps the run alive and aligned.
"""

from __future__ import annotations

from repro.data.loaders import crawl_snapshot
from repro.data.synthesis import GeneratorConfig, SyntheticWebGenerator
from repro.web.resilience import (
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

SOAK_CONFIG = GeneratorConfig(
    n_legitimate=6,
    n_illegitimate=44,
    n_affiliate_hubs=3,
    min_pages=3,
    max_pages=8,
    min_terms_per_page=40,
    max_terms_per_page=80,
    seed=23,
)

TRANSIENT_RATE = 0.4
RETRY = RetryPolicy(max_attempts=5, seed=17)


def _page_map(corpus):
    return {
        site.domain: sorted(page.url for page in site.pages) for site in corpus
    }


def _soak_crawl(snapshot, seed):
    plan = FaultPlan.seeded(
        snapshot.host.urls(),
        seed=seed,
        transient_rate=TRANSIENT_RATE,
        max_recover_after=3,
    )
    host = FaultInjectingWebHost(snapshot.host, plan)
    corpus = crawl_snapshot(snapshot, host=host, retry_policy=RETRY)
    return corpus, host.attempts


class TestFaultInjectionSoak:
    def test_heavy_transient_soak_converges(self):
        snapshot = SyntheticWebGenerator(SOAK_CONFIG).generate_snapshot()
        clean = crawl_snapshot(snapshot)
        faulted, attempts = _soak_crawl(snapshot, seed=101)
        assert _page_map(faulted) == _page_map(clean)
        assert faulted.quarantined == ()
        # Sanity: the plan actually bit (retries happened).
        assert any(count > 1 for count in attempts.values())

    def test_soak_is_deterministic(self):
        snapshot = SyntheticWebGenerator(SOAK_CONFIG).generate_snapshot()
        first, attempts1 = _soak_crawl(snapshot, seed=101)
        second, attempts2 = _soak_crawl(snapshot, seed=101)
        assert _page_map(first) == _page_map(second)
        assert attempts1 == attempts2

    def test_dead_seeds_quarantine_not_abort(self):
        snapshot = SyntheticWebGenerator(SOAK_CONFIG).generate_snapshot()
        plan = FaultPlan.seeded(
            snapshot.host.urls(),
            seed=5,
            transient_rate=TRANSIENT_RATE,
            max_recover_after=3,
        )
        dead = snapshot.domains[:3]
        for domain in dead:
            plan.add(f"https://www.{domain}/", FaultSpec(FaultKind.PERMANENT))
        host = FaultInjectingWebHost(snapshot.host, plan)
        corpus = crawl_snapshot(
            snapshot, host=host, retry_policy=RETRY, quarantine=True
        )
        assert {q.domain for q in corpus.quarantined} == set(dead)
        assert len(corpus) == len(snapshot.domains) - len(dead)
