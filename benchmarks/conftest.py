"""Shared benchmark configuration.

Each benchmark regenerates one paper table or figure and prints the
reproduced rows (also written to ``benchmarks/output/<id>.txt``).

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default ``small``).  Expensive sweeps are cached per configuration in
:mod:`repro.experiments.tables`, so e.g. tables 3–6 share one sweep:
the first bench touching a sweep pays for it, the rest are cheap.  Use
``--benchmark-only -s`` to see the tables inline.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.config import ExperimentConfig
from repro.devtools.testing import pytest_runtest_call  # noqa: F401

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return ExperimentConfig(scale=scale)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are deterministic end-to-end regenerations, not
    micro-kernels; a single measured round keeps total runtime sane
    while still recording wall-clock cost per table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
