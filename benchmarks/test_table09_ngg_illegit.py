"""Table 9: N-Gram-Graph illegitimate recall and precision."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table09_ngg_illegit(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table9(bench_config))
    emit("table09", table.render())
    # Paper: illegitimate recall is ~0.94-0.99 across the roster.
    for row in table.rows:
        if row[0] == "Recall":
            assert all(v > 0.9 for v in row[3:])
