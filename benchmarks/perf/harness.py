"""Timed benchmarks: vectorized kernels vs their reference baselines.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.harness [--scale small]
        [--output benchmarks/output/BENCH_perf.json] [--repeat 3]

Benchmarks:

* ``ngg_build`` — per-document n-gram-graph construction, packed-key
  numpy path vs the dict-loop :class:`ReferenceNGramGraph`.
* ``ngg_batch_similarity`` — :meth:`ClassGraphModel.transform_graphs`
  (one vectorized pass per class graph) vs per-document per-edge dict
  probes.  Both sides start from pre-built graphs, so only the
  similarity kernel is timed.
* ``trustrank`` — the CSR SpMV power iteration vs the per-node Python
  loop, on the corpus link graph and on a larger synthetic graph.
* ``table12_end_to_end`` — full network-classification table
  regeneration (wall time only; no pre-PR baseline is runnable here).

Each result records ``wall_time_s`` (best of ``--repeat``),
``baseline_wall_time_s`` and ``speedup``.  The harness exits non-zero
if any benchmark raises, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.config import ExperimentConfig, preset
from repro.data.loaders import make_dataset
from repro.experiments import tables
from repro.io import atomic_write_text
from repro.network.construction import build_pharmacy_graph
from repro.network.graph import DirectedGraph
from repro.network.pagerank import personalized_pagerank
from repro.perf.reference import (
    ReferenceNGramGraph,
    reference_personalized_pagerank,
)
from repro.text.ngram_graph import ClassGraphModel, NGramGraph

#: Synthetic TrustRank graph size per scale: (nodes, edges).
GRAPH_SIZES = {
    "tiny": (400, 2_000),
    "small": (2_000, 12_000),
    "medium": (8_000, 60_000),
}

#: Documents used for the NGG benchmarks per scale.
DOC_COUNTS = {"tiny": 20, "small": 60, "medium": 150}


def _best_of(repeat: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """(best wall seconds, last result) over ``repeat`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _corpus_documents(scale: str) -> tuple[list[str], list[int]]:
    """Synthetic-corpus page texts + labels for the NGG benchmarks."""
    corpus = make_dataset(preset(scale).generator)
    n_docs = DOC_COUNTS[scale]
    texts: list[str] = []
    labels: list[int] = []
    for site, label in zip(corpus.sites, corpus.labels):
        texts.append(" ".join(page.text for page in site.pages))
        labels.append(int(label))
        if len(texts) >= n_docs:
            break
    return texts, labels


def _synthetic_graph(n_nodes: int, n_edges: int, seed: int = 7) -> DirectedGraph:
    rng = np.random.default_rng(seed)
    graph = DirectedGraph()
    names = [f"d{i}.example" for i in range(n_nodes)]
    for name in names:
        graph.add_node(name)
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    for s, d in zip(src, dst):
        if s != d:
            graph.add_edge(names[s], names[d])
    return graph


def bench_ngg_build(scale: str, repeat: int) -> dict[str, Any]:
    texts, _ = _corpus_documents(scale)

    fast_s, fast_graphs = _best_of(
        repeat, lambda: [NGramGraph.from_text(t) for t in texts]
    )
    base_s, base_graphs = _best_of(
        repeat, lambda: [ReferenceNGramGraph.from_text(t) for t in texts]
    )
    # Sanity: identical edge sets, or the timing comparison is void.
    assert dict(fast_graphs[0].edges()) == base_graphs[0].edges()
    return _result("ngg_build", scale, fast_s, base_s, n_items=len(texts))


def bench_ngg_batch_similarity(scale: str, repeat: int) -> dict[str, Any]:
    texts, labels = _corpus_documents(scale)
    model = ClassGraphModel(class_sample_fraction=1.0)
    model.fit(texts, labels)
    doc_graphs = [NGramGraph.from_text(t) for t in texts]
    ref_docs = [ReferenceNGramGraph.from_text(t) for t in texts]
    ref_class = {
        label: ReferenceNGramGraph.merged(
            [g for g, y in zip(ref_docs, labels) if y == label]
        )
        for label in model.classes
    }

    fast_s, fast_out = _best_of(repeat, lambda: model.transform_graphs(doc_graphs))

    def baseline() -> np.ndarray:
        out = np.zeros((len(ref_docs), 4 * len(ref_class)))
        for k, label in enumerate(model.classes):
            class_graph = ref_class[label]
            for row, doc in enumerate(ref_docs):
                out[row, 4 * k : 4 * k + 4] = doc.similarities(class_graph)
        return out

    base_s, base_out = _best_of(repeat, baseline)
    np.testing.assert_allclose(fast_out, base_out, atol=1e-9)
    return _result(
        "ngg_batch_similarity", scale, fast_s, base_s, n_items=len(texts)
    )


def bench_trustrank(scale: str, repeat: int) -> list[dict[str, Any]]:
    results = []
    corpus = make_dataset(preset(scale).generator)
    corpus_graph = build_pharmacy_graph(corpus.sites)
    trusted = {
        d: 1.0 for d, y in zip(corpus.domains, corpus.labels) if int(y) == 1
    }
    n_nodes, n_edges = GRAPH_SIZES[scale]
    synthetic = _synthetic_graph(n_nodes, n_edges)
    seeds = {f"d{i}.example": 1.0 for i in range(0, n_nodes, 10)}
    for name, graph, teleport in (
        ("trustrank", synthetic, seeds),
        ("trustrank_corpus_graph", corpus_graph, trusted),
    ):
        fast_s, fast = _best_of(
            repeat, lambda: personalized_pagerank(graph, teleport=teleport)
        )
        base_s, base = _best_of(
            repeat,
            lambda: reference_personalized_pagerank(graph, teleport=teleport),
        )
        worst = max(abs(fast[n] - base[n]) for n in base)
        assert worst < 1e-9, f"rank divergence {worst}"
        results.append(_result(name, scale, fast_s, base_s, n_items=len(graph)))
    return results


def bench_end_to_end(scale: str) -> dict[str, Any]:
    tables.clear_cache()
    config = ExperimentConfig(scale=scale)
    start = time.perf_counter()
    tables.table12(config)
    elapsed = time.perf_counter() - start
    return _result("table12_end_to_end", scale, elapsed, None, n_items=1)


def _result(
    op: str,
    scale: str,
    wall_time_s: float,
    baseline_wall_time_s: float | None,
    n_items: int,
) -> dict[str, Any]:
    speedup = (
        baseline_wall_time_s / wall_time_s
        if baseline_wall_time_s is not None and wall_time_s > 0
        else None
    )
    return {
        "op": op,
        "scale": scale,
        "n_items": n_items,
        "wall_time_s": round(wall_time_s, 6),
        "baseline_wall_time_s": (
            round(baseline_wall_time_s, 6)
            if baseline_wall_time_s is not None
            else None
        ),
        "speedup": round(speedup, 2) if speedup is not None else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the vectorized kernels against the references."
    )
    parser.add_argument(
        "--scale", default="small", choices=sorted(GRAPH_SIZES)
    )
    parser.add_argument(
        "--output",
        default=str(Path("benchmarks") / "output" / "BENCH_perf.json"),
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="best-of-N timing rounds"
    )
    args = parser.parse_args(argv)

    results: list[dict[str, Any]] = []
    results.append(bench_ngg_build(args.scale, args.repeat))
    results.append(bench_ngg_batch_similarity(args.scale, args.repeat))
    results.extend(bench_trustrank(args.scale, args.repeat))
    results.append(bench_end_to_end(args.scale))

    payload = {
        "benchmark": "repro-perf",
        "scale": args.scale,
        "repeat": args.repeat,
        "results": results,
    }
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(output, json.dumps(payload, indent=2) + "\n")
    for row in results:
        speedup = f"{row['speedup']:.2f}x" if row["speedup"] else "--"
        print(
            f"{row['op']:<24} {row['scale']:<7} "
            f"{row['wall_time_s']:>10.4f}s  speedup {speedup}"
        )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
