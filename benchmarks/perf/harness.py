"""Timed benchmarks: vectorized kernels vs their reference baselines.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.harness [--scale small]
        [--output benchmarks/output/BENCH_perf.json] [--repeat 3]

Benchmarks:

* ``ngg_build`` — per-document n-gram-graph construction, packed-key
  numpy path vs the dict-loop :class:`ReferenceNGramGraph`.
* ``ngg_batch_similarity`` — :meth:`ClassGraphModel.transform_graphs`
  (one vectorized pass per class graph) vs per-document per-edge dict
  probes.  Both sides start from pre-built graphs, so only the
  similarity kernel is timed.
* ``trustrank`` — the CSR SpMV power iteration vs the per-node Python
  loop, on the corpus link graph and on a larger synthetic graph.
* ``svm_fit`` — mini-batch Pegasos with vectorized margin/update steps
  vs the per-sample sequential loop (:func:`reference_pegasos_fit`).
* ``tree_fit`` — C4.5 argsort + cumulative-count split search vs the
  per-threshold loop (:class:`ReferenceC45Tree`).
* ``ensemble_select`` — prediction-tensor hill climbing with batched
  AUC vs the per-candidate loop (:func:`reference_ensemble_select`).
* ``smote`` — chunked-GEMM neighbour search + vectorized interpolation
  vs the per-row loop (:class:`ReferenceSMOTE`).
* ``densify`` — dtype-aware single-pass CSR densification vs the
  ``np.matrix``-routed double pass (:func:`reference_ensure_dense`),
  on an integer count matrix.
* ``sweep_end_to_end`` — the shared-matrix TF-IDF sweep scheduler vs
  per-config refitting (``shared=False``), identical tables.
* ``table12_end_to_end`` — full network-classification table
  regeneration (wall time only; no pre-PR baseline is runnable here).

Each result records ``wall_time_s`` (best of ``--repeat``),
``baseline_wall_time_s`` and ``speedup``.  Every fast/baseline pair is
asserted equivalent before timings are reported.  The harness exits
non-zero if any benchmark raises — or, with ``--min-speedup X``, if
any fast kernel's speedup falls below ``X`` — so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np
import scipy.sparse as sp

from repro.core.config import ExperimentConfig, preset
from repro.data.loaders import make_dataset
from repro.experiments import tables
from repro.experiments.sweep import run_tfidf_sweep
from repro.io import atomic_write_text
from repro.ml.base import ensure_dense
from repro.ml.ensemble import EnsembleSelection, LibraryModel
from repro.ml.sampling import SMOTE
from repro.ml.svm import pegasos_weights
from repro.ml.tree import C45Tree
from repro.network.construction import build_pharmacy_graph
from repro.network.graph import DirectedGraph
from repro.network.pagerank import personalized_pagerank
from repro.perf.reference import (
    ReferenceC45Tree,
    ReferenceNGramGraph,
    ReferenceSMOTE,
    reference_ensemble_select,
    reference_ensure_dense,
    reference_pegasos_fit,
    reference_personalized_pagerank,
)
from repro.text.ngram_graph import ClassGraphModel, NGramGraph

#: Synthetic TrustRank graph size per scale: (nodes, edges).
#: ``large`` sizes every kernel up but stays runnable against the
#: pure-Python reference baselines; the 10^5–10^6-site regime (where
#: the references are infeasible) is swept by
#: ``benchmarks/perf/scale_harness.py`` instead.
GRAPH_SIZES = {
    "tiny": (400, 2_000),
    "small": (2_000, 12_000),
    "medium": (8_000, 60_000),
    "large": (20_000, 150_000),
}

#: Documents used for the NGG benchmarks per scale.
DOC_COUNTS = {"tiny": 20, "small": 60, "medium": 150, "large": 300}

#: Pegasos benchmark size per scale: (rows, features).
SVM_SIZES = {
    "tiny": (150, 100),
    "small": (400, 300),
    "medium": (1_200, 600),
    "large": (2_400, 1_000),
}

#: C4.5 benchmark size per scale: (rows, features).
TREE_SIZES = {
    "tiny": (200, 40),
    "small": (400, 80),
    "medium": (800, 120),
    "large": (1_600, 160),
}

#: Ensemble-selection benchmark size per scale: (models, instances).
#: Hill-climb sets are small by construction (30% of a training fold),
#: so these match the regime the selection actually runs in.
ENSEMBLE_SIZES = {
    "tiny": (16, 120),
    "small": (24, 200),
    "medium": (48, 300),
    "large": (64, 400),
}

#: SMOTE benchmark size per scale: (minority rows, features).
#: Minority blocks are small by definition — 12% of a training fold,
#: i.e. ~120 rows even at the full paper scale (1459 sites / 3 folds).
SMOTE_SIZES = {
    "tiny": (60, 30),
    "small": (120, 50),
    "medium": (250, 50),
    "large": (400, 50),
}

#: Sweep benchmark term-subset truncations per scale.
SWEEP_SUBSETS = {
    "tiny": (100, 250),
    "small": (100, 250, 1_000),
    "medium": (250, 1_000, 2_000),
    "large": (100, 250, 1_000, 2_000),
}

#: Densify benchmark size per scale: (rows, features).  Sized so the
#: dense buffer dominates the timing (MBs, not KBs) — the op measures
#: memory traffic, and tiny matrices would time allocator noise.
DENSIFY_SIZES = {
    "tiny": (2_000, 600),
    "small": (4_000, 1_200),
    "medium": (8_000, 2_400),
    "large": (16_000, 4_800),
}

#: The ``large`` *preset* is the 100k-site sharded-pipeline profile
#: (``repro.core.config``); materializing it with ``make_dataset``
#: would hold 100k sites in RAM just to feed benchmarks that then
#: sample a few hundred documents.  Corpus-backed benchmarks therefore
#: cap corpus generation at ``medium`` while every synthetic kernel
#: size above still grows.
_CORPUS_SCALE_CAP = {"large": "medium"}


def _corpus_scale(scale: str) -> str:
    """The preset used for in-memory corpus generation at ``scale``."""
    return _CORPUS_SCALE_CAP.get(scale, scale)


def _best_of(repeat: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """(best wall seconds, last result) over ``repeat`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _corpus_documents(scale: str) -> tuple[list[str], list[int]]:
    """Synthetic-corpus page texts + labels for the NGG benchmarks."""
    corpus = make_dataset(preset(_corpus_scale(scale)).generator)
    n_docs = DOC_COUNTS[scale]
    texts: list[str] = []
    labels: list[int] = []
    for site, label in zip(corpus.sites, corpus.labels):
        texts.append(" ".join(page.text for page in site.pages))
        labels.append(int(label))
        if len(texts) >= n_docs:
            break
    return texts, labels


def _synthetic_graph(n_nodes: int, n_edges: int, seed: int = 7) -> DirectedGraph:
    rng = np.random.default_rng(seed)
    graph = DirectedGraph()
    names = [f"d{i}.example" for i in range(n_nodes)]
    for name in names:
        graph.add_node(name)
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    for s, d in zip(src, dst):
        if s != d:
            graph.add_edge(names[s], names[d])
    return graph


def bench_ngg_build(scale: str, repeat: int) -> dict[str, Any]:
    texts, _ = _corpus_documents(scale)

    fast_s, fast_graphs = _best_of(
        repeat, lambda: [NGramGraph.from_text(t) for t in texts]
    )
    base_s, base_graphs = _best_of(
        repeat, lambda: [ReferenceNGramGraph.from_text(t) for t in texts]
    )
    # Sanity: identical edge sets, or the timing comparison is void.
    assert dict(fast_graphs[0].edges()) == base_graphs[0].edges()
    return _result("ngg_build", scale, fast_s, base_s, n_items=len(texts))


def bench_ngg_batch_similarity(scale: str, repeat: int) -> dict[str, Any]:
    texts, labels = _corpus_documents(scale)
    model = ClassGraphModel(class_sample_fraction=1.0)
    model.fit(texts, labels)
    doc_graphs = [NGramGraph.from_text(t) for t in texts]
    ref_docs = [ReferenceNGramGraph.from_text(t) for t in texts]
    ref_class = {
        label: ReferenceNGramGraph.merged(
            [g for g, y in zip(ref_docs, labels) if y == label]
        )
        for label in model.classes
    }

    fast_s, fast_out = _best_of(repeat, lambda: model.transform_graphs(doc_graphs))

    def baseline() -> np.ndarray:
        out = np.zeros((len(ref_docs), 4 * len(ref_class)))
        for k, label in enumerate(model.classes):
            class_graph = ref_class[label]
            for row, doc in enumerate(ref_docs):
                out[row, 4 * k : 4 * k + 4] = doc.similarities(class_graph)
        return out

    base_s, base_out = _best_of(repeat, baseline)
    np.testing.assert_allclose(fast_out, base_out, atol=1e-9)
    return _result(
        "ngg_batch_similarity", scale, fast_s, base_s, n_items=len(texts)
    )


def bench_trustrank(scale: str, repeat: int) -> list[dict[str, Any]]:
    results = []
    corpus = make_dataset(preset(_corpus_scale(scale)).generator)
    corpus_graph = build_pharmacy_graph(corpus.sites)
    trusted = {
        d: 1.0 for d, y in zip(corpus.domains, corpus.labels) if int(y) == 1
    }
    n_nodes, n_edges = GRAPH_SIZES[scale]
    synthetic = _synthetic_graph(n_nodes, n_edges)
    seeds = {f"d{i}.example": 1.0 for i in range(0, n_nodes, 10)}
    for name, graph, teleport in (
        ("trustrank", synthetic, seeds),
        ("trustrank_corpus_graph", corpus_graph, trusted),
    ):
        fast_s, fast = _best_of(
            repeat, lambda: personalized_pagerank(graph, teleport=teleport)
        )
        base_s, base = _best_of(
            repeat,
            lambda: reference_personalized_pagerank(graph, teleport=teleport),
        )
        worst = max(abs(fast[n] - base[n]) for n in base)
        assert worst < 1e-9, f"rank divergence {worst}"
        results.append(_result(name, scale, fast_s, base_s, n_items=len(graph)))
    return results


def bench_svm_fit(scale: str, repeat: int) -> dict[str, Any]:
    n_rows, n_features = SVM_SIZES[scale]
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n_rows, n_features))
    signs = np.where(rng.random(n_rows) < 0.5, -1.0, 1.0)
    X += 0.5 * signs[:, None]  # make the classes separable-ish
    sample_weight = np.ones(n_rows)
    kwargs = dict(lam=1e-4, n_epochs=10, seed=0, batch_size=32)

    fast_s, fast_w = _best_of(
        repeat, lambda: pegasos_weights(X, signs, sample_weight, **kwargs)
    )
    base_s, base_w = _best_of(
        repeat, lambda: reference_pegasos_fit(X, signs, sample_weight, **kwargs)
    )
    np.testing.assert_allclose(fast_w, base_w, atol=1e-9)
    return _result("svm_fit", scale, fast_s, base_s, n_items=n_rows)


def bench_tree_fit(scale: str, repeat: int) -> dict[str, Any]:
    n_rows, n_features = TREE_SIZES[scale]
    rng = np.random.default_rng(13)
    X = rng.normal(size=(n_rows, n_features))
    y = ((X[:, 0] + 0.5 * X[:, 1] - 0.25 * X[:, 2]) > 0.0).astype(np.int64)

    def fit_fast() -> C45Tree:
        return C45Tree(seed=0).fit(X, y)

    def fit_base() -> ReferenceC45Tree:
        return ReferenceC45Tree(seed=0).fit(X, y)

    fast_s, fast_tree = _best_of(repeat, fit_fast)
    base_s, base_tree = _best_of(repeat, fit_base)
    assert fast_tree.to_text() == base_tree.to_text(), "trees diverge"
    assert np.array_equal(fast_tree.predict(X), base_tree.predict(X))
    return _result("tree_fit", scale, fast_s, base_s, n_items=n_rows)


def bench_ensemble_select(scale: str, repeat: int) -> dict[str, Any]:
    n_models, n_instances = ENSEMBLE_SIZES[scale]
    rng = np.random.default_rng(17)
    y = (rng.random(n_instances) < 0.3).astype(np.int64)
    predictions: dict[str, np.ndarray] = {}
    for m in range(n_models):
        # Noisy probability estimates correlated with the labels.
        noise = rng.normal(scale=0.35 + 0.02 * m, size=n_instances)
        p = np.clip(0.65 * y + 0.2 + noise, 0.0, 1.0)
        predictions[f"m{m:03d}"] = np.column_stack([1.0 - p, p])
    indices = np.arange(n_instances)
    library = [
        LibraryModel(name=name, predict_proba=lambda idx, arr=arr: arr[idx])
        for name, arr in predictions.items()
    ]

    def fast() -> dict[str, int]:
        return EnsembleSelection().fit(library, indices, y).bag_counts

    fast_s, fast_bag = _best_of(repeat, fast)
    base_s, base_bag = _best_of(
        repeat, lambda: reference_ensemble_select(predictions, y)
    )
    assert fast_bag == base_bag, f"bag mismatch: {fast_bag} vs {base_bag}"
    return _result("ensemble_select", scale, fast_s, base_s, n_items=n_models)


def bench_smote(scale: str, repeat: int) -> dict[str, Any]:
    n_minority, n_features = SMOTE_SIZES[scale]
    rng = np.random.default_rng(19)
    X_min = rng.normal(size=(n_minority, n_features))
    X_maj = rng.normal(loc=1.5, size=(3 * n_minority, n_features))
    X = np.vstack([X_min, X_maj])
    y = np.concatenate(
        [np.ones(n_minority, dtype=np.int64), np.zeros(3 * n_minority, dtype=np.int64)]
    )

    fast_s, fast_out = _best_of(
        repeat, lambda: SMOTE(seed=0).fit_resample(X, y)
    )
    base_s, base_out = _best_of(
        repeat, lambda: ReferenceSMOTE(seed=0).fit_resample(X, y)
    )
    np.testing.assert_array_equal(fast_out[0], base_out[0])
    np.testing.assert_array_equal(fast_out[1], base_out[1])
    return _result("smote", scale, fast_s, base_s, n_items=n_minority)


def bench_densify(scale: str, repeat: int) -> dict[str, Any]:
    """Dtype-aware densify vs the np.matrix-routed reference.

    Uses an integer count matrix — the regime where the old
    ``np.asarray(X.todense(), dtype=np.float64)`` path paid a second
    full-matrix conversion pass on top of the dense write.  (On
    float64 input both paths cost one dense write and tie.)
    """
    n_rows, n_features = DENSIFY_SIZES[scale]
    X = sp.random(
        n_rows, n_features, density=0.05, format="csr", random_state=11
    )
    counts = (X * 20).astype(np.int64)

    fast_s, fast_out = _best_of(repeat, lambda: ensure_dense(counts))
    base_s, base_out = _best_of(repeat, lambda: reference_ensure_dense(counts))
    np.testing.assert_array_equal(fast_out, base_out)
    assert fast_out.dtype == base_out.dtype == np.float64
    return _result("densify", scale, fast_s, base_s, n_items=n_rows)


def bench_sweep(scale: str, repeat: int) -> dict[str, Any]:
    """Shared-matrix sweep scheduling vs per-config refitting."""
    corpus = make_dataset(preset(_corpus_scale(scale)).generator)
    labels = corpus.labels
    tokens = [
        " ".join(page.text for page in site.pages).split()
        for site in corpus.sites
    ]
    tokens_by_subset = {
        subset: [t[:subset] for t in tokens] for subset in SWEEP_SUBSETS[scale]
    }

    def run(shared: bool) -> dict:
        return run_tfidf_sweep(
            tables.TFIDF_ROSTER,
            labels,
            tokens_by_subset,
            n_folds=3,
            cv_seed=0,
            shared=shared,
        )

    fast_s, fast_out = _best_of(repeat, lambda: run(True))
    base_s, base_out = _best_of(repeat, lambda: run(False))
    assert fast_out == base_out, "shared and per-config sweeps diverge"
    return _result(
        "sweep_end_to_end",
        scale,
        fast_s,
        base_s,
        n_items=len(tokens_by_subset) * len(tables.TFIDF_ROSTER),
    )


def bench_end_to_end(scale: str) -> dict[str, Any]:
    tables.clear_cache()
    config = ExperimentConfig(scale=_corpus_scale(scale))
    start = time.perf_counter()
    tables.table12(config)
    elapsed = time.perf_counter() - start
    return _result("table12_end_to_end", scale, elapsed, None, n_items=1)


def _result(
    op: str,
    scale: str,
    wall_time_s: float,
    baseline_wall_time_s: float | None,
    n_items: int,
) -> dict[str, Any]:
    speedup = (
        baseline_wall_time_s / wall_time_s
        if baseline_wall_time_s is not None and wall_time_s > 0
        else None
    )
    return {
        "op": op,
        "scale": scale,
        "n_items": n_items,
        "wall_time_s": round(wall_time_s, 6),
        "baseline_wall_time_s": (
            round(baseline_wall_time_s, 6)
            if baseline_wall_time_s is not None
            else None
        ),
        "speedup": round(speedup, 2) if speedup is not None else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the vectorized kernels against the references."
    )
    parser.add_argument(
        "--scale", default="small", choices=sorted(GRAPH_SIZES)
    )
    parser.add_argument(
        "--output",
        default=str(Path("benchmarks") / "output" / "BENCH_perf.json"),
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="best-of-N timing rounds"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero when any fast kernel's speedup over its "
        "reference falls below this (0 disables the gate)",
    )
    args = parser.parse_args(argv)

    results: list[dict[str, Any]] = []
    results.append(bench_ngg_build(args.scale, args.repeat))
    results.append(bench_ngg_batch_similarity(args.scale, args.repeat))
    results.extend(bench_trustrank(args.scale, args.repeat))
    results.append(bench_svm_fit(args.scale, args.repeat))
    results.append(bench_tree_fit(args.scale, args.repeat))
    results.append(bench_ensemble_select(args.scale, args.repeat))
    results.append(bench_smote(args.scale, args.repeat))
    results.append(bench_densify(args.scale, args.repeat))
    results.append(bench_sweep(args.scale, args.repeat))
    results.append(bench_end_to_end(args.scale))

    payload = {
        "benchmark": "repro-perf",
        "scale": args.scale,
        "repeat": args.repeat,
        "results": results,
    }
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(output, json.dumps(payload, indent=2) + "\n")
    for row in results:
        speedup = f"{row['speedup']:.2f}x" if row["speedup"] else "--"
        print(
            f"{row['op']:<24} {row['scale']:<7} "
            f"{row['wall_time_s']:>10.4f}s  speedup {speedup}"
        )
    print(f"wrote {output}")
    if args.min_speedup > 0:
        slow = [
            row
            for row in results
            if row["speedup"] is not None and row["speedup"] < args.min_speedup
        ]
        for row in slow:
            print(
                f"GATE FAIL: {row['op']} speedup {row['speedup']:.2f}x "
                f"< {args.min_speedup:.2f}x"
            )
        if slow:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
