"""Performance benchmarks for the vectorized fast paths.

Run ``python -m benchmarks.perf.harness`` (with ``src`` on
``PYTHONPATH``) to time the vectorized kernels against the reference
implementations in :mod:`repro.perf.reference` and emit
``BENCH_perf.json``.
"""
