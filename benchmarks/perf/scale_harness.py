"""Scale-out harness: sites/sec and peak RSS from 10^4 to 10^6 sites.

Where ``benchmarks/perf/harness.py`` times individual kernels against
their pure-Python references, this harness sweeps the *sharded*
pipeline end to end at site counts the references could never touch:

* **synthesis** — :func:`repro.data.sharding.write_shards` streams the
  corpus to disk as K shard files (optionally in parallel).
* **features** — a two-pass streaming TF-IDF: pass 1 merges per-shard
  document-frequency counters into
  :meth:`~repro.text.term_vector.TfidfVectorizer.fit_document_frequencies`,
  pass 2 transforms one shard at a time and spills each shard's matrix
  through :class:`repro.perf.MatrixStore`.  No stage ever holds the
  full corpus or the full matrix in RAM.
* **ranking** — streams the link graph out of the shards into flat
  edge arrays, compiles spilled transition blocks
  (:func:`repro.network.blockrank.compile_transition_store_from_edges`)
  and runs block-wise TrustRank serially and with a worker pool,
  checking the two agree to 1e-9.

Each stage runs in its own subprocess by default so
``getrusage(RUSAGE_SELF).ru_maxrss`` is that stage's true peak RSS
(``rss_isolated: true`` in the report); if the harness cannot re-exec
itself it falls back in-process and says so.  Results land in
``BENCH_scale.json``.

Gates (for CI)::

    --max-rss-mb 1500        # fail if any stage's peak RSS exceeds
    --min-throughput 200     # fail if synthesis sites/sec falls below
    --min-parallel-speedup 2 # fail if parallel ranking < 2x serial
                             # (only enforced on >= 4-CPU machines)

Usage::

    PYTHONPATH=src python -m benchmarks.perf.scale_harness \
        --sites 10000,100000 --jobs 0 \
        --output benchmarks/output/BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from collections import Counter
from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import preset
from repro.data.sharding import ShardedCorpus, plan_domains, write_shards
from repro.io import atomic_write_text
from repro.network.blockrank import (
    block_trustrank,
    compile_transition_store_from_edges,
)
from repro.perf.parallel import resolve_jobs
from repro.perf.store import MatrixStore
from repro.text.term_vector import TfidfVectorizer

#: Stage names in pipeline order.
STAGES = ("synthesis", "features", "ranking")

#: Auto-sharding: aim for this many sites per shard.
SITES_PER_SHARD = 5_000


def scaled_config(n_sites: int):
    """The ``large`` preset's generator profile rescaled to ``n_sites``.

    Keeps the preset's class split (the paper's ~11.5% legitimate
    fraction) and hubs-per-site density while swapping in the total.
    """
    base = preset("large").generator
    n_legit = max(1, round(n_sites * base.n_legitimate / (base.n_legitimate + base.n_illegitimate)))
    n_hubs = max(
        2,
        n_sites * base.n_affiliate_hubs // (base.n_legitimate + base.n_illegitimate),
    )
    return replace(
        base,
        n_legitimate=n_legit,
        n_illegitimate=n_sites - n_legit,
        n_affiliate_hubs=n_hubs,
    )


def auto_shards(n_sites: int) -> int:
    """Default shard count: ~5k sites per shard, clamped to [4, 64]."""
    return max(4, min(64, n_sites // SITES_PER_SHARD))


def _peak_rss_mb() -> float:
    """Peak RSS of this process and its (pool) children, in MiB."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return round(max(self_kb, child_kb) / 1024.0, 1)


# -- stages (each must run standalone in a fresh process) -------------------


def stage_synthesis(
    workdir: Path, n_sites: int, n_shards: int, jobs: int
) -> dict[str, Any]:
    """Write the sharded corpus; report throughput."""
    config = scaled_config(n_sites)
    start = time.perf_counter()
    manifest = write_shards(
        config, workdir / "corpus", n_shards, jobs=jobs or None
    )
    wall = time.perf_counter() - start
    n_pages = sum(int(s["n_pages"]) for s in manifest.shards)
    return {
        "wall_time_s": round(wall, 3),
        "sites_per_sec": round(manifest.n_sites / wall, 1),
        "n_sites": manifest.n_sites,
        "n_shards": manifest.n_shards,
        "n_pages": n_pages,
    }


def stage_features(
    workdir: Path, max_terms: int
) -> dict[str, Any]:
    """Streaming TF-IDF over the shards, spilled to the matrix store."""
    corpus = ShardedCorpus(workdir / "corpus", max_open_shards=1)
    vectorizer = TfidfVectorizer(max_features=max_terms)
    start = time.perf_counter()
    doc_freq: Counter[str] = Counter()
    n_docs = 0
    for _, sites, _ in corpus.iter_shards():
        for site in sites:
            terms: set[str] = set()
            for page in site.pages:
                terms.update(page.text.split())
            doc_freq.update(terms)
            n_docs += 1
    vectorizer.fit_document_frequencies(doc_freq, n_docs)
    store = MatrixStore(workdir / "store")
    nnz = 0
    for k, sites, _ in corpus.iter_shards():
        docs = [
            " ".join(page.text for page in site.pages).split()
            for site in sites
        ]
        matrix = vectorizer.transform(docs)
        nnz += int(matrix.nnz)
        store.save_csr(f"tfidf/shard-{k:05d}", matrix)
    wall = time.perf_counter() - start
    return {
        "wall_time_s": round(wall, 3),
        "sites_per_sec": round(n_docs / wall, 1),
        "n_sites": n_docs,
        "vocabulary": len(vectorizer.vocabulary),
        "nnz": nnz,
    }


def stage_ranking(workdir: Path, jobs: int) -> dict[str, Any]:
    """Stream the link graph from shards; block-TrustRank it twice.

    Runs the identical compiled plan serially and with ``jobs``
    workers; the two rankings must agree to 1e-9 (they are bit-equal
    by construction), and the speedup between them is the number the
    ``--min-parallel-speedup`` gate reads.
    """
    corpus = ShardedCorpus(workdir / "corpus", max_open_shards=1)
    start = time.perf_counter()
    domains = corpus.domains()
    index: dict[str, int] = {d: i for i, d in enumerate(domains)}
    nodes = list(domains)
    src: list[int] = []
    dst: list[int] = []
    for _, sites, _ in corpus.iter_shards():
        for site in sites:
            i = index[site.domain]
            for endpoint in site.outbound_endpoints():
                j = index.get(endpoint)
                if j is None:
                    j = len(nodes)
                    index[endpoint] = j
                    nodes.append(endpoint)
                src.append(i)
                dst.append(j)
    edge_wall = time.perf_counter() - start

    store = MatrixStore(workdir / "store")
    n_blocks = corpus.n_shards
    start = time.perf_counter()
    plan = compile_transition_store_from_edges(
        store,
        nodes,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.ones(len(src), dtype=np.float64),
        n_blocks=n_blocks,
    )
    compile_wall = time.perf_counter() - start

    trusted, _, _ = plan_domains(corpus.config)
    start = time.perf_counter()
    serial = block_trustrank(plan, trusted, jobs=1)
    serial_wall = time.perf_counter() - start

    workers = resolve_jobs(jobs if jobs else 0)
    parallel_wall = None
    speedup = None
    if workers > 1:
        start = time.perf_counter()
        parallel = block_trustrank(plan, trusted, jobs=workers)
        parallel_wall = round(time.perf_counter() - start, 3)
        worst = max(abs(serial[n] - parallel[n]) for n in serial)
        assert worst <= 1e-9, f"serial/parallel rank divergence {worst}"
        if parallel_wall > 0:
            speedup = round(serial_wall / parallel_wall, 2)
    total = edge_wall + compile_wall + serial_wall + (parallel_wall or 0.0)
    return {
        "wall_time_s": round(total, 3),
        "sites_per_sec": round(len(corpus) / total, 1),
        "n_sites": len(corpus),
        "n_nodes": len(nodes),
        "n_edges": len(src),
        "n_blocks": plan.n_blocks,
        "edge_stream_s": round(edge_wall, 3),
        "compile_s": round(compile_wall, 3),
        "serial_rank_s": round(serial_wall, 3),
        "parallel_rank_s": parallel_wall,
        "rank_workers": workers,
        "parallel_speedup": speedup,
    }


def run_stage_inprocess(stage: str, args: argparse.Namespace) -> dict[str, Any]:
    """Dispatch one stage in this process and stamp its peak RSS."""
    workdir = Path(args.workdir)
    if stage == "synthesis":
        result = stage_synthesis(
            workdir, args.n_sites, args.shards, args.jobs
        )
    elif stage == "features":
        result = stage_features(workdir, args.max_terms)
    elif stage == "ranking":
        result = stage_ranking(workdir, args.jobs)
    else:
        raise ValueError(f"unknown stage {stage!r}")
    result["peak_rss_mb"] = _peak_rss_mb()
    return result


def run_stage_isolated(
    stage: str, args: argparse.Namespace, n_shards: int
) -> dict[str, Any]:
    """Run one stage in a fresh subprocess so its peak RSS is its own."""
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", delete=False
    ) as fh:
        stage_output = fh.name
    cmd = [
        sys.executable,
        "-m",
        "benchmarks.perf.scale_harness",
        "--run-stage",
        stage,
        "--n-sites",
        str(args.n_sites),
        "--shards",
        str(n_shards),
        "--jobs",
        str(args.jobs),
        "--max-terms",
        str(args.max_terms),
        "--workdir",
        str(args.workdir),
        "--stage-output",
        stage_output,
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
    except OSError:
        result = run_stage_inprocess(stage, args)
        result["rss_isolated"] = False
        return result
    finally_path = Path(stage_output)
    try:
        if proc.returncode != 0:
            raise RuntimeError(
                f"stage {stage} failed (exit {proc.returncode}):\n"
                f"{proc.stderr[-2000:]}"
            )
        with open(finally_path, encoding="utf-8") as fh:
            result = json.load(fh)
    finally:
        finally_path.unlink(missing_ok=True)
    result["rss_isolated"] = True
    return result


def _gate_failures(payload: dict[str, Any], args: argparse.Namespace) -> list[str]:
    """Evaluate the CI gates against a finished sweep."""
    failures: list[str] = []
    for run in payload["runs"]:
        for stage, result in run["stages"].items():
            if args.max_rss_mb and result["peak_rss_mb"] > args.max_rss_mb:
                failures.append(
                    f"{run['n_sites']} sites / {stage}: peak RSS "
                    f"{result['peak_rss_mb']} MiB > {args.max_rss_mb} MiB"
                )
        synthesis = run["stages"].get("synthesis")
        if (
            args.min_throughput
            and synthesis
            and synthesis["sites_per_sec"] < args.min_throughput
        ):
            failures.append(
                f"{run['n_sites']} sites: synthesis "
                f"{synthesis['sites_per_sec']} sites/sec "
                f"< {args.min_throughput}"
            )
        ranking = run["stages"].get("ranking")
        if (
            args.min_parallel_speedup
            and payload["cpus"] >= 4
            and ranking
            and ranking.get("parallel_speedup") is not None
            and ranking["parallel_speedup"] < args.min_parallel_speedup
        ):
            failures.append(
                f"{run['n_sites']} sites: parallel ranking "
                f"{ranking['parallel_speedup']}x "
                f"< {args.min_parallel_speedup}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep the sharded pipeline across site counts."
    )
    parser.add_argument(
        "--sites",
        default="10000,100000",
        help="comma-separated site counts to sweep",
    )
    parser.add_argument(
        "--stages",
        default=",".join(STAGES),
        help="comma-separated stage subset (synthesis,features,ranking)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count K (0 = ~5k sites per shard, clamped to 4..64)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for synthesis and ranking (0 = CPU count)",
    )
    parser.add_argument("--max-terms", type=int, default=1_000)
    parser.add_argument(
        "--workdir",
        default=None,
        help="scratch directory (default: a fresh temp dir per sweep)",
    )
    parser.add_argument(
        "--output",
        default=str(Path("benchmarks") / "output" / "BENCH_scale.json"),
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=0.0,
        help="fail when any stage's peak RSS exceeds this (0 disables)",
    )
    parser.add_argument(
        "--min-throughput",
        type=float,
        default=0.0,
        help="fail when synthesis sites/sec falls below this (0 disables)",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=0.0,
        help="fail when parallel ranking speedup falls below this; only "
        "enforced on machines with >= 4 CPUs (0 disables)",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="run stages in-process (RSS then accumulates across stages)",
    )
    # Internal: subprocess re-entry for per-stage RSS isolation.
    parser.add_argument("--run-stage", choices=STAGES, help=argparse.SUPPRESS)
    parser.add_argument("--n-sites", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--stage-output", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.run_stage:
        result = run_stage_inprocess(args.run_stage, args)
        atomic_write_text(
            Path(args.stage_output), json.dumps(result) + "\n"
        )
        return 0

    site_counts = [int(s) for s in args.sites.split(",") if s.strip()]
    stages = [s.strip() for s in args.stages.split(",") if s.strip()]
    unknown = sorted(set(stages) - set(STAGES))
    if unknown:
        parser.error(f"unknown stages: {unknown}")

    runs: list[dict[str, Any]] = []
    for n_sites in site_counts:
        n_shards = args.shards or auto_shards(n_sites)
        if args.workdir:
            workdir = Path(args.workdir) / f"sites-{n_sites}"
            workdir.mkdir(parents=True, exist_ok=True)
            scratch = None
        else:
            scratch = tempfile.TemporaryDirectory(prefix="repro-scale-")
            workdir = Path(scratch.name)
        run_args = argparse.Namespace(**vars(args))
        run_args.n_sites = n_sites
        run_args.workdir = str(workdir)
        run_args.shards = n_shards
        results: dict[str, Any] = {}
        try:
            for stage in STAGES:
                if stage not in stages:
                    continue
                if args.no_isolate:
                    result = run_stage_inprocess(stage, run_args)
                    result["rss_isolated"] = False
                else:
                    result = run_stage_isolated(stage, run_args, n_shards)
                results[stage] = result
                print(
                    f"{n_sites:>9} sites  {stage:<10} "
                    f"{result['wall_time_s']:>9.2f}s  "
                    f"{result['sites_per_sec']:>9.1f} sites/s  "
                    f"peak {result['peak_rss_mb']:>7.1f} MiB"
                )
        finally:
            if scratch is not None:
                scratch.cleanup()
        runs.append(
            {"n_sites": n_sites, "n_shards": n_shards, "stages": results}
        )

    payload = {
        "benchmark": "repro-scale",
        "cpus": os.cpu_count() or 1,
        "jobs": args.jobs,
        "max_terms": args.max_terms,
        "runs": runs,
    }
    failures = _gate_failures(payload, args)
    payload["gates"] = {
        "max_rss_mb": args.max_rss_mb or None,
        "min_throughput": args.min_throughput or None,
        "min_parallel_speedup": args.min_parallel_speedup or None,
        "failures": failures,
    }
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(output, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
