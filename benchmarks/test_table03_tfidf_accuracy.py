"""Table 3: TF-IDF overall accuracy sweep (pays for the TF-IDF sweep)."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table03_tfidf_accuracy(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table3(bench_config))
    emit("table03", table.render())
    # Paper shape: accuracy is above 0.88 everywhere; the best
    # performers reach ~0.99.
    for column in table.columns[2:]:
        for value in table.column_values(column):
            assert value > 0.85
    assert max(table.column_values("All")) > 0.95
