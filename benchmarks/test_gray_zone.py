"""Gray-zone placement: §6.1's "potentially legitimate" category."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import gray_zone_experiment


def test_gray_zone(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: gray_zone_experiment(bench_config))
    emit("gray_zone", table.render(precision=3))
    scores = {row[0]: row[1] for row in table.rows}
    # The defining property of the gray zone: strictly between the two
    # verified classes.
    assert (
        scores["illegitimate (unseen)"]
        < scores["potentially legitimate (gray)"]
        < scores["legitimate (unseen)"]
    )
