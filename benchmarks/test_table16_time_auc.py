"""Table 16: model over time — AUC-ROC."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table16_time_auc(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table16(bench_config))
    emit("table16", table.render())
    # Paper shape: "the AUC ROC value remains almost the same" across
    # Old-Old / New-New / Old-New for NBM.
    nbm = [v for v in table.rows[0][2:]]
    assert max(nbm) - min(nbm) < 0.1
