"""Figure 3: TrustRank propagation over a good/bad node network."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure3_trustrank_demo


def test_figure03_trustrank(benchmark, emit):
    table = run_once(benchmark, figure3_trustrank_demo)
    emit("figure03", table.render(precision=4))
    scores = {row[0]: row[3] for row in table.rows}
    # Figure 3b shape: all good nodes end up with non-zero trust,
    # all bad nodes stay dark.
    assert min(scores[n] for n in ("g1", "g2", "g3", "g4")) > 0.01
    assert max(scores[n] for n in ("b1", "b2", "b3")) < 1e-6
