"""Reviewer-effort experiment (the paper's Section 1 motivation)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import review_effort_experiment


def test_review_effort(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: review_effort_experiment(bench_config))
    emit("review_effort", table.render(precision=1))
    values = {row[0]: row[1] for row in table.rows}
    ideal = values["ideal (oracle queue)"]
    system = values["system ranking (paper model)"]
    random_queue = values["random queue (unassisted)"]
    # The ranked queue must land near the oracle lower bound and far
    # below the unassisted reviewer's effort (random order needs ~90%
    # of the whole queue to surface 90% of the rare legitimate class).
    assert system <= 2.0 * ideal
    assert system < 0.5 * random_queue
