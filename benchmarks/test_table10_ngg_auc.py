"""Table 10: N-Gram-Graph AUC-ROC."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table10_ngg_auc(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table10(bench_config))
    emit("table10", table.render())
    # Paper shape: MLP wins AUC (0.99 across every subset size).
    for column in table.columns[2:]:
        mlp = table.cell("MLP", column)
        assert mlp >= table.cell("SVM", column) - 0.02
    assert table.cell("MLP", "All") > 0.95
