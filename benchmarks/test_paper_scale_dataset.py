"""Paper-scale dataset construction: Table 1 at the real 1459-site size.

Generates and crawls both snapshots of the ``paper`` preset
(167 legitimate + 1292 illegitimate per Table 1) and validates the
Table 1 semantics at full scale.  This is the only bench that touches
the paper preset; the classification sweeps run at reduced scale.
"""

from benchmarks.conftest import run_once
from repro.core.config import preset
from repro.data.loaders import make_dataset_pair


def test_paper_scale_dataset(benchmark, emit):
    config = preset("paper").generator

    def build():
        return make_dataset_pair(config)

    dataset1, dataset2 = run_once(benchmark, build)
    s1, s2 = dataset1.summary(), dataset2.summary()
    lines = [
        "PAPER-SCALE TABLE 1",
        f"Dataset 1: {s1.n_examples} examples, {s1.n_legitimate} legitimate "
        f"({s1.legitimate_fraction:.0%})",
        f"Dataset 2: {s2.n_examples} examples, {s2.n_legitimate} legitimate "
        f"({s2.legitimate_fraction:.0%})",
        f"total pages crawled: "
        f"{sum(site.n_pages for site in dataset1.sites) + sum(site.n_pages for site in dataset2.sites)}",
    ]
    emit("paper_scale_table01", "\n".join(lines))

    assert s1.n_examples == 1459
    assert s1.n_legitimate == 167
    assert s2.n_examples == 1442  # Table 1: 167 + 1275
    assert s2.n_illegitimate == 1275
    legit1 = {d for d, l in zip(dataset1.domains, dataset1.labels) if l == 1}
    legit2 = {d for d, l in zip(dataset2.domains, dataset2.labels) if l == 1}
    bad1 = {d for d, l in zip(dataset1.domains, dataset1.labels) if l == 0}
    bad2 = {d for d, l in zip(dataset2.domains, dataset2.labels) if l == 0}
    assert legit1 == legit2
    assert bad1.isdisjoint(bad2)
