"""Table 14: ensemble selection vs the best single models."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table14_ensemble(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table14(bench_config))
    emit("table14", table.render())
    rows = {row[0]: row for row in table.rows}
    ensemble_auc = rows["Ensem. Sel."][-1]
    network_auc = rows["NB (Network)"][-1]
    # Paper shape: the ensemble's AUC matches the best text model and
    # beats the network-only model.
    assert ensemble_auc >= network_auc
    assert ensemble_auc > 0.95
