"""Figure 2: the N-Gram-Graph classification process, end to end."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure2_pipeline_trace


def test_figure02_ngg_process(benchmark, emit):
    trace = run_once(benchmark, figure2_pipeline_trace)
    emit("figure02", trace.render())
    predictions = dict(trace.predictions)
    assert predictions["unseen-legit"] == 1
    assert predictions["unseen-illegit"] == 0
