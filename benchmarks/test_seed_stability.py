"""Seed-stability check: key results across independent corpora."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import seed_stability_experiment


def test_seed_stability(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: seed_stability_experiment(bench_config))
    emit("seed_stability", table.render(precision=3))
    spread = table.rows[-1]
    assert spread[0] == "spread (max-min)"
    # Text dominance and the network profile must not be artifacts of
    # one generator seed.
    assert spread[1] < 0.05  # text AUC is stable
    assert spread[2] < 0.25  # network AUC varies but stays in band
    for row in table.rows[:-1]:
        assert row[1] > 0.95  # text AUC per seed
        assert row[2] > 0.8  # network AUC per seed
        assert row[1] >= row[2] - 0.02  # text >= network (paper ordering)
