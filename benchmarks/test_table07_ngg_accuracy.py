"""Table 7: N-Gram-Graph classifier accuracy (pays for the NGG sweep)."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table07_ngg_accuracy(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table7(bench_config))
    emit("table07", table.render())
    # Paper shape: MLP is the best N-Gram-Graph classifier.
    mlp_all = table.cell("MLP", "All")
    assert mlp_all >= max(
        table.cell(name, "All") for name in ("NB", "SVM", "J48")
    ) - 0.02
    assert mlp_all > 0.9
