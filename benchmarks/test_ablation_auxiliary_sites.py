"""Ablation: enrich the network graph with non-pharmacy sites
(the paper's future-work extension (a))."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import auxiliary_sites_ablation


def test_ablation_auxiliary_sites(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: auxiliary_sites_ablation(bench_config))
    emit("ablation_auxiliary_sites", table.render(precision=3))
    rows = {row[0]: row for row in table.rows}
    plain_auc = rows["pharmacy-only (paper)"][1]
    enriched_auc = rows["+ portals & directories"][1]
    # The paper's conjecture: "a richer input ... will improve the
    # performance of the algorithms."
    assert enriched_auc >= plain_auc - 0.01
    assert enriched_auc > 0.9
