"""Serving-layer fault soak: seeded chaos in, honest statuses out.

Companion to ``test_fault_injection_soak.py`` one layer up the stack:
the same seeded :class:`~repro.web.resilience.FaultInjectingWebHost`
(40% transient failure rate plus permanently dead seeds) sits behind a
live verification service, and every response must be one of the
documented outcomes — a 2xx payload whose ``degradation_reasons``
honestly describe what was skipped, a 400 for bad input, a 429 for an
exhausted quota, or a 503 shed.  Never an unhandled 500 (the
``http_unhandled_errors_total`` counter is pinned to zero), and never
a response that outlives its deadline budget.

Runs in the CI ``fault-soak`` job.  Service-level passes use a
:class:`~repro.web.resilience.clock.VirtualClock` end to end, so the
soak is bit-deterministic; the HTTP pass runs on the wall clock to
check the real transport honours budgets.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.core import PharmacyVerifier
from repro.data.loaders import crawl_snapshot
from repro.data.synthesis import GeneratorConfig, SyntheticWebGenerator
from repro.serve import ServiceConfig, VerificationService, build_server
from repro.web.resilience import (
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.web.resilience.clock import VirtualClock

SOAK_CONFIG = GeneratorConfig(
    n_legitimate=6,
    n_illegitimate=44,
    n_affiliate_hubs=3,
    min_pages=3,
    max_pages=8,
    min_terms_per_page=40,
    max_terms_per_page=80,
    seed=23,
)

TRANSIENT_RATE = 0.4
RETRY = RetryPolicy(max_attempts=5, seed=17)

#: Verify-call budget and the transport slack the HTTP soak allows on
#: top of it before a response counts as having outlived its deadline.
BUDGET_S = 5.0
DEADLINE_GRACE_S = 2.0


@pytest.fixture(scope="module")
def soak_snapshot():
    return SyntheticWebGenerator(SOAK_CONFIG).generate_snapshot()


@pytest.fixture(scope="module")
def soak_corpus(soak_snapshot):
    return crawl_snapshot(soak_snapshot)


@pytest.fixture(scope="module")
def soak_verifier(soak_corpus):
    return PharmacyVerifier().fit(soak_corpus)


def _faulty_host(snapshot, seed, dead=()):
    plan = FaultPlan.seeded(
        snapshot.host.urls(),
        seed=seed,
        transient_rate=TRANSIENT_RATE,
        max_recover_after=3,
    )
    for domain in dead:
        plan.add(f"https://www.{domain}/", FaultSpec(FaultKind.PERMANENT))
    return FaultInjectingWebHost(snapshot.host, plan)


def _soak_service(soak_verifier, soak_corpus, soak_snapshot, seed):
    """Half the corpus indexed, the rest crawled through the faults."""
    split = len(soak_corpus.sites) // 2
    dead = [site.domain for site in soak_corpus.sites[-3:]]
    service = VerificationService(
        soak_verifier,
        sites=soak_corpus.sites[:split],
        host=_faulty_host(soak_snapshot, seed, dead=dead),
        clock=VirtualClock(),
        retry_policy=RETRY,
        config=ServiceConfig(crawl_max_pages=8, crawl_fetch_budget=60),
    )
    missing = [site.domain for site in soak_corpus.sites[split:]]
    return service, missing, dead


class TestServiceSoak:
    def test_every_domain_answers_with_honest_degradation(
        self, soak_verifier, soak_corpus, soak_snapshot
    ):
        service, missing, dead = _soak_service(
            soak_verifier, soak_corpus, soak_snapshot, seed=101
        )
        for domain in missing:
            payload = service.verify_domain(domain, budget=BUDGET_S)
            assert payload["domain"] == domain
            if payload["degraded"]:
                assert payload["degradation_reasons"]
                assert payload["confidence"] < 1.0
        # Permanently dead seeds must degrade, not raise.
        for domain in dead:
            payload = service.verify_domain(domain, budget=BUDGET_S)
            assert payload["degraded"] is True
            assert "seed_unreachable" in payload["degradation_reasons"]
        assert service.backend_states()["verify"] == "closed"

    def test_soak_is_deterministic(
        self, soak_verifier, soak_corpus, soak_snapshot
    ):
        def one_pass():
            service, missing, dead = _soak_service(
                soak_verifier, soak_corpus, soak_snapshot, seed=101
            )
            return [
                (
                    p["domain"],
                    p["verdict"],
                    p["degraded"],
                    tuple(p["degradation_reasons"]),
                )
                for p in (
                    service.verify_domain(d, budget=BUDGET_S)
                    for d in missing + dead
                )
            ]

        assert one_pass() == one_pass()

    def test_budgeted_batches_always_complete(
        self, soak_verifier, soak_corpus, soak_snapshot
    ):
        service, missing, _ = _soak_service(
            soak_verifier, soak_corpus, soak_snapshot, seed=77
        )
        domains = missing[:10]
        payloads = service.verify_batch(domains, budget=BUDGET_S)
        assert [p["domain"] for p in payloads] == domains


class TestHTTPSoak:
    def test_only_documented_statuses_and_no_deadline_overruns(
        self, soak_verifier, soak_corpus, soak_snapshot
    ):
        split = len(soak_corpus.sites) // 2
        dead = ["dead-0.soak.example.com", "dead-1.soak.example.com"]
        server = build_server(
            soak_verifier,
            sites=soak_corpus.sites[:split],
            host=_faulty_host(soak_snapshot, seed=5, dead=dead),
            port=0,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.05, seed=17
            ),
            service_config=ServiceConfig(crawl_max_pages=8, crawl_fetch_budget=40),
        )
        server.start_background()
        try:
            calls = [("POST", "/v1/verify", {"domain": s.domain})
                     for s in soak_corpus.sites[split : split + 12]]
            calls += [("POST", "/v1/verify", {"domain": d}) for d in dead]
            calls += [
                ("POST", "/v1/verify", {"domain": "not a domain!"}),  # 400
                ("POST", "/v1/verify", {"domains": []}),  # 400 (wrong field)
                ("GET", "/nope", None),  # 404
                ("GET", "/v1/review-queue?limit=5", None),
                ("GET", "/healthz", None),
            ]
            statuses = []
            for method, path, body in calls:
                started = time.monotonic()
                status, payload = self._request(server.port, method, path, body)
                elapsed = time.monotonic() - started
                statuses.append(status)
                assert status in (200, 400, 404, 429, 503), (path, payload)
                assert elapsed <= BUDGET_S + DEADLINE_GRACE_S, path
                if status == 200 and path == "/v1/verify" and payload["degraded"]:
                    assert payload["degradation_reasons"]
            assert statuses.count(200) >= len(calls) - 4
            assert (
                server.metrics.counter_value("http_unhandled_errors_total") == 0.0
            )
        finally:
            server.drain(timeout=30.0)

    @staticmethod
    def _request(port, method, path, body):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            headers = {"X-Request-Budget": str(BUDGET_S)}
            payload = None
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw.strip().startswith(b"{") else raw
            return response.status, parsed
        finally:
            conn.close()
