"""Table 12: network (TrustRank) classifier accuracy and AUC."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table12_network_accuracy(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table12(bench_config))
    emit("table12", table.render())
    # Paper: accuracy ~0.96, AUC ~0.95.
    assert table.cell("NB", "Overall Accuracy") > 0.88
    assert table.cell("NB", "AUC ROC") > 0.88
