"""Ablation: TrustRank vs EigenTrust as the network trust algorithm."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import trust_algorithm_ablation


def test_ablation_trust_algorithm(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: trust_algorithm_ablation(bench_config))
    emit("ablation_trust_algorithm", table.render(precision=3))
    values = {row[0]: row[1] for row in table.rows}
    # Both propagation schemes carry the signal; the paper's TrustRank
    # choice is at least competitive.
    assert values["TrustRank (paper)"] > 0.88
    assert values["TrustRank (paper)"] >= values["EigenTrust [18]"] - 0.05
