"""Table 11: most linked-to domains per class."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table11_linked_domains(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table11(bench_config))
    emit("table11", table.render())
    legit = table.column_values("pointed by legitimate")
    illegit = table.column_values("pointed by illegitimate")
    # Paper: legitimate list led by social networks + government sites.
    assert {"facebook.com", "twitter.com"} & set(legit[:4])
    assert "fda.gov" in legit
    # Paper: illegitimate list led by wikipedia/wordpress + affiliates.
    assert {"wikipedia.org", "wordpress.org"} & set(illegit[:5])
    # Government health sites absent from the illegitimate top-10.
    assert "fda.gov" not in illegit
