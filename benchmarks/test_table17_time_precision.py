"""Table 17: model over time — legitimate precision."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table17_time_precision(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table17(bench_config))
    emit("table17", table.render())
    columns = table.columns[2:]
    # Paper shape: New-New ~ Old-Old (stable retraining) while Old-New
    # shows a legitimate-precision reduction for at least one model —
    # the evidence that periodic retraining is necessary.
    drops = []
    for row in table.rows:
        values = dict(zip(columns, row[2:]))
        old_old = [v for c, v in values.items() if c.startswith("Old-Old")]
        old_new = [v for c, v in values.items() if c.startswith("Old-New")]
        drops.append(min(old_old) - min(old_new))
    assert max(drops) > 0.02
