"""Ablation: random term subsampling (paper) vs IG term selection."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import term_selection_ablation


def test_ablation_term_selection(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: term_selection_ablation(bench_config))
    emit("ablation_term_selection", table.render(precision=3))
    # The claim under test: the paper's cheap random-subsample policy
    # is already strong at modest budgets — aggressive informed
    # vocabulary truncation is not required.  (The two budgets are not
    # the same quantity: random keeps N tokens per document over the
    # full vocabulary, IG keeps an N-term vocabulary over full
    # documents, so their curves cross depending on corpus shape.)
    last = table.rows[-1]
    assert last[1] > 0.9  # random policy at the largest budget
    assert last[2] > 0.5  # informed stays above chance everywhere
