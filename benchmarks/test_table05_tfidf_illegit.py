"""Table 5: TF-IDF illegitimate recall and precision."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table05_tfidf_illegit(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table5(bench_config))
    emit("table05", table.render())
    # Paper: "illegitimate precision is generally high, all above 93%"
    # (class imbalance); we assert > 0.90 for robustness at small scale.
    for row in table.rows:
        if row[0] == "Precision":
            assert all(v > 0.90 for v in row[3:])
