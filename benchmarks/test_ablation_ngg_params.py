"""Ablation: N-Gram-Graph rank/window n in {2, 3, 4, 5}."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ngg_parameter_ablation


def test_ablation_ngg_params(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: ngg_parameter_ablation(bench_config))
    emit("ablation_ngg_params", table.render(precision=3))
    by_rank = {row[0]: row[1] for row in table.rows}
    # The paper's n=4 setting (following [13]) is competitive with the
    # best rank in the sweep.
    assert by_rank["n=4"] >= max(by_rank.values()) - 0.05
