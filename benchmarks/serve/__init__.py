"""Load-harness package for the serving layer (`repro serve`)."""
