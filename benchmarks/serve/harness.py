"""Load harness for the serving layer: drive a real server, gate on SLOs.

Boots a :func:`repro.serve.build_server` instance on a loopback
ephemeral port and drives it with a deterministic, seeded request
schedule over the synthetic web.  Four scenarios, each a full
client/server round trip through sockets (the one place real wall
time is the point, unlike the VirtualClock test suite):

* ``cold_cache`` — healthy host, empty verdict cache: every request
  pays feature extraction and scoring.
* ``warm_cache`` — the same schedule replayed against the same
  server: clean verdicts now replay from the
  :class:`~repro.perf.FeatureCache`.  The ``--min-throughput`` and
  ``--max-p99`` gates bind here.
* ``faulty_host`` — crawl-on-miss through a seeded
  :class:`~repro.web.resilience.FaultInjectingWebHost` (transient
  faults plus permanently dead seeds): responses must degrade
  honestly, never error.
* ``overload`` — a deliberately undersized bulkhead and a stingy
  rate-limit tier under maximum client pressure: 429s and shed 503s
  are *expected* here; what is gated is that nothing else leaks out.

Two gates hold across **every** scenario, overloaded or not:

1. zero unhandled 500s — client-observed and the server's own
   ``http_unhandled_errors_total`` counter;
2. zero deadline-exceeding requests — every verify response must
   land within its ``X-Request-Budget`` plus a fixed transport grace.

Results land in ``benchmarks/output/BENCH_serve.json``.

Run::

    python -m benchmarks.serve.harness --scale tiny
    python -m benchmarks.serve.harness --scale tiny \
        --min-throughput 5 --max-p99 2.5      # the CI serve-smoke gate
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import tempfile
import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core import PharmacyVerifier
from repro.data import GeneratorConfig, SyntheticWebGenerator, crawl_snapshot
from repro.io import atomic_write_text
from repro.serve import Authenticator, ServiceConfig, build_server
from repro.web.resilience import (
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

DEFAULT_OUTPUT = Path("benchmarks/output/BENCH_serve.json")

#: Seconds of slack on top of a request's budget before its latency
#: counts as a deadline violation: socket + JSON + one scoring chunk
#: of overshoot, none of which the in-service deadline can trim.
DEADLINE_GRACE = 2.0

#: API keys the harness serves with (internal tier = no rate limit in
#: the way; the "limited" tier exists to be exhausted in overload).
BENCH_AUTH = {
    "keys": {"bench-internal": "internal", "bench-limited": "limited"},
    "tiers": {
        "limited": {
            "rate_limit": 25,
            "window_seconds": 60.0,
            "max_batch": 5,
            "request_budget": 2.0,
            "batch_budget": 5.0,
        }
    },
}


@dataclass(frozen=True)
class Scale:
    """One harness size: synthetic web config + request volume."""

    generator: GeneratorConfig
    requests: int
    clients: int


SCALES = {
    "tiny": Scale(
        generator=GeneratorConfig(
            n_legitimate=6,
            n_illegitimate=44,
            n_affiliate_hubs=3,
            min_pages=3,
            max_pages=6,
            min_terms_per_page=40,
            max_terms_per_page=80,
            seed=23,
        ),
        requests=80,
        clients=4,
    ),
    "small": Scale(
        generator=GeneratorConfig(
            n_legitimate=12,
            n_illegitimate=88,
            n_affiliate_hubs=3,
            min_pages=3,
            max_pages=6,
            min_terms_per_page=60,
            max_terms_per_page=120,
            seed=7,
        ),
        requests=320,
        clients=8,
    ),
}


@dataclass(frozen=True)
class Call:
    """One scheduled request."""

    method: str
    path: str
    body: dict | None
    key: str
    budget: float | None  # None = exempt from the deadline gate


@dataclass(frozen=True)
class Observation:
    """One completed round trip."""

    status: int
    latency_s: float
    budget: float | None


def build_schedule(
    rng: random.Random,
    indexed: Sequence[str],
    missing: Sequence[str],
    dead: Sequence[str],
    n: int,
    key: str,
    budget: float,
) -> list[Call]:
    """A deterministic mix of verify, batch, and review-queue calls.

    ``missing`` domains force crawl-on-miss; ``dead`` domains force
    honest degradation.  Either may be empty (the healthy scenarios).
    """
    weighted = [(p, w) for p, w in ((indexed, 6), (missing, 2), (dead, 2)) if p]
    pools = [pool for pool, _ in weighted]
    weights = [weight for _, weight in weighted]
    schedule: list[Call] = []
    for i in range(n):
        if i % 10 == 9:
            domains = [rng.choice(indexed) for _ in range(3)]
            schedule.append(
                Call(
                    "POST",
                    "/v1/verify/batch",
                    {"domains": domains},
                    key,
                    budget,
                )
            )
        elif i % 25 == 13:
            schedule.append(Call("GET", "/v1/review-queue?limit=5", None, key, None))
        else:
            pool = rng.choices(pools, weights=weights, k=1)[0]
            schedule.append(
                Call(
                    "POST",
                    "/v1/verify",
                    {"domain": rng.choice(pool)},
                    key,
                    budget,
                )
            )
    return schedule


def _round_trip(port: int, call: Call) -> Observation:
    """Issue one call and time the full socket round trip."""
    headers = {"X-API-Key": call.key}
    if call.budget is not None:
        headers["X-Request-Budget"] = f"{call.budget:g}"
    body = None
    if call.body is not None:
        body = json.dumps(call.body)
        headers["Content-Type"] = "application/json"
    started = time.monotonic()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(call.method, call.path, body=body, headers=headers)
        response = conn.getresponse()
        response.read()
        status = response.status
    finally:
        conn.close()
    return Observation(status, time.monotonic() - started, call.budget)


def drive(
    port: int,
    schedule: Sequence[Call],
    clients: int,
    mode: str,
    rate: float,
) -> tuple[list[Observation], float]:
    """Run the schedule through ``clients`` worker threads.

    Closed loop: each worker fires its next request the moment the
    previous response lands (throughput is demand-matched).  Open
    loop: arrivals are paced at ``rate`` requests/second regardless
    of response times, so a slow server builds queueing pressure.
    """
    observations: list[list[Observation]] = [[] for _ in range(clients)]
    started = time.monotonic()

    def worker(worker_id: int) -> None:
        for index in range(worker_id, len(schedule), clients):
            if mode == "open":
                due = started + index / rate
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            observations[worker_id].append(_round_trip(port, schedule[index]))

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    merged = [obs for per_worker in observations for obs in per_worker]
    return merged, wall


def summarize(
    name: str,
    observations: Sequence[Observation],
    wall: float,
    counters: dict[str, float],
) -> dict:
    """Scenario result row: throughput, quantiles, status accounting."""
    statuses = Counter(str(o.status) for o in observations)
    latencies = np.asarray([o.latency_s for o in observations], dtype=np.float64)
    p50, p95, p99 = np.quantile(latencies, (0.5, 0.95, 0.99))
    violations = sum(
        1
        for o in observations
        if o.budget is not None and o.latency_s > o.budget + DEADLINE_GRACE
    )
    return {
        "scenario": name,
        "requests": len(observations),
        "wall_time_s": round(wall, 4),
        "throughput_rps": round(len(observations) / wall, 2),
        "p50_s": round(float(p50), 4),
        "p95_s": round(float(p95), 4),
        "p99_s": round(float(p99), 4),
        "status_counts": dict(sorted(statuses.items())),
        "client_500s": statuses.get("500", 0),
        "rate_limited": counters.get("http_rate_limited_total", 0.0),
        "shed": counters.get("http_shed_total", 0.0),
        "unhandled_errors": counters.get("http_unhandled_errors_total", 0.0),
        "cache_hits": counters.get("service_cache_hits_total", 0.0),
        "deadline_violations": violations,
    }


def _counters(server) -> dict[str, float]:
    """Flatten the label-free view of the counters the gates read."""
    names = (
        "http_rate_limited_total",
        "http_shed_total",
        "http_unhandled_errors_total",
        "service_cache_hits_total",
    )
    return {name: server.metrics.counter_value(name) for name in names}


def _counter_delta(
    after: dict[str, float], before: dict[str, float]
) -> dict[str, float]:
    return {name: after[name] - before[name] for name in after}


def run_cache_scenarios(
    verifier: PharmacyVerifier,
    corpus,
    cache_dir: str,
    schedule: Sequence[Call],
    clients: int,
    mode: str,
    rate: float,
) -> list[dict]:
    """Cold then warm pass of the same schedule against one server."""
    server = build_server(
        verifier,
        sites=corpus.sites,
        port=0,
        authenticator=Authenticator.from_config(BENCH_AUTH),
        cache_dir=cache_dir,
    )
    server.start_background()
    try:
        rows = []
        for name in ("cold_cache", "warm_cache"):
            before = _counters(server)
            observations, wall = drive(server.port, schedule, clients, mode, rate)
            delta = _counter_delta(_counters(server), before)
            rows.append(summarize(name, observations, wall, delta))
    finally:
        server.drain(timeout=30.0)
    return rows


def run_faulty_scenario(
    verifier: PharmacyVerifier,
    snapshot,
    indexed_sites,
    missing_domains: Sequence[str],
    schedule: Sequence[Call],
    clients: int,
    mode: str,
    rate: float,
    seed: int,
) -> dict:
    """Crawl-on-miss through seeded transient + permanent faults."""
    plan = FaultPlan.seeded(
        snapshot.host.urls(), seed=seed, transient_rate=0.3, max_recover_after=2
    )
    for domain in missing_domains[: max(1, len(missing_domains) // 3)]:
        plan.add(f"https://www.{domain}/", FaultSpec(FaultKind.PERMANENT))
    server = build_server(
        verifier,
        sites=indexed_sites,
        host=FaultInjectingWebHost(snapshot.host, plan),
        port=0,
        authenticator=Authenticator.from_config(BENCH_AUTH),
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay=0.02, max_delay=0.1, seed=17
        ),
        service_config=ServiceConfig(crawl_max_pages=8, crawl_fetch_budget=40),
    )
    server.start_background()
    try:
        before = _counters(server)
        observations, wall = drive(server.port, schedule, clients, mode, rate)
        delta = _counter_delta(_counters(server), before)
        return summarize("faulty_host", observations, wall, delta)
    finally:
        server.drain(timeout=30.0)


def run_overload_scenario(
    verifier: PharmacyVerifier,
    corpus,
    schedule: Sequence[Call],
    clients: int,
) -> dict:
    """Hammer an undersized server: sheds and 429s, never a 500."""
    server = build_server(
        verifier,
        sites=corpus.sites,
        port=0,
        authenticator=Authenticator.from_config(BENCH_AUTH),
        jobs=2,
        max_queue=2,
        admission_timeout=0.02,
    )
    server.start_background()
    try:
        before = _counters(server)
        # Always closed-loop at double client pressure: the point is
        # saturation, not pacing.
        observations, wall = drive(
            server.port, schedule, clients * 2, "closed", rate=0.0
        )
        delta = _counter_delta(_counters(server), before)
        return summarize("overload", observations, wall, delta)
    finally:
        server.drain(timeout=30.0)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: demand-matched clients; open: paced arrivals",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=20.0,
        help="open-loop arrival rate in requests/second",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1319)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--min-throughput",
        type=float,
        default=None,
        help="gate: warm-cache throughput floor in requests/second",
    )
    parser.add_argument(
        "--max-p99",
        type=float,
        default=None,
        help="gate: warm-cache p99 latency ceiling in seconds",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    requests = args.requests if args.requests is not None else scale.requests
    clients = args.clients if args.clients is not None else scale.clients

    print(f"generating synthetic web at scale={args.scale} ...")
    snapshot = SyntheticWebGenerator(scale.generator).generate_snapshot()
    corpus = crawl_snapshot(snapshot)
    verifier = PharmacyVerifier().fit(corpus)

    # Hold back a quarter of the corpus from the faulty server's index
    # so those domains exercise crawl-on-miss through the fault plan.
    split = max(1, (3 * len(corpus.sites)) // 4)
    indexed_sites = corpus.sites[:split]
    indexed = [site.domain for site in indexed_sites]
    missing = [site.domain for site in corpus.sites[split:]]
    dead = [f"dead-{i}.bench.example.com" for i in range(4)]

    rng = random.Random(args.seed)
    healthy_schedule = build_schedule(
        rng,
        indexed=[site.domain for site in corpus.sites],
        missing=(),
        dead=(),
        n=requests,
        key="bench-internal",
        budget=10.0,
    )
    faulty_schedule = build_schedule(
        random.Random(args.seed + 1),
        indexed=indexed,
        missing=missing,
        dead=dead,
        n=requests,
        key="bench-internal",
        budget=10.0,
    )
    overload_schedule = build_schedule(
        random.Random(args.seed + 2),
        indexed=indexed,
        missing=(),
        dead=(),
        n=requests,
        key="bench-limited",
        budget=10.0,
    )

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        print(f"cache scenarios: {requests} requests x {clients} clients ...")
        rows.extend(
            run_cache_scenarios(
                verifier,
                corpus,
                cache_dir=f"{tmp}/verdicts",
                schedule=healthy_schedule,
                clients=clients,
                mode=args.mode,
                rate=args.rate,
            )
        )
        print("faulty-host scenario ...")
        rows.append(
            run_faulty_scenario(
                verifier,
                snapshot,
                indexed_sites,
                missing_domains=missing,
                schedule=faulty_schedule,
                clients=clients,
                mode=args.mode,
                rate=args.rate,
                seed=args.seed,
            )
        )
        print("overload scenario ...")
        rows.append(
            run_overload_scenario(verifier, corpus, overload_schedule, clients)
        )

    print()
    print(
        f"{'scenario':<14} {'req':>5} {'rps':>8} {'p50':>8} {'p99':>8} "
        f"{'429':>5} {'shed':>5} {'500':>4} {'late':>5}"
    )
    for row in rows:
        print(
            f"{row['scenario']:<14} {row['requests']:>5} "
            f"{row['throughput_rps']:>8.2f} {row['p50_s']:>8.4f} "
            f"{row['p99_s']:>8.4f} {row['rate_limited']:>5.0f} "
            f"{row['shed']:>5.0f} "
            f"{row['client_500s'] + row['unhandled_errors']:>4.0f} "
            f"{row['deadline_violations']:>5}"
        )

    payload = {
        "suite": "serve",
        "scale": args.scale,
        "mode": args.mode,
        "seed": args.seed,
        "requests_per_scenario": requests,
        "clients": clients,
        "deadline_grace_s": DEADLINE_GRACE,
        "scenarios": rows,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.output, json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    failures: list[str] = []
    for row in rows:
        if row["unhandled_errors"] or row["client_500s"]:
            failures.append(
                f"{row['scenario']}: "
                f"{row['unhandled_errors'] + row['client_500s']:g} unhandled 500s"
            )
        if row["deadline_violations"]:
            failures.append(
                f"{row['scenario']}: {row['deadline_violations']} responses "
                f"past budget + {DEADLINE_GRACE}s grace"
            )
    warm = next(row for row in rows if row["scenario"] == "warm_cache")
    if args.min_throughput is not None and warm["throughput_rps"] < args.min_throughput:
        failures.append(
            f"warm_cache throughput {warm['throughput_rps']} rps "
            f"< floor {args.min_throughput}"
        )
    if args.max_p99 is not None and warm["p99_s"] > args.max_p99:
        failures.append(
            f"warm_cache p99 {warm['p99_s']}s > ceiling {args.max_p99}s"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}")
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
