"""Table 13: network classifier per-class precision/recall."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table13_network_prf(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table13(bench_config))
    emit("table13", table.render())
    # Paper shape: the weak spot is legitimate recall (0.73), clearly
    # below the near-perfect illegitimate recall (0.99).
    legit_recall = table.cell("NB", "legitimate recall")
    illegit_recall = table.cell("NB", "illegitimate recall")
    assert legit_recall < illegit_recall
    assert illegit_recall > 0.95
    assert table.cell("NB", "illegitimate precision") > 0.9
