"""Simulated-year streaming benchmark: incremental ticks vs full runs.

Usage::

    PYTHONPATH=src python -m benchmarks.stream.harness [--scale small]
        [--output benchmarks/output/BENCH_stream.json]
        [--full-every 13] [--min-speedup 5]

The harness plans a delta stream over a synthetic corpus (the default
``small`` scale is a year of weekly ticks at ~4% churn), bootstraps a
:class:`~repro.stream.pipeline.StreamingVerifier`, and then, per tick:

* applies the delta incrementally (timed — this is the product path);
* every ``--full-every`` ticks, also runs the cold
  :meth:`~repro.stream.pipeline.StreamingVerifier.full_recompute`
  (timed — the baseline a non-incremental system would pay every
  snapshot) and records the verdict-staleness of the warm state
  against it.

Before timings are reported the final warm state is pinned against the
oracle: document frequencies and the refit vocabulary bit-equal a
fresh fit, class-graph means agree within 1e-9, TrustRank agrees with
a tight power-iteration run within 1e-9, and a final ``full_retrain``
drives verdict staleness to exactly zero.  The harness exits non-zero
if any equivalence fails — or, with ``--min-speedup X``, if the
median-full over median-tick speedup falls below ``X``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.deltas import StreamConfig, StreamCorpus, plan_deltas
from repro.data.synthesis import GeneratorConfig
from repro.io import atomic_write_text
from repro.network.construction import build_pharmacy_graph
from repro.network.trustrank import trustrank
from repro.stream.crawl import DeltaCrawlStore
from repro.stream.features import mean_class_graphs
from repro.stream.pipeline import StreamingVerifier
from repro.text.ngram_graph import NGramGraph

#: Per-scale corpus + stream shapes.  Churn sums to ~4% of the corpus
#: per steady-state tick (the acceptance envelope is <= 5%).
SCALES: dict[str, dict[str, Any]] = {
    "tiny": {
        "generator": GeneratorConfig(
            n_legitimate=10,
            n_illegitimate=20,
            n_affiliate_hubs=3,
            min_pages=3,
            max_pages=5,
            min_terms_per_page=40,
            max_terms_per_page=80,
            seed=11,
        ),
        "stream": StreamConfig(
            n_ticks=8,
            birth_fraction=0.02,
            death_fraction=0.01,
            drift_fraction=0.015,
            rewire_fraction=0.015,
        ),
        "full_every": 4,
    },
    "small": {
        "generator": GeneratorConfig(
            n_legitimate=25,
            n_illegitimate=75,
            n_affiliate_hubs=5,
            min_pages=3,
            max_pages=6,
            min_terms_per_page=60,
            max_terms_per_page=120,
            seed=11,
        ),
        "stream": StreamConfig(
            n_ticks=52,
            birth_fraction=0.015,
            death_fraction=0.01,
            drift_fraction=0.01,
            rewire_fraction=0.01,
        ),
        "full_every": 13,
    },
}


def _check_equivalences(verifier: StreamingVerifier) -> dict[str, float]:
    """Pin the warm state against from-scratch oracles; raise on drift."""
    full = verifier.full_recompute()
    refit = verifier.document_frequencies.fit_vectorizer(
        min_df=verifier._min_df
    )
    if refit.vocabulary.terms() != full.vocabulary_terms:
        raise AssertionError("incremental vocabulary diverged from fresh fit")
    if not np.array_equal(refit.idf, full.idf):
        raise AssertionError("incremental idf diverged from fresh fit")

    ngg_state = verifier.class_graphs
    interner = ngg_state._interner
    ngg_err = 0.0
    maintained = ngg_state.class_graphs()
    for label, expected in full.class_graphs.items():
        keys_a, weights_a = maintained[label]._aligned(interner)
        keys_e, weights_e = expected._aligned(interner)
        if not np.array_equal(keys_a, keys_e):
            raise AssertionError(f"class-graph {label} edge sets diverged")
        err = float(np.max(np.abs(weights_a - weights_e), initial=0.0))
        ngg_err = max(ngg_err, err)
    if ngg_err >= 1e-9:
        raise AssertionError(f"class-graph mean error {ngg_err:.3e} >= 1e-9")

    store = DeltaCrawlStore(verifier._corpus)
    store.bootstrap()
    graph = build_pharmacy_graph(store.sites())
    tight = trustrank(
        graph,
        verifier._trusted_domains(),
        damping=0.85,
        max_iterations=1000,
        tolerance=1e-12,
    )
    scores = verifier.rank_state.scores()
    if set(scores) != set(tight):
        raise AssertionError("incremental TrustRank node set diverged")
    rank_err = max(
        (abs(scores[node] - value) for node, value in tight.items()),
        default=0.0,
    )
    if rank_err >= 1e-9:
        raise AssertionError(f"TrustRank error {rank_err:.3e} >= 1e-9")

    staleness_before = verifier.staleness_against(full)
    verifier.full_retrain()
    staleness_after = verifier.staleness_against(full)
    if staleness_after != 0.0:
        raise AssertionError(
            f"staleness {staleness_after} after full retrain (expected 0)"
        )
    return {
        "class_graph_max_err": ngg_err,
        "trustrank_max_err": rank_err,
        "staleness_before_retrain": staleness_before,
        "staleness_after_retrain": staleness_after,
    }


def run(scale: str, full_every: int) -> dict[str, Any]:
    shape = SCALES[scale]
    generator: GeneratorConfig = shape["generator"]
    stream: StreamConfig = shape["stream"]
    deltas = plan_deltas(generator, stream)

    corpus = StreamCorpus.generate(generator)
    verifier = StreamingVerifier(corpus)
    start = time.perf_counter()
    verifier.bootstrap()
    bootstrap_s = time.perf_counter() - start

    n_base = len(corpus.domains())
    ticks: list[dict[str, Any]] = []
    full_times: list[float] = []
    staleness_curve: list[dict[str, float]] = []
    for delta in deltas:
        report = verifier.apply_tick(delta)
        row = {
            "epoch": report.epoch,
            "n_sites": report.n_sites,
            "n_changed": report.n_changed,
            "n_removed": report.n_removed,
            "churn_fraction": (
                (report.n_changed + report.n_removed) / report.n_sites
            ),
            "seconds": report.seconds,
            "rank_sweeps": report.rank_sweeps,
            "retrained": report.retrained,
        }
        if report.epoch % full_every == 0 or report.epoch == len(deltas):
            full_start = time.perf_counter()
            full = verifier.full_recompute()
            full_s = time.perf_counter() - full_start
            full_times.append(full_s)
            staleness = verifier.staleness_against(full)
            row["full_recompute_seconds"] = full_s
            row["staleness"] = staleness
            staleness_curve.append(
                {"epoch": report.epoch, "staleness": staleness}
            )
        ticks.append(row)

    equivalence = _check_equivalences(verifier)
    tick_times = [row["seconds"] for row in ticks]
    median_tick = statistics.median(tick_times)
    median_full = statistics.median(full_times)
    return {
        "scale": scale,
        "n_base_sites": n_base,
        "n_ticks": len(deltas),
        "full_every": full_every,
        "bootstrap_seconds": bootstrap_s,
        "median_tick_seconds": median_tick,
        "median_full_recompute_seconds": median_full,
        "speedup": median_full / median_tick,
        "mean_churn_fraction": statistics.fmean(
            row["churn_fraction"] for row in ticks
        ),
        "n_retrains": sum(1 for row in ticks if row["retrained"]),
        "staleness_curve": staleness_curve,
        "equivalence": equivalence,
        "ticks": ticks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="corpus + stream shape (default: small, a simulated year)",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/output/BENCH_stream.json",
        help="result JSON path",
    )
    parser.add_argument(
        "--full-every", type=int, default=None,
        help="run the full-recompute baseline every N ticks "
        "(default: the scale's own cadence)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero when median-full / median-tick falls below "
        "this (0 disables the gate)",
    )
    args = parser.parse_args(argv)

    full_every = (
        args.full_every
        if args.full_every is not None
        else SCALES[args.scale]["full_every"]
    )
    if full_every < 1:
        parser.error("--full-every must be >= 1")
    result = run(args.scale, full_every)
    payload = {"benchmark": "repro-stream", **result}
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(output, json.dumps(payload, indent=2) + "\n")
    print(
        f"{result['n_base_sites']} base sites, {result['n_ticks']} ticks, "
        f"mean churn {result['mean_churn_fraction']:.1%}"
    )
    print(
        f"median tick {result['median_tick_seconds']:.4f}s vs full "
        f"{result['median_full_recompute_seconds']:.4f}s — "
        f"speedup {result['speedup']:.2f}x"
    )
    print(f"wrote {output}")
    if args.min_speedup > 0 and result["speedup"] < args.min_speedup:
        print(
            f"GATE FAIL: speedup {result['speedup']:.2f}x "
            f"< {args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
