"""Streaming-pipeline benchmarks (incremental vs full recompute)."""
