"""Table 15: ranking pairwise orderedness."""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table15_ranking(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: tables.table15(bench_config))
    emit("table15", table.render(precision=3))
    # Paper: pairord >= 0.994 for every model; we assert the same
    # near-perfect band with small-scale slack.
    values = table.column_values("pairord")
    assert all(v > 0.93 for v in values)
    # SVM and NBM rank at least as well as J48 (paper ordering).
    pairord = {row[0]: row[2] for row in table.rows}
    assert pairord["SVM"] >= pairord["J48"] - 0.01
