"""Ablation: ranking combiner (text-only / network-only / sum)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ranking_combiner_ablation


def test_ablation_ranking(benchmark, bench_config, emit):
    table = run_once(benchmark, lambda: ranking_combiner_ablation(bench_config))
    emit("ablation_ranking", table.render(precision=3))
    by_combiner = {row[0]: row[1] for row in table.rows}
    paper = by_combiner["textRank + networkRank (paper)"]
    # The cumulative model should not lose to network-only ranking and
    # should stay in the paper's near-perfect band.
    assert paper >= by_combiner["networkRank only"] - 0.02
    assert paper > 0.9
